//! The test-generation driver (§4): path exploration, feasibility checking,
//! concolic resolution, and test emission, with per-phase timing for the
//! Fig. 7 experiment.
//!
//! # Parallel exploration
//!
//! Exploration runs on a pool of `config.jobs` workers. Each worker owns a
//! [`crossbeam::deque::Worker`] of pending states (owner side is LIFO for
//! DFS locality; thieves steal from the FIFO end, handing them the oldest —
//! and therefore shallowest, largest — subtrees) and its own [`Solver`].
//! The term pool is shared: interning is `&self` and thread-safe, so
//! `TermId`s are valid across workers and hash-consing dedups structurally
//! identical path-prefix terms globally.
//!
//! Determinism: a path's identity is its *fork trail* (the sequence of
//! branch indices taken at each fork event), which is independent of the
//! schedule. Per-test randomness is seeded from `seed ^ hash(trail)`, and
//! finished tests are buffered per worker, merged, and sorted by trail
//! before the `on_test` callback runs — so a fixed seed yields the same
//! test suite, in the same order, for any worker count. `max_tests = k`
//! stays deterministic too: it selects the k lexicographically-smallest
//! test trails (enforced by a shared top-k heap that prunes subtrees which
//! can no longer contribute), not whichever k tests raced to finish first.
//! The remaining caveat is `max_paths` and `stop_at_full_coverage`: those
//! caps trigger on whichever paths finish first, which under parallelism
//! may cut off a different subset of the (fully deterministic) path space.

use crate::checkpoint::{sanitize_frontier, CheckpointCfg, ExplorationState, ShardSpec};
use crate::concolic::{resolve_concolics, ConcolicRegistry};
use crate::coverage::{AbandonSite, CoverageReport, SharedCoverage};
use crate::exec;
use crate::fault::{trail_hash, FaultPlan};
use crate::preconditions::Preconditions;
use crate::state::{Cmd, ExecState, FinishReason, RegisterOp, SynthKeyMatch};
use crate::target::{ExecCtx, Target};
use crate::testspec::{
    KeyMatch, MaskedBytes, OutputPacketSpec, RegisterSpec, TableEntrySpec, TestSpec,
};
use crossbeam::deque::{Steal, Stealer, Worker as WorkerDeque};
use p4t_ir::IrProgram;
use p4t_obs::trace::{EngineEvent, PathOutcome, PathRecord, PathTiming, TraceLog};
use p4t_obs::{FlightRecorder, LiveStatus, Registry};
use p4t_smt::sat::{SatStats, LEARNT_SIZE_BOUNDS};
use p4t_smt::solver::{
    IncrementalStats, SolverStats, CONFLICTS_PER_CHECK_BOUNDS, SPINE_PER_CHECK_BOUNDS,
};
use p4t_smt::{
    eval, stable_fingerprint, Assignment, BitVec, CheckResult, ClauseExchange, SolveBudget, Solver,
    SolverMode, TermId, TermPool, VarId,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::value::{Number, Value};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Path-selection strategy (§6: DFS by default; continuations make other
/// heuristics cheap to try).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Depth-first: explore all valid paths to exhaustion (the default).
    Dfs,
    /// Breadth-first.
    Bfs,
    /// Pick a random pending state each time (random backtracking).
    RandomBacktrack,
    /// Prefer the pending state that has covered the most statements not
    /// yet covered globally (the paper's "heuristics to try to maximize
    /// coverage with the fewest number of paths").
    CoverageFirst,
}

/// Observability switches for a run. The default is fully off, and "off"
/// really is free: workers check `trace`/`metrics` once per *path* (never
/// per step), no trace records are allocated, and the metrics fold at merge
/// time never runs.
#[derive(Clone, Default)]
pub struct ObsConfig {
    /// Collect a structured trace (per-path records keyed by fork trail plus
    /// engine-level scheduler events) into [`RunSummary::trace`].
    pub trace: bool,
    /// Fold end-of-run metrics (solver internals, pool stats, memo hit
    /// rate, queue depths, per-worker busy/idle) into this registry.
    pub metrics: Option<Arc<Registry>>,
    /// Span flight recorder (`--flight-out`): workers record lifecycle,
    /// path, solver-check, and degradation events into bounded per-worker
    /// rings; the engine never reads them, so exploration is unperturbed.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Live status shared with the `--status-addr` HTTP endpoint. Updated
    /// with relaxed atomics at journal-transaction granularity.
    pub live: Option<Arc<LiveStatus>>,
    /// Collect per-test provenance (fork trail, constraint count, solver
    /// checks, coverage delta) into [`RunSummary::provenance`].
    pub provenance: bool,
    /// Collect [`AbandonSite`]s (where and why paths died) into
    /// [`RunSummary::abandon_sites`] for `--coverage-report` attribution.
    pub explain: bool,
}

impl ObsConfig {
    /// Anything enabled at all? (Used to size merge-time work.)
    pub fn any(&self) -> bool {
        self.trace
            || self.metrics.is_some()
            || self.flight.is_some()
            || self.live.is_some()
            || self.provenance
            || self.explain
    }
}

impl std::fmt::Debug for ObsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsConfig")
            .field("trace", &self.trace)
            .field("metrics", &self.metrics.is_some())
            .field("flight", &self.flight.is_some())
            .field("live", &self.live.is_some())
            .field("provenance", &self.provenance)
            .field("explain", &self.explain)
            .finish()
    }
}

/// Generation configuration.
#[derive(Clone, Debug)]
pub struct TestgenConfig {
    /// Stop after emitting this many tests (0 = unlimited).
    pub max_tests: u64,
    /// Stop after exploring this many paths (0 = unlimited).
    pub max_paths: u64,
    /// Per-path step budget (runaway guard).
    pub max_steps_per_path: u64,
    pub seed: u64,
    pub parser_loop_bound: u32,
    pub strategy: Strategy,
    pub preconditions: Preconditions,
    /// Stop once every statement has been covered.
    pub stop_at_full_coverage: bool,
    /// Retries for the concolic resolution loop (§5.4).
    pub concolic_retries: u32,
    /// Skip solver calls for forks whose constraints are syntactically
    /// trivial (pure-constant conditions); always sound, just lazier.
    pub eager_pruning: bool,
    /// Exploration worker threads. `1` (the default) explores on the calling
    /// thread with the identical code path the workers run, so results for
    /// a fixed seed are the same set at any job count. Defaults to the
    /// `P4TESTGEN_JOBS` environment variable when set.
    pub jobs: usize,
    /// Per-solver-query conflict budget (0 = unlimited). A query exceeding
    /// it returns Unknown and the path is abandoned instead of stalling the
    /// run — the engine's analogue of the paper's Z3 timeout. Defaults to
    /// the `P4TESTGEN_SOLVER_BUDGET` environment variable when set.
    pub solver_budget: u64,
    /// Retry an Unknown query once with a rotated phase seed before giving
    /// up on the path.
    pub budget_retry: bool,
    /// Feasibility-check discipline: `Incremental` (the default) keeps one
    /// warm SAT core per worker along its DFS spine; `Fresh` rebuilds every
    /// check. Model-bearing checks (emission, concolic resolution) are
    /// always fresh, so emitted suites are byte-identical in both modes.
    /// Defaults to the `P4TESTGEN_SOLVER_MODE` environment variable
    /// (`fresh`/`incremental`) when set.
    pub solver_mode: SolverMode,
    /// Wall-clock deadline for the whole run, checked cooperatively: on
    /// expiry workers finish in-flight paths, drain their queues, and the
    /// run still emits a deterministic, trail-sorted (partial) suite.
    /// Defaults to the `P4TESTGEN_DEADLINE` environment variable (seconds).
    pub deadline: Option<Duration>,
    /// Parser loop bound for the *concrete* software model used during
    /// validation (the symbolic executor's bound is `parser_loop_bound`).
    pub interp_parser_loop_bound: u32,
    /// Deterministic fault injection (tests/benches only); the default plan
    /// is empty and injects nothing.
    pub fault_plan: FaultPlan,
    /// Observability switches (structured tracing + metrics registry); the
    /// default is fully disabled and adds no hot-path cost.
    pub obs: ObsConfig,
    /// Explore only the fork-trail subtrees this shard owns (`--shard i/N`).
    /// The emitted suites of all N shards, merged with
    /// [`crate::checkpoint::merge_shard_suites`], are byte-identical to the
    /// single-run suite.
    pub shard: Option<ShardSpec>,
    /// Periodically persist the exploration journal (frontier trails,
    /// emitted tests, coverage, memo) to a checkpoint file; a final flush
    /// always happens at run end, clean or drained.
    pub checkpoint: Option<CheckpointCfg>,
    /// Continue a previous run from its decoded checkpoint. A config-hash
    /// mismatch degrades to a cold start (recorded in
    /// [`ResumeInfo::rejected`]), never an error.
    pub resume: Option<ExplorationState>,
    /// Cooperative drain request (e.g. set by a SIGTERM handler): workers
    /// stop taking new states, in-flight paths finish, and — with a
    /// checkpoint configured — the untouched frontier is flushed for a
    /// later `resume`.
    pub drain: Option<Arc<AtomicBool>>,
    /// Cross-run feasibility memo shared by a long-lived host (the serve
    /// daemon): verdicts for stable constraint-set fingerprints are read
    /// from and written to this bounded cache in addition to the run-local
    /// memo. Safe to share across programs — fingerprints are
    /// content-addressed canonical constraint sets, so a hit is the same
    /// query regardless of which request first solved it — but only within
    /// one [`feas_budget_class`]: the memo partitions entries by budget
    /// class so a run never sees a verdict its own (colder-budget) solver
    /// would have abandoned as Unknown. `None` (the default) preserves the
    /// one-shot behaviour exactly.
    pub shared_memo: Option<Arc<SharedFeasMemo>>,
}

fn default_jobs() -> usize {
    std::env::var("P4TESTGEN_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or(1)
}

fn default_solver_budget() -> u64 {
    std::env::var("P4TESTGEN_SOLVER_BUDGET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
}

fn default_solver_mode() -> SolverMode {
    std::env::var("P4TESTGEN_SOLVER_MODE")
        .ok()
        .and_then(|s| SolverMode::parse(&s))
        .unwrap_or_default()
}

fn default_deadline() -> Option<Duration> {
    std::env::var("P4TESTGEN_DEADLINE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .map(Duration::from_secs_f64)
}

impl Default for TestgenConfig {
    fn default() -> Self {
        TestgenConfig {
            max_tests: 0,
            max_paths: 0,
            max_steps_per_path: 100_000,
            seed: 1,
            parser_loop_bound: 8,
            strategy: Strategy::Dfs,
            preconditions: Preconditions::none(),
            stop_at_full_coverage: false,
            concolic_retries: 3,
            eager_pruning: true,
            jobs: default_jobs(),
            solver_budget: default_solver_budget(),
            budget_retry: true,
            solver_mode: default_solver_mode(),
            deadline: default_deadline(),
            interp_parser_loop_bound: 64,
            fault_plan: FaultPlan::default(),
            obs: ObsConfig::default(),
            shard: None,
            checkpoint: None,
            resume: None,
            drain: None,
            shared_memo: None,
        }
    }
}

/// Per-phase timing, the data behind our Fig. 7 reproduction.
///
/// Two clocks are reported and must not be conflated. `stepping`,
/// `solving`, `emission`, and `busy` are **CPU time summed across
/// workers** — with `jobs = 8` they can legitimately total up to 8× the
/// run's duration. `total` is the run's true **wall-clock** time, measured
/// once on the coordinating thread. [`PhaseStats::utilization`] relates the
/// two: busy CPU time as a fraction of the `workers × total` capacity, so
/// 1.0 means no worker ever starved.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// CPU time stepping the symbolic executor, summed across workers.
    pub stepping: Duration,
    /// CPU time inside the solver (bit-blasting + SAT search), summed.
    pub solving: Duration,
    /// CPU time concretizing models into test specifications, summed.
    pub emission: Duration,
    /// CPU time workers spent holding a state (processing, as opposed to
    /// polling empty queues), summed across workers. Superset of the three
    /// phase components above.
    pub busy: Duration,
    /// Wall-clock duration of the whole run (single clock, not summed).
    pub total: Duration,
    /// Number of exploration workers that produced the summed figures.
    pub workers: u32,
}

impl PhaseStats {
    fn absorb(&mut self, other: &PhaseStats) {
        self.stepping += other.stepping;
        self.solving += other.solving;
        self.emission += other.emission;
        self.busy += other.busy;
        // `total` and `workers` are run-level, set once by the merger.
    }

    /// Fraction of the pool's wall-clock capacity (`workers × total`) spent
    /// busy. Low values under `--jobs > 1` mean workers starved for work.
    pub fn utilization(&self) -> f64 {
        let capacity = self.total.as_secs_f64() * f64::from(self.workers.max(1));
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }
}

/// Stable keys for the abandoned-path reason taxonomy (the map keys in
/// [`ErrorStats::abandoned_by_reason`]). Everything the engine gives up on
/// is attributed to exactly one of these.
pub mod reason {
    /// Per-path step budget exhausted (`max_steps_per_path`).
    pub const STEP_BUDGET: &str = "step-budget";
    /// Parser loop bound hit (symbolic executor or software model).
    pub const PARSER_LOOP_BOUND: &str = "parser-loop-bound";
    /// A solver query came back Unknown (budget exhausted or injected).
    pub const SOLVER_UNKNOWN: &str = "solver-unknown";
    /// Tainted output port / taint-dependent control flow (§5.3).
    pub const TAINTED_OUTPUT: &str = "tainted-output";
    /// The §5.4 concolic loop found no consistent concrete assignment.
    pub const CONCOLIC_UNRESOLVED: &str = "concolic-unresolved";
    /// The finished path's full constraint set was unsatisfiable at
    /// emission time.
    pub const EMISSION_UNSAT: &str = "emission-unsat";
    /// The path panicked and was isolated.
    pub const PANIC: &str = "panic";
    /// The run deadline expired while this path was in flight.
    pub const DEADLINE: &str = "deadline";
    /// Any other executor exception (unknown extern, malformed IR, ...).
    pub const EXEC_ERROR: &str = "exec-error";
}

/// Map a free-form abandon message onto the stable reason taxonomy.
pub fn classify_abandon_reason(msg: &str) -> &'static str {
    if msg.contains("step budget") {
        reason::STEP_BUDGET
    } else if msg.contains("parser loop bound") {
        reason::PARSER_LOOP_BOUND
    } else if msg.contains("deadline") || msg.contains("drain") {
        reason::DEADLINE
    } else if msg.contains("solver unknown") {
        reason::SOLVER_UNKNOWN
    } else {
        reason::EXEC_ERROR
    }
}

/// One isolated panic: where it happened and what it said.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicRecord {
    /// Fork trail of the poisoned path (possibly mid-extension).
    pub trail: Vec<u32>,
    /// The panic payload, downcast to text when possible.
    pub payload: String,
    /// The last execution-trace line before the panic (program point).
    pub last_trace: Option<String>,
}

/// Structured degradation taxonomy for a run: everything that kept it from
/// being a full, clean exploration. All counters are deterministic for a
/// fixed seed and config at any worker count (they are keyed by fork trail,
/// not by schedule), with the caveats noted on `deadline_expired`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Solver queries that ended Unknown, after any retry.
    pub unknown_queries: u64,
    /// Unknown queries retried with a rotated phase seed.
    pub budget_retries: u64,
    /// Paths that panicked and were isolated (worker survived).
    pub panicked_paths: u64,
    /// The wall-clock deadline expired before exploration finished. Which
    /// paths were cut off is schedule-dependent; the emitted suite is still
    /// a trail-sorted subset of the full deterministic suite.
    pub deadline_expired: bool,
    /// Model-eval fallbacks to 0 during emission (a solver-model gap — the
    /// emitted test may not exercise what the path constraints promised).
    pub model_defaults: u64,
    /// Abandoned paths bucketed by [`reason`] key.
    pub abandoned_by_reason: BTreeMap<String, u64>,
    /// Detail for the first few isolated panics, trail-sorted.
    pub panics: Vec<PanicRecord>,
    /// Warning-severity frontend diagnostics from compiling the program
    /// (the program still compiled; errors abort the build instead).
    pub frontend_warnings: u64,
}

/// Cap on retained [`PanicRecord`]s (counters keep counting past it).
const MAX_PANIC_RECORDS: usize = 32;

impl ErrorStats {
    pub(crate) fn bump_reason(&mut self, key: &str) {
        *self.abandoned_by_reason.entry(key.to_string()).or_insert(0) += 1;
    }

    fn absorb(&mut self, other: &ErrorStats) {
        self.unknown_queries += other.unknown_queries;
        self.budget_retries += other.budget_retries;
        self.panicked_paths += other.panicked_paths;
        self.deadline_expired |= other.deadline_expired;
        self.model_defaults += other.model_defaults;
        for (k, v) in &other.abandoned_by_reason {
            *self.abandoned_by_reason.entry(k.clone()).or_insert(0) += v;
        }
        self.panics.extend(other.panics.iter().cloned());
        self.frontend_warnings += other.frontend_warnings;
    }

    /// True when the run degraded in no way at all.
    pub fn is_clean(&self) -> bool {
        self.unknown_queries == 0
            && self.budget_retries == 0
            && self.panicked_paths == 0
            && !self.deadline_expired
            && self.model_defaults == 0
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} unknown queries ({} retried), {} panicked paths, {} model defaults{}",
            self.unknown_queries,
            self.budget_retries,
            self.panicked_paths,
            self.model_defaults,
            if self.deadline_expired { ", deadline expired" } else { "" }
        )?;
        if !self.abandoned_by_reason.is_empty() {
            write!(f, "; abandoned by reason:")?;
            for (k, v) in &self.abandoned_by_reason {
                write!(f, " {k}={v}")?;
            }
        }
        if self.frontend_warnings > 0 {
            write!(f, "; {} frontend warning(s)", self.frontend_warnings)?;
        }
        Ok(())
    }
}

/// A build that could not produce a [`Testgen`]: the frontend rejected the
/// program, or the target extension rejected the compiled pipeline.
/// Returned by [`Testgen::new_checked`]; [`Testgen::new`] flattens it to a
/// string for API compatibility.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// The frontend produced error diagnostics. `prelude_lines` is the
    /// number of source lines the target's architecture prelude occupies
    /// ahead of the user's program — subtract it (e.g. via
    /// `SourceMap::render`'s `line_offset`) to report positions in the
    /// user's file.
    Frontend { diagnostics: Vec<p4t_frontend::Diagnostic>, prelude_lines: u32 },
    /// The program compiled but the target rejected the pipeline shape.
    Target(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Frontend { diagnostics, .. } => {
                for (i, d) in diagnostics.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            BuildError::Target(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A run that could not produce a summary: one or more workers died outside
/// the per-path isolation (a harness bug, not a path bug). Surfaced as a
/// structured error instead of aborting the process.
#[derive(Clone, Debug)]
pub struct RunError {
    pub worker_failures: Vec<String>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} exploration worker(s) failed: ", self.worker_failures.len())?;
        for (i, m) in self.worker_failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

/// Checkpoint/resume bookkeeping for one run. Present in
/// [`RunSummary::resume`] whenever checkpointing or resuming was configured
/// (or a kill fault fired); `None` otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResumeInfo {
    /// This run continued from a validated checkpoint.
    pub resumed: bool,
    /// Frontier trails restored (and replayed) from the checkpoint.
    pub frontier_restored: u64,
    /// Emitted tests carried over from the checkpoint.
    pub tests_restored: u64,
    /// Frontier trails successfully replayed to live states at resume
    /// time (a subset of `frontier_restored`; trails that fail to replay
    /// are dropped with a warning rather than aborting the run).
    pub replayed_trails: u64,
    /// Feasibility-memo entries carried over from the checkpoint.
    pub memo_restored: u64,
    /// Destination checkpoint file, when one is configured.
    pub checkpoint_path: Option<String>,
    /// Checkpoints written over the whole campaign (including the final
    /// flush, and counting earlier resumed segments).
    pub checkpoints_written: u64,
    /// Frontier trails left unexplored when the run ended (0 for a clean
    /// completion; nonzero means the final checkpoint is resumable).
    pub frontier_remaining: u64,
    /// Why exploration stopped early: `"deadline"`, `"signal"`, or
    /// `"kill-fault"`; `None` for a clean completion.
    pub interrupted: Option<String>,
    /// A resume state was offered but rejected (classification key, e.g.
    /// `"config-mismatch"`); the run cold-started instead.
    pub rejected: Option<String>,
    /// The first checkpoint-write failure, if any (the run continues; the
    /// previous on-disk checkpoint stays intact).
    pub flush_error: Option<String>,
    /// The accepted checkpoint was written under a different `--shard`
    /// filter than this run's (human-readable description). The resume
    /// proceeds, but frontier subtrees outside the current filter stay
    /// unexplored — almost always a misconfiguration worth warning about.
    pub shard_mismatch: Option<String>,
}

/// End-of-run summary.
#[derive(Clone, Debug)]
pub struct RunSummary {
    pub tests: u64,
    pub paths_explored: u64,
    pub infeasible_paths: u64,
    pub abandoned_paths: u64,
    /// Fork subtrees skipped because another shard owns them (0 unless
    /// `TestgenConfig::shard` is set).
    pub out_of_shard_paths: u64,
    pub coverage: CoverageReport,
    pub phases: PhaseStats,
    pub solver_checks: u64,
    /// Fork-feasibility checks answered from the constraint-set memo
    /// instead of the solver.
    pub memo_hits: u64,
    /// Feasibility-check discipline this run used.
    pub solver_mode: SolverMode,
    /// Warm-spine / simplifier / blast-cache / clause-exchange counters for
    /// this run (all zero under [`SolverMode::Fresh`] except the blast-cache
    /// ones, which fresh instances also report).
    pub solver: IncrementalStats,
    /// Degradation taxonomy (budget Unknowns, isolated panics, deadline,
    /// model-default fallbacks, per-reason abandoned counts).
    pub errors: ErrorStats,
    /// Fork trails of the emitted tests, in canonical (sorted) order —
    /// parallel to the test ids. This is the schedule-independent identity
    /// tests and fault plans key on.
    pub test_trails: Vec<Vec<u32>>,
    /// Structured run trace, populated when [`ObsConfig::trace`] is set:
    /// per-path records in canonical trail order plus engine events. `None`
    /// when tracing is off (the default).
    pub trace: Option<TraceLog>,
    /// Checkpoint/resume bookkeeping; `Some` whenever checkpointing or
    /// resuming was configured (or a kill fault fired).
    pub resume: Option<ResumeInfo>,
    /// Per-test provenance records (parallel to the emitted suite, in
    /// canonical trail order), populated when [`ObsConfig::provenance`]
    /// is set. `None` when provenance collection is off (the default).
    pub provenance: Option<Vec<TestProvenance>>,
    /// Abandonment sites for coverage attribution, trail-sorted.
    /// Populated when [`ObsConfig::explain`] is set; empty otherwise.
    pub abandon_sites: Vec<AbandonSite>,
    /// Differential-harness results (`p4testgen diff`); `None` for plain
    /// generation runs. Serialized under the append-only v2 schema.
    pub differential: Option<DifferentialSummary>,
}

/// Aggregate results of a differential run (`p4testgen diff`): how many
/// comparisons ran, how the divergences classified, and — in fault-catalog
/// mode — how many injected faults the harness detected. The taxonomy
/// kinds are stable strings shared with the JSONL divergence reports:
/// `value-divergence`, `verdict-divergence`, `trap-divergence`,
/// `quirk-suppressed`, `ref-unsupported`.
#[derive(Clone, Debug, Default)]
pub struct DifferentialSummary {
    /// `"interp-vs-refeval"`, `"cross-target"`, or `"fault-catalog"`.
    pub mode: String,
    /// Programs compared.
    pub programs: u64,
    /// (test, engine-pair) comparisons executed.
    pub comparisons: u64,
    /// Unsuppressed divergences (the run's failure count).
    pub divergences: u64,
    /// Divergence counts by taxonomy kind, sorted by kind for stable
    /// serialization. Includes the suppressed/unsupported kinds, which do
    /// not count toward `divergences`.
    pub by_kind: Vec<(String, u64)>,
    /// Divergences explained by the documented quirk list.
    pub quirk_suppressed: u64,
    /// Comparisons skipped because the reference evaluator does not model
    /// the construct (reported, never silently dropped).
    pub ref_unsupported: u64,
    /// Fault-catalog mode: faults injected and faults detected (>=1
    /// classified divergence). Both zero outside fault-catalog mode.
    pub faults_injected: u64,
    pub faults_detected: u64,
}

impl DifferentialSummary {
    /// The `differential` object of the v2 summary schema.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("mode".into(), Value::String(self.mode.clone())),
            ("programs".into(), Value::Number(Number::U(self.programs))),
            ("comparisons".into(), Value::Number(Number::U(self.comparisons))),
            ("divergences".into(), Value::Number(Number::U(self.divergences))),
            (
                "by_kind".into(),
                Value::Object(
                    self.by_kind
                        .iter()
                        .map(|(k, n)| (k.clone(), Value::Number(Number::U(*n))))
                        .collect(),
                ),
            ),
            ("quirk_suppressed".into(), Value::Number(Number::U(self.quirk_suppressed))),
            ("ref_unsupported".into(), Value::Number(Number::U(self.ref_unsupported))),
            ("faults_injected".into(), Value::Number(Number::U(self.faults_injected))),
            ("faults_detected".into(), Value::Number(Number::U(self.faults_detected))),
        ])
    }
}

/// Why one emitted test exists and what it bought (`--provenance-out`).
///
/// The coverage delta is computed at merge time by walking the final
/// suite in canonical trail order — not from the live [`SharedCoverage`]
/// race — so it is deterministic across job counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestProvenance {
    /// Final (renumbered) test id, equal to the suite index.
    pub id: u64,
    /// Fork trail identifying the path.
    pub trail: Vec<u32>,
    /// Path-constraint count at emission. `None` for tests restored from
    /// a checkpoint (their paths were not re-executed this run).
    pub constraints: Option<u64>,
    /// Logical solver checks (fork feasibility + emission) charged to
    /// this path; memo hits count. `None` for checkpoint-restored tests.
    pub solver_checks: Option<u64>,
    /// Statements first covered by this test, in suite order.
    pub new_coverage: Vec<u32>,
    /// Union coverage after this test (suite prefix including it).
    pub cumulative_covered: u64,
}

impl TestProvenance {
    /// One `--provenance-out` JSONL record.
    pub fn to_value(&self) -> Value {
        let opt_u = |v: &Option<u64>| match v {
            Some(n) => Value::Number(Number::U(*n)),
            None => Value::Null,
        };
        Value::Object(vec![
            ("id".into(), Value::Number(Number::U(self.id))),
            (
                "trail".into(),
                Value::Array(
                    self.trail.iter().map(|b| Value::Number(Number::U(u64::from(*b)))).collect(),
                ),
            ),
            ("constraints".into(), opt_u(&self.constraints)),
            ("solver_checks".into(), opt_u(&self.solver_checks)),
            (
                "new_coverage".into(),
                Value::Array(
                    self.new_coverage
                        .iter()
                        .map(|s| Value::Number(Number::U(u64::from(*s))))
                        .collect(),
                ),
            ),
            (
                "cumulative_covered".into(),
                Value::Number(Number::U(self.cumulative_covered)),
            ),
        ])
    }
}

impl RunSummary {
    /// Machine-readable summary (the `--summary-json` payload). Durations
    /// are nanosecond integers; the schema is documented in DESIGN.md
    /// ("Observability") and checked by `tests/cli.rs`.
    pub fn to_json(&self) -> Value {
        let dur = |d: Duration| Value::Number(Number::U(d.as_nanos() as u64));
        let trails = |ts: &[Vec<u32>]| {
            Value::Array(
                ts.iter()
                    .map(|t| {
                        Value::Array(
                            t.iter().map(|b| Value::Number(Number::U(u64::from(*b)))).collect(),
                        )
                    })
                    .collect(),
            )
        };
        let coverage = Value::Object(vec![
            ("total".into(), Value::Number(Number::U(self.coverage.total as u64))),
            ("covered".into(), Value::Number(Number::U(self.coverage.covered as u64))),
            ("percent".into(), Value::Number(Number::F(self.coverage.percent))),
            (
                "missed".into(),
                Value::Array(
                    self.coverage
                        .missed
                        .iter()
                        .map(|m| {
                            Value::Object(vec![
                                ("block".into(), Value::String(m.block.clone())),
                                ("line".into(), Value::Number(Number::U(u64::from(m.line)))),
                                ("col".into(), Value::Number(Number::U(u64::from(m.col)))),
                                ("statement".into(), Value::String(m.describe.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let phases = Value::Object(vec![
            ("stepping_ns".into(), dur(self.phases.stepping)),
            ("solving_ns".into(), dur(self.phases.solving)),
            ("emission_ns".into(), dur(self.phases.emission)),
            ("busy_ns".into(), dur(self.phases.busy)),
            ("wall_ns".into(), dur(self.phases.total)),
            ("workers".into(), Value::Number(Number::U(u64::from(self.phases.workers)))),
            ("utilization".into(), Value::Number(Number::F(self.phases.utilization()))),
        ]);
        let errors = Value::Object(vec![
            ("unknown_queries".into(), Value::Number(Number::U(self.errors.unknown_queries))),
            ("budget_retries".into(), Value::Number(Number::U(self.errors.budget_retries))),
            ("panicked_paths".into(), Value::Number(Number::U(self.errors.panicked_paths))),
            ("deadline_expired".into(), Value::Bool(self.errors.deadline_expired)),
            ("model_defaults".into(), Value::Number(Number::U(self.errors.model_defaults))),
            (
                "frontend_warnings".into(),
                Value::Number(Number::U(self.errors.frontend_warnings)),
            ),
            (
                "abandoned_by_reason".into(),
                Value::Object(
                    self.errors
                        .abandoned_by_reason
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Number(Number::U(*v))))
                        .collect(),
                ),
            ),
            (
                "panics".into(),
                Value::Array(
                    self.errors
                        .panics
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                (
                                    "trail".into(),
                                    Value::Array(
                                        p.trail
                                            .iter()
                                            .map(|b| Value::Number(Number::U(u64::from(*b))))
                                            .collect(),
                                    ),
                                ),
                                ("payload".into(), Value::String(p.payload.clone())),
                                (
                                    "last_trace".into(),
                                    match &p.last_trace {
                                        Some(t) => Value::String(t.clone()),
                                        None => Value::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let i = &self.solver;
        let cache_total = i.blast_cache_hits + i.blast_cache_misses;
        let solver = Value::Object(vec![
            ("mode".into(), Value::String(self.solver_mode.as_str().into())),
            ("warm_checks".into(), Value::Number(Number::U(i.warm_checks))),
            ("fresh_fallbacks".into(), Value::Number(Number::U(i.fresh_fallbacks))),
            ("rebuilds".into(), Value::Number(Number::U(i.rebuilds))),
            ("roots_reused".into(), Value::Number(Number::U(i.roots_reused))),
            ("roots_blasted".into(), Value::Number(Number::U(i.roots_blasted))),
            ("blast_cache_hits".into(), Value::Number(Number::U(i.blast_cache_hits))),
            ("blast_cache_misses".into(), Value::Number(Number::U(i.blast_cache_misses))),
            (
                "blast_cache_hit_rate".into(),
                Value::Number(Number::F(if cache_total == 0 {
                    0.0
                } else {
                    i.blast_cache_hits as f64 / cache_total as f64
                })),
            ),
            ("simplify_rewrites".into(), Value::Number(Number::U(i.simplify.rewrites))),
            ("simplify_substitutions".into(), Value::Number(Number::U(i.simplify.substitutions))),
            ("simplify_dropped_true".into(), Value::Number(Number::U(i.simplify.dropped_true))),
            ("simplify_fast_unsat".into(), Value::Number(Number::U(i.simplify.fast_unsat))),
            ("learnt_exported".into(), Value::Number(Number::U(i.learnt_exported))),
            ("learnt_imported".into(), Value::Number(Number::U(i.learnt_imported))),
            (
                "learnt_import_skipped".into(),
                Value::Number(Number::U(i.learnt_import_skipped)),
            ),
        ]);
        let opt_str = |s: &Option<String>| match s {
            Some(v) => Value::String(v.clone()),
            None => Value::Null,
        };
        let resume = match &self.resume {
            None => Value::Null,
            Some(r) => Value::Object(vec![
                ("resumed".into(), Value::Bool(r.resumed)),
                ("frontier_restored".into(), Value::Number(Number::U(r.frontier_restored))),
                ("tests_restored".into(), Value::Number(Number::U(r.tests_restored))),
                ("replayed_trails".into(), Value::Number(Number::U(r.replayed_trails))),
                ("memo_restored".into(), Value::Number(Number::U(r.memo_restored))),
                ("checkpoint_path".into(), opt_str(&r.checkpoint_path)),
                ("checkpoints_written".into(), Value::Number(Number::U(r.checkpoints_written))),
                ("frontier_remaining".into(), Value::Number(Number::U(r.frontier_remaining))),
                ("interrupted".into(), opt_str(&r.interrupted)),
                ("rejected".into(), opt_str(&r.rejected)),
                ("flush_error".into(), opt_str(&r.flush_error)),
                ("shard_mismatch".into(), opt_str(&r.shard_mismatch)),
            ]),
        };
        // Schema versioning policy: within a major version, changes are
        // append-only — every v1 field keeps its name, type, and meaning,
        // and consumers must ignore unknown fields. v2 adds: `col` on
        // coverage.missed entries, `resume.replayed_trails`,
        // `provenance_records`, (CLI-side) `status_endpoint`, and
        // `differential` (null outside `p4testgen diff` runs).
        Value::Object(vec![
            ("schema".into(), Value::String("p4testgen-run-summary/v2".into())),
            ("tests".into(), Value::Number(Number::U(self.tests))),
            ("paths_explored".into(), Value::Number(Number::U(self.paths_explored))),
            ("infeasible_paths".into(), Value::Number(Number::U(self.infeasible_paths))),
            ("abandoned_paths".into(), Value::Number(Number::U(self.abandoned_paths))),
            ("out_of_shard_paths".into(), Value::Number(Number::U(self.out_of_shard_paths))),
            ("coverage".into(), coverage),
            ("phases".into(), phases),
            ("solver_checks".into(), Value::Number(Number::U(self.solver_checks))),
            ("memo_hits".into(), Value::Number(Number::U(self.memo_hits))),
            ("solver".into(), solver),
            ("errors".into(), errors),
            ("test_trails".into(), trails(&self.test_trails)),
            ("resume".into(), resume),
            (
                "provenance_records".into(),
                match &self.provenance {
                    Some(p) => Value::Number(Number::U(p.len() as u64)),
                    None => Value::Null,
                },
            ),
            (
                "differential".into(),
                match &self.differential {
                    Some(d) => d.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A bounded, thread-safe feasibility memo shared *across* runs by a
/// long-lived host (the serve daemon). Keys are the stable, canonical
/// constraint-set fingerprints from [`p4t_smt::stable_fingerprint`] —
/// content-addressed, so entries are valid across programs and targets:
/// an identical fingerprint means an identical (alpha-renamed) constraint
/// system, and feasibility is a pure function of that system.
///
/// The fingerprint is paired with a *budget class* (see
/// [`feas_budget_class`]): a Sat/Unsat verdict is a fact about the
/// constraint system, but *whether a cold run reaches it at all* depends
/// on the solver budget (a small budget abandons as Unknown where a large
/// one resolves). Sharing a verdict across budget classes would let a
/// high-budget tenant's answer leak into a low-budget tenant's run,
/// breaking its byte-identity with an equivalent cold CLI run.
///
/// Bounded by an LRU so a daemon serving many tenants cannot grow memo
/// state without limit; the [`p4t_obs::LruStats`] counters feed the
/// daemon's `/metrics` export.
pub struct SharedFeasMemo {
    inner: Mutex<p4t_obs::LruCache<(u64, u128), bool>>,
}

/// The config subset that decides whether a feasibility query resolves at
/// all (as opposed to what the verdict is): the conflict budget, the
/// budget-retry switch, and — only when retries are on — the seed, which
/// feeds the retry's phase seed and so decides whether a retried query
/// comes back definitive. Two runs in the same class abandon the same
/// queries, so they may share memoized verdicts without perturbing each
/// other's suites.
pub fn feas_budget_class(c: &TestgenConfig) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, &c.solver_budget.to_le_bytes());
    fnv_mix(&mut h, &u64::from(c.budget_retry).to_le_bytes());
    fnv_mix(&mut h, &(if c.budget_retry { c.seed } else { 0 }).to_le_bytes());
    h
}

impl SharedFeasMemo {
    /// A memo holding at most `capacity` verdicts.
    pub fn new(capacity: usize) -> Self {
        SharedFeasMemo { inner: Mutex::new(p4t_obs::LruCache::new(capacity)) }
    }

    fn get(&self, class: u64, fp: u128) -> Option<bool> {
        self.inner.lock().get(&(class, fp)).copied()
    }

    fn put(&self, class: u64, fp: u128, sat: bool) {
        self.inner.lock().insert((class, fp), sat);
    }

    /// Cache statistics (size, capacity, hit/miss/eviction counters).
    pub fn stats(&self) -> p4t_obs::LruStats {
        self.inner.lock().stats()
    }
}

impl std::fmt::Debug for SharedFeasMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedFeasMemo")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

/// Memoizes fork-feasibility verdicts by constraint *set*. Different
/// interleavings frequently reconverge on the same constraint set (e.g.
/// sibling table branches re-deriving a parser prefix); hash consing makes
/// the sorted `TermId` vector a cheap canonical key. Only the sat/unsat
/// verdict is cached — emission-time checks always run, because they need a
/// fresh model.
struct FeasMemo {
    map: Mutex<HashMap<Vec<TermId>, bool>>,
    hits: AtomicU64,
    lookups: AtomicU64,
    /// Process-portable second layer, keyed by the canonical (alpha-renamed)
    /// constraint-set fingerprint instead of `TermId`s. Enabled only when a
    /// run checkpoints or resumes: this is the form the memo round-trips
    /// through [`ExplorationState::memo`], and computing fingerprints costs
    /// a term walk per miss, which plain runs should not pay.
    stable: Option<Mutex<HashMap<u128, bool>>>,
    /// Cross-run layer owned by a long-lived host (see
    /// [`TestgenConfig::shared_memo`]); consulted after `stable`, written
    /// alongside it. Keyed by `(external_class, fingerprint)` so tenants
    /// with different solver budgets never see each other's verdicts.
    external: Option<Arc<SharedFeasMemo>>,
    /// This run's [`feas_budget_class`], fixed at construction.
    external_class: u64,
}

impl FeasMemo {
    fn new() -> Self {
        FeasMemo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            stable: None,
            external: None,
            external_class: 0,
        }
    }

    /// A memo with the stable-fingerprint layer on, seeded from a restored
    /// checkpoint's entries (empty for a cold checkpointed start) and
    /// optionally connected to a host-owned cross-run cache, which is
    /// consulted only within this run's budget class.
    fn with_persistence(
        entries: &[(u128, bool)],
        external: Option<Arc<SharedFeasMemo>>,
        external_class: u64,
    ) -> Self {
        FeasMemo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            stable: Some(Mutex::new(entries.iter().copied().collect())),
            external,
            external_class,
        }
    }

    /// Is a stable-fingerprint layer enabled (checkpointing runs and runs
    /// hosted by the serve daemon)?
    fn persistent(&self) -> bool {
        self.stable.is_some() || self.external.is_some()
    }

    fn stable_lookup(&self, fp: u128) -> Option<bool> {
        if let Some(s) = &self.stable {
            if let Some(&sat) = s.lock().get(&fp) {
                return Some(sat);
            }
        }
        self.external.as_ref()?.get(self.external_class, fp)
    }

    fn stable_record(&self, fp: u128, sat: bool) {
        if let Some(s) = &self.stable {
            s.lock().insert(fp, sat);
        }
        if let Some(e) = &self.external {
            e.put(self.external_class, fp, sat);
        }
    }

    /// Sorted dump of the stable layer for checkpointing (empty when the
    /// layer is off).
    fn stable_snapshot(&self) -> Vec<(u128, bool)> {
        match &self.stable {
            Some(s) => {
                let mut v: Vec<(u128, bool)> = s.lock().iter().map(|(&k, &v)| (k, v)).collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }

    fn key(constraints: &[TermId]) -> Vec<TermId> {
        let mut k = constraints.to_vec();
        k.sort_unstable();
        k.dedup();
        k
    }

    fn lookup(&self, key: &[TermId]) -> Option<bool> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let hit = self.map.lock().get(key).copied();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn record(&self, key: Vec<TermId>, sat: bool) {
        self.map.lock().insert(key, sat);
    }
}

/// A queued state plus its cached coverage-novelty score. The score is the
/// count of statements this path covered that are still globally uncovered;
/// it is stamped with the [`SharedCoverage`] epoch so it is recomputed only
/// when global coverage has actually grown since it was cached.
struct Pending {
    st: ExecState,
    novelty: Option<(u64, usize)>,
}

/// The exploration journal: the single serializable source of truth for
/// what is left to explore and what has been produced. Workers commit one
/// atomic transaction per finished path — remove the popped trail, insert
/// its spawned children, append its emission, fold its counters — so any
/// locked snapshot is a *consistent cut* of the path tree: every path is
/// either still in `pending`, or fully accounted for by its replacements.
/// That invariant is what makes checkpoints resumable without replaying
/// partial work.
#[derive(Default)]
struct Journal {
    /// Every queued or in-flight queue-time trail. A trail leaves this set
    /// only in the same transaction that inserts its children/emission.
    pending: BTreeSet<Vec<u32>>,
    /// Emitted tests keyed by their full completed-path trail (unsorted;
    /// the merger sorts).
    emitted: Vec<(Vec<u32>, TestSpec)>,
    paths: u64,
    infeasible: u64,
    abandoned: u64,
    /// Fork subtrees pruned because another shard owns them.
    out_of_shard: u64,
    errors: ErrorStats,
}

/// Everything the workers share for one run.
struct Shared<'a, T: Target> {
    prog: &'a IrProgram,
    target: &'a T,
    pool: &'a TermPool,
    config: &'a TestgenConfig,
    concolics: &'a ConcolicRegistry,
    program_name: &'a str,
    next_id: AtomicU64,
    /// States queued or being processed; exploration is done when a worker
    /// finds no work and this is zero.
    live: AtomicU64,
    /// Cooperative stop: set on reaching a cap; workers drain their queues
    /// without processing.
    stop: AtomicBool,
    /// With `max_tests = k`: the k lexicographically-smallest emitted
    /// trails so far (a max-heap, so the worst retained trail is at the
    /// top). A pending state whose trail is ≥ the heap's top once the heap
    /// is full can only produce tests outside the final top-k (descendant
    /// trails extend, and therefore lexicographically follow, the state's
    /// trail) and is pruned. This makes the capped suite exactly "the first
    /// k tests in canonical trail order" — deterministic for a fixed seed
    /// at any job count and across repeated runs, unlike a stop-at-k flag,
    /// which would cap whichever paths happened to finish first.
    best: Mutex<BinaryHeap<Vec<u32>>>,
    /// Paths claimed for processing (for the `max_paths` cap).
    paths_started: AtomicU64,
    coverage: SharedCoverage,
    memo: FeasMemo,
    /// Cross-worker learnt-clause pool, created when the run is incremental
    /// with more than one worker. Clause traffic influences only warm-core
    /// search order, never verdicts, so it cannot perturb the emitted suite.
    exchange: Option<Arc<ClauseExchange>>,
    stealers: Vec<Stealer<Pending>>,
    /// Run start, for the cooperative deadline below.
    started: Instant,
    /// Effective wall-clock deadline: the fault plan's override when set,
    /// else `config.deadline`.
    deadline: Option<Duration>,
    /// Latched once any worker observes the deadline expired.
    deadline_hit: AtomicBool,
    /// A worker died *outside* the per-path panic isolation (a harness bug).
    /// Siblings bail out instead of spinning on `live`, and the join
    /// surfaces a [`RunError`].
    aborted: AtomicBool,
    /// The exploration journal (frontier + emissions + counters); see
    /// [`Journal`].
    journal: Mutex<Journal>,
    /// Cooperative drain latched: an external signal, the deadline, or a
    /// kill fault asked the run to stop taking new states.
    drain_hit: AtomicBool,
    /// A kill fault fired: the run simulates a hard abort (final checkpoint
    /// flushed, no tests delivered).
    kill_hit: AtomicBool,
    /// Suite-affecting config fingerprint stamped into checkpoints.
    run_fingerprint: u64,
    /// Timestamp of the last periodic checkpoint flush (also serializes
    /// writers: flushes hold this lock across the write).
    last_flush: Mutex<Instant>,
    checkpoints_written: AtomicU64,
    /// First checkpoint-write failure, surfaced in [`ResumeInfo`].
    flush_error: Mutex<Option<String>>,
    /// Time and on-disk size of the last successful checkpoint flush, for
    /// the checkpoint gauges and the `/status` endpoint.
    last_ckpt: Mutex<Option<(Instant, u64)>>,
}

impl<T: Target> Shared<'_, T> {
    /// Has the run deadline expired? Latches the verdict and sets the
    /// cooperative stop flag on first observation, so workers drain their
    /// queues and the run ends with a deterministic partial suite.
    fn deadline_expired(&self) -> bool {
        let Some(d) = self.deadline else { return false };
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        if self.started.elapsed() >= d {
            self.deadline_hit.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Has anything asked for a cooperative drain? Sources: an external
    /// drain flag (signal handler), the run deadline, or a kill fault
    /// (latched directly by the worker that popped the poisoned trail).
    /// Latches `drain_hit` and the stop flag on first observation.
    fn drain_requested(&self) -> bool {
        if self.drain_hit.load(Ordering::Relaxed) {
            return true;
        }
        let external = self.config.drain.as_ref().is_some_and(|f| f.load(Ordering::Relaxed));
        if external {
            self.drain_hit.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return true;
        }
        if self.deadline_expired() {
            self.drain_hit.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Snapshot the run into a serializable [`ExplorationState`]. Safe to
    /// call while workers run: the journal lock gives a consistent frontier
    /// cut, and the coverage/best/memo snapshots are supersets of that cut's
    /// state — resume only ever unions them back in.
    fn snapshot_state(&self) -> ExplorationState {
        let (frontier, mut emitted, paths, infeasible, abandoned, errors) = {
            let j = self.journal.lock();
            (
                j.pending.iter().cloned().collect::<Vec<_>>(),
                j.emitted.clone(),
                j.paths,
                j.infeasible,
                j.abandoned,
                j.errors.clone(),
            )
        };
        emitted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut best: Vec<Vec<u32>> = self.best.lock().iter().cloned().collect();
        best.sort();
        let (coverage_words, coverage_epoch) = self.coverage.snapshot();
        ExplorationState {
            config_hash: self.run_fingerprint,
            frontier,
            emitted,
            best,
            coverage_words,
            coverage_epoch,
            memo: self.memo.stable_snapshot(),
            paths_explored: paths,
            infeasible_paths: infeasible,
            abandoned_paths: abandoned,
            errors,
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            shard: self.config.shard,
        }
    }

    /// Write a checkpoint to `path`, recording success or the first
    /// failure. Transient IO errors are retried with bounded deterministic
    /// backoff (see [`ExplorationState::write_atomic_retry`]); a final
    /// failure is classified, never silent. Callers serialize via
    /// `last_flush`.
    fn flush_checkpoint(&self, path: &std::path::Path) -> bool {
        let state = self.snapshot_state();
        match state.write_atomic_retry(path) {
            Ok(attempts) => {
                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                if attempts > 1 {
                    if let Some(reg) = &self.config.obs.metrics {
                        reg.counter(
                            "p4testgen_checkpoint_write_retries_total",
                            "Checkpoint writes that needed transient-IO retries",
                        )
                        .add(u64::from(attempts - 1));
                    }
                }
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                *self.last_ckpt.lock() = Some((Instant::now(), bytes));
                if let Some(ls) = &self.config.obs.live {
                    ls.note_checkpoint(bytes);
                }
                if let Some(reg) = &self.config.obs.metrics {
                    reg.gauge(
                        "p4testgen_checkpoint_bytes",
                        "On-disk size of the last successful checkpoint",
                    )
                    .set(bytes);
                    reg.gauge(
                        "p4testgen_checkpoint_age_seconds",
                        "Seconds since the last successful checkpoint flush",
                    )
                    .set(0);
                }
                true
            }
            Err(e) => {
                let mut slot = self.flush_error.lock();
                if slot.is_none() {
                    *slot = Some(e.to_string());
                }
                false
            }
        }
    }
}

/// Queue-depth histogram bounds (inclusive upper bounds; +Inf implicit).
/// Sampled once per dequeued state, so the histogram answers "how deep was
/// my local queue when I took work" — the signal for steal pressure.
const QUEUE_DEPTH_BOUNDS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Per-worker results, merged on the main thread after the join. Path
/// counters, emissions, and error taxonomies live in the shared [`Journal`]
/// (committed transactionally per path), not here: only genuinely
/// worker-local instrumentation rides back on the join.
#[derive(Default)]
struct WorkerOut {
    phases: PhaseStats,
    solver_stats: SolverStats,
    sat_stats: SatStats,
    /// Warm-spine / simplifier / blast-cache / exchange counters.
    inc_stats: IncrementalStats,
    /// This worker's trace buffer (populated only under `ObsConfig::trace`).
    trace: Option<TraceLog>,
    /// Successful steals from sibling deques.
    steals: u64,
    /// Busy→idle transitions (the worker found no local or stealable work).
    parks: u64,
    /// Wall-clock this worker spent *not* holding a state.
    idle: Duration,
    /// Local-queue depth histogram (populated only when metrics are on).
    queue_depth_hist: [u64; QUEUE_DEPTH_BOUNDS.len() + 1],
    /// Sum of the sampled depths (the histogram's `_sum` series).
    queue_depth_sum: u64,
    /// Per-emission provenance raw material: (trail, path-constraint
    /// count, logical solver checks). Populated only under
    /// `ObsConfig::provenance`; coverage deltas are derived at merge time.
    prov: Vec<(Vec<u32>, u64, u64)>,
    /// Abandonment sites (populated only under `ObsConfig::explain`).
    abandon_sites: Vec<AbandonSite>,
}

/// A target-validated frontend compile, separated from [`Testgen`] so a
/// long-lived host can cache it: compiling is the expensive, immutable
/// part of request setup (parse + type-check + IR lowering), keyed purely
/// on (source, target). [`Testgen::from_compiled`] turns one into a driver
/// without recompiling.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The lowered IR (target pipeline shape already validated).
    pub prog: IrProgram,
    /// Warning diagnostics from the frontend (program still compiled).
    pub frontend_warnings: Vec<p4t_frontend::Diagnostic>,
    /// Number of prelude lines prepended ahead of the user's source.
    pub prelude_lines: u32,
    /// FNV-1a over the full (prelude-prepended) source and the target
    /// name; one input to [`run_fingerprint_of`].
    pub source_fingerprint: u64,
}

impl CompiledProgram {
    /// Compile `source` with `target`'s prelude prepended and validate the
    /// pipeline shape against the target.
    pub fn build<T: Target>(source: &str, target: &T) -> Result<CompiledProgram, BuildError> {
        let prelude = target.prelude();
        let full = format!("{prelude}\n{source}");
        // Number of newlines ahead of the user's first line in `full`.
        let prelude_lines = prelude.matches('\n').count() as u32 + 1;
        let (prog, frontend_warnings) = p4t_ir::compile_full(&full)
            .map_err(|diagnostics| BuildError::Frontend { diagnostics, prelude_lines })?;
        target.pipeline(&prog).map_err(BuildError::Target)?; // validate early
        let mut source_fingerprint = FNV_OFFSET;
        fnv_mix(&mut source_fingerprint, full.as_bytes());
        fnv_mix(&mut source_fingerprint, target.name().as_bytes());
        Ok(CompiledProgram { prog, frontend_warnings, prelude_lines, source_fingerprint })
    }
}

/// The suite-deciding fingerprint for a compiled program under `config`:
/// everything that decides the emitted bytes — the compiled source, the
/// target, and the suite-affecting config fields. Schedule-only knobs
/// (`jobs`, `deadline`, `solver_mode`, fault plans, observability,
/// checkpoint/resume/drain wiring, shared memo, and the shard spec — the
/// *merged* suite is shard-independent) are excluded, so a resumed run may
/// change them and still complete the identical suite. Exposed free-form so
/// a host can compute cache keys before constructing a [`Testgen`].
pub fn run_fingerprint_of(source_fingerprint: u64, c: &TestgenConfig) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, &source_fingerprint.to_le_bytes());
    for v in [
        c.max_tests,
        c.max_paths,
        c.max_steps_per_path,
        c.seed,
        u64::from(c.parser_loop_bound),
        c.strategy as u64,
        u64::from(c.preconditions.apply_entry_restrictions),
        c.preconditions.fixed_packet_bytes.map_or(u64::MAX, u64::from),
        u64::from(c.stop_at_full_coverage),
        u64::from(c.concolic_retries),
        u64::from(c.eager_pruning),
        c.solver_budget,
        u64::from(c.budget_retry),
    ] {
        fnv_mix(&mut h, &v.to_le_bytes());
    }
    h
}

/// The generation driver. Owns the term pool, the target extension, and the
/// compiled program; each exploration worker owns its solver.
pub struct Testgen<T: Target> {
    pub prog: IrProgram,
    pub target: T,
    pool: TermPool,
    pub config: TestgenConfig,
    pub concolics: ConcolicRegistry,
    program_name: String,
    /// Warning diagnostics from the frontend (program still compiled).
    frontend_warnings: Vec<p4t_frontend::Diagnostic>,
    /// Solver statistics merged across all workers of all runs.
    solver_totals: SolverStats,
    sat_totals: SatStats,
    /// FNV-1a over the full (prelude-prepended) source and the target name;
    /// one input to [`Testgen::run_fingerprint`].
    source_fingerprint: u64,
}

impl<T: Target> Testgen<T> {
    /// Compile `source` (with the target's prelude prepended) and prepare a
    /// generation run.
    ///
    /// Convenience wrapper over [`Testgen::new_checked`] that flattens the
    /// structured [`BuildError`] into a rendered string.
    pub fn new(program_name: &str, source: &str, target: T, config: TestgenConfig) -> Result<Self, String> {
        Self::new_checked(program_name, source, target, config).map_err(|e| e.to_string())
    }

    /// Compile `source` (with the target's prelude prepended) and prepare a
    /// generation run, preserving structured frontend diagnostics for
    /// rendering against the user's source.
    pub fn new_checked(
        program_name: &str,
        source: &str,
        target: T,
        config: TestgenConfig,
    ) -> Result<Self, BuildError> {
        let compiled = CompiledProgram::build(source, &target)?;
        Ok(Testgen::from_compiled(program_name, compiled, target, config))
    }

    /// Build a driver from an already-compiled program (see
    /// [`CompiledProgram`]) — no frontend work, so a host with a compile
    /// cache pays only the (cheap) driver construction per request. The
    /// compiled program must have been built for the same target kind;
    /// the pipeline shape was already validated at compile time.
    pub fn from_compiled(
        program_name: &str,
        compiled: CompiledProgram,
        target: T,
        config: TestgenConfig,
    ) -> Self {
        Testgen {
            prog: compiled.prog,
            target,
            pool: TermPool::new(),
            config,
            concolics: ConcolicRegistry::with_builtins(),
            program_name: program_name.to_string(),
            frontend_warnings: compiled.frontend_warnings,
            solver_totals: SolverStats::default(),
            sat_totals: SatStats::default(),
            source_fingerprint: compiled.source_fingerprint,
        }
    }

    /// Replace the `program` name stamped into every emitted test. A host
    /// reusing a warm instance for a request with a different display name
    /// must call this: the name is presentation-only (it is not part of
    /// the run fingerprint), so the cache may legitimately serve it, but
    /// the suite must carry the *requesting* tenant's name, not the name
    /// of whoever warmed the instance.
    pub fn set_program_name(&mut self, name: &str) {
        name.clone_into(&mut self.program_name);
    }

    /// Fingerprint of everything that decides the emitted suite's bytes
    /// (see [`run_fingerprint_of`]). Stamped into checkpoints and
    /// validated on resume.
    pub fn run_fingerprint(&self) -> u64 {
        run_fingerprint_of(self.source_fingerprint, &self.config)
    }

    /// The (source, target) fingerprint this driver was compiled from.
    pub fn source_fingerprint(&self) -> u64 {
        self.source_fingerprint
    }

    /// Warning diagnostics from the frontend compile (empty when clean).
    pub fn frontend_warnings(&self) -> &[p4t_frontend::Diagnostic] {
        &self.frontend_warnings
    }

    /// Access the compiled program.
    pub fn program(&self) -> &IrProgram {
        &self.prog
    }

    /// Solver timing and SAT-core statistics (Fig. 7 analysis), summed over
    /// every worker's solver.
    pub fn solver_stats(&self) -> (Duration, Duration, SatStats) {
        (self.solver_totals.solve_time, self.solver_totals.sat_time, self.sat_totals.clone())
    }

    /// Run generation, invoking `on_test` for every emitted test. Returning
    /// `false` from the callback stops the run.
    ///
    /// Convenience wrapper over [`Testgen::try_run`] that panics on the
    /// (harness-bug-only) [`RunError`]; path-level faults never reach it —
    /// they degrade into [`RunSummary::errors`].
    pub fn run(&mut self, on_test: impl FnMut(&TestSpec) -> bool) -> RunSummary {
        match self.try_run(on_test) {
            Ok(summary) => summary,
            Err(e) => panic!("testgen run failed: {e}"),
        }
    }

    /// Run generation, invoking `on_test` for every emitted test. Returning
    /// `false` from the callback stops the run.
    ///
    /// With `config.jobs > 1` exploration fans out over a work-stealing
    /// thread pool; emitted tests are collected, canonically ordered by
    /// fork trail, renumbered, and only then delivered to `on_test` on the
    /// calling thread.
    ///
    /// Path-level faults (panicking paths, Unknown solver verdicts, the run
    /// deadline) are *contained*: the run completes and reports them in
    /// [`RunSummary::errors`]. `Err` is reserved for workers dying outside
    /// that isolation — a harness bug, surfaced structurally instead of
    /// aborting the process.
    pub fn try_run(
        &mut self,
        mut on_test: impl FnMut(&TestSpec) -> bool,
    ) -> Result<RunSummary, RunError> {
        let t_start = Instant::now();
        // Request-level fault injection (serve isolation tests): these
        // fire before any worker spawns, so they deliberately escape the
        // per-path containment below — the host's per-*request*
        // `catch_unwind` is what must contain them.
        if self.config.fault_plan.driver_panic {
            panic!("injected driver panic (FaultPlan::driver_panic)");
        }
        if let Some(stall) = self.config.fault_plan.driver_stall {
            let until = t_start + stall;
            loop {
                if self.config.drain.as_ref().is_some_and(|d| d.load(Ordering::Acquire)) {
                    break;
                }
                let now = Instant::now();
                if now >= until {
                    break;
                }
                std::thread::sleep((until - now).min(Duration::from_millis(5)));
            }
        }
        let jobs = self.config.jobs.max(1);
        let fingerprint = self.run_fingerprint();
        let ckpt_enabled = self.config.checkpoint.is_some() || self.config.resume.is_some();
        let mut resume_info: Option<ResumeInfo> = ckpt_enabled.then(ResumeInfo::default);

        // Validate an offered resume state against this run's fingerprint.
        // A mismatch degrades to a cold start (recorded, never an error):
        // the checkpoint simply describes a different suite.
        let mut restored: Option<ExplorationState> = None;
        if let Some(r) = &self.config.resume {
            match r.validate_config(fingerprint) {
                Ok(()) => restored = Some(r.clone()),
                Err(e) => {
                    if let Some(info) = &mut resume_info {
                        info.rejected = Some(e.kind().to_string());
                    }
                    if let Some(fr) = &self.config.obs.flight {
                        fr.record_run("resume-rejected", Some(e.kind().to_string()));
                    }
                }
            }
        }
        // The config fingerprint deliberately excludes sharding (every
        // shard of one partition must share it), so the recorded filter is
        // compared separately: resuming under a different `--shard` leaves
        // frontier subtrees this process does not own silently unexplored.
        if let (Some(r), Some(info)) = (&restored, &mut resume_info) {
            if r.shard != self.config.shard {
                let describe = |s: Option<ShardSpec>| match s {
                    Some(s) => format!("shard {s}"),
                    None => "no shard filter".to_string(),
                };
                info.shard_mismatch = Some(format!(
                    "checkpoint written under {}, resumed under {}",
                    describe(r.shard),
                    describe(self.config.shard),
                ));
            }
        }
        if let Some(fr) = &self.config.obs.flight {
            let shard = self
                .config
                .shard
                .as_ref()
                .map_or(String::new(), |s| format!(" shard={}/{}", s.index, s.count));
            fr.record_run("run-start", Some(format!("jobs={jobs}{shard}")));
        }
        if let Some(ls) = &self.config.obs.live {
            ls.workers_total.store(jobs, Ordering::Relaxed);
            ls.total_statements.store(self.prog.num_statements() as u64, Ordering::Relaxed);
        }

        let shared = Shared {
            prog: &self.prog,
            target: &self.target,
            pool: &self.pool,
            config: &self.config,
            concolics: &self.concolics,
            program_name: &self.program_name,
            next_id: AtomicU64::new(0),
            live: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            best: Mutex::new(BinaryHeap::new()),
            paths_started: AtomicU64::new(0),
            coverage: SharedCoverage::new(&self.prog),
            memo: if ckpt_enabled || self.config.shared_memo.is_some() {
                FeasMemo::with_persistence(
                    restored.as_ref().map_or(&[], |r| r.memo.as_slice()),
                    self.config.shared_memo.clone(),
                    feas_budget_class(&self.config),
                )
            } else {
                FeasMemo::new()
            },
            exchange: (self.config.solver_mode == SolverMode::Incremental && jobs > 1)
                .then(|| Arc::new(ClauseExchange::new())),
            stealers: Vec::new(),
            started: t_start,
            deadline: self.config.fault_plan.deadline_override.or(self.config.deadline),
            deadline_hit: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            journal: Mutex::new(Journal::default()),
            drain_hit: AtomicBool::new(false),
            kill_hit: AtomicBool::new(false),
            run_fingerprint: fingerprint,
            last_flush: Mutex::new(Instant::now()),
            checkpoints_written: AtomicU64::new(
                restored.as_ref().map_or(0, |r| r.checkpoints_written),
            ),
            flush_error: Mutex::new(None),
            last_ckpt: Mutex::new(None),
        };

        // Initial state.
        let mut init = ExecState::new(0);
        {
            let mut ctx = ExecCtx::new(
                shared.pool,
                shared.prog,
                &shared.next_id,
                self.config.parser_loop_bound,
                self.config.seed,
            );
            ctx.apply_entry_restrictions = self.config.preconditions.apply_entry_restrictions;
            self.target.init(&mut ctx, &mut init);
            if let Some(bytes) = self.config.preconditions.fixed_packet_bytes {
                init.packet.grow_input(ctx.pool, bytes * 8);
            }
        }
        init.continuations.push(Cmd::PipeStep(0));

        let deques: Vec<WorkerDeque<Pending>> =
            (0..jobs).map(|_| WorkerDeque::new_lifo()).collect();
        let mut shared = shared;
        shared.stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = shared;

        if let Some(r) = restored {
            // Warm start: restore coverage, the top-k heap, and the journal,
            // then rebuild a live state for every frontier trail by
            // replaying execution along it. Replay is single-threaded and
            // skips feasibility/fault work — the original run already
            // admitted these exact trails.
            shared.coverage.restore(&r.coverage_words, r.coverage_epoch);
            *shared.best.lock() = BinaryHeap::from(r.best);
            let frontier = sanitize_frontier(r.frontier);
            {
                let mut j = shared.journal.lock();
                j.pending = frontier.clone();
                j.emitted = r.emitted;
                j.paths = r.paths_explored;
                j.infeasible = r.infeasible_paths;
                j.abandoned = r.abandoned_paths;
                j.errors = r.errors;
                // Run-scoped flags are re-derived by *this* run's merger.
                j.errors.deadline_expired = false;
                j.errors.frontend_warnings = 0;
                if let Some(info) = &mut resume_info {
                    info.resumed = true;
                    info.frontier_restored = j.pending.len() as u64;
                    info.tests_restored = j.emitted.len() as u64;
                    info.memo_restored = r.memo.len() as u64;
                }
            }
            let mut live = 0u64;
            for (i, trail) in frontier.iter().enumerate() {
                match replay_to_trail(&shared, &init, trail) {
                    Some(st) => {
                        deques[i % jobs].push(Pending { st, novelty: None });
                        live += 1;
                    }
                    None => {
                        // Replay of a checksum-valid trail failed: the
                        // program or engine diverged from the checkpoint's
                        // world. Count it abandoned rather than losing it
                        // silently or poisoning the run.
                        let mut j = shared.journal.lock();
                        j.pending.remove(trail);
                        j.abandoned += 1;
                        j.errors.bump_reason(reason::EXEC_ERROR);
                    }
                }
            }
            if let Some(info) = &mut resume_info {
                info.replayed_trails = live;
            }
            if let Some(fr) = &self.config.obs.flight {
                fr.record_run("resume-restored", Some(format!("replayed={live}")));
            }
            if let Some(ls) = &self.config.obs.live {
                let j = shared.journal.lock();
                ls.frontier_depth.store(j.pending.len() as u64, Ordering::Relaxed);
                ls.tests_emitted.store(j.emitted.len() as u64, Ordering::Relaxed);
                ls.paths_explored.store(j.paths, Ordering::Relaxed);
                drop(j);
                ls.sample_coverage(shared.coverage.covered_count() as u64);
            }
            shared.live.store(live, Ordering::Release);
        } else {
            shared.journal.lock().pending.insert(Vec::new());
            shared.live.store(1, Ordering::Release);
            deques[0].push(Pending { st: init, novelty: None });
        }

        let outs: Vec<WorkerOut> = if jobs == 1 {
            let local = deques.into_iter().next().expect("one deque");
            vec![run_worker(&shared, 0, local)]
        } else {
            let sh = &shared;
            let joined: Vec<Result<WorkerOut, String>> = crossbeam::scope(move |s| {
                let handles: Vec<_> = deques
                    .into_iter()
                    .enumerate()
                    .map(|(i, local)| s.spawn(move |_| run_worker(sh, i, local)))
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(i, h)| {
                        h.join().map_err(|p| {
                            format!("worker {i} panicked: {}", panic_payload_text(p.as_ref()))
                        })
                    })
                    .collect()
            })
            .map_err(|p| RunError {
                worker_failures: vec![format!(
                    "exploration scope failed: {}",
                    panic_payload_text(p.as_ref())
                )],
            })?;
            let mut outs = Vec::with_capacity(joined.len());
            let mut worker_failures = Vec::new();
            for r in joined {
                match r {
                    Ok(o) => outs.push(o),
                    Err(m) => worker_failures.push(m),
                }
            }
            if !worker_failures.is_empty() {
                return Err(RunError { worker_failures });
            }
            outs
        };

        // Final checkpoint flush — always when configured, even on clean
        // completion (an empty-frontier checkpoint is how shard campaigns
        // hand their emissions to the merge step, and how a later `--resume`
        // knows the suite is already complete).
        if let Some(ck) = &self.config.checkpoint {
            shared.flush_checkpoint(&ck.path);
        }

        // Merge per-worker instrumentation; path counters, emissions, and
        // error taxonomies come from the journal.
        let mut phases = PhaseStats::default();
        let mut run_solver = SolverStats::default();
        let mut run_sat = SatStats::default();
        let mut run_inc = IncrementalStats::default();
        let mut trace = self.config.obs.trace.then(TraceLog::new);
        let mut steals = 0u64;
        let mut parks = 0u64;
        let mut idle = Duration::ZERO;
        let mut queue_depth_hist = [0u64; QUEUE_DEPTH_BOUNDS.len() + 1];
        let mut queue_depth_sum = 0u64;
        let mut prov_raw: Vec<(Vec<u32>, u64, u64)> = Vec::new();
        let mut abandon_sites: Vec<AbandonSite> = Vec::new();
        for mut o in outs {
            prov_raw.append(&mut o.prov);
            abandon_sites.append(&mut o.abandon_sites);
            phases.absorb(&o.phases);
            merge_solver_stats(&mut run_solver, &o.solver_stats);
            merge_sat_stats(&mut run_sat, &o.sat_stats);
            run_inc.absorb(&o.inc_stats);
            if let (Some(t), Some(wt)) = (&mut trace, o.trace.take()) {
                t.absorb(wt);
            }
            steals += o.steals;
            parks += o.parks;
            idle += o.idle;
            for (acc, c) in queue_depth_hist.iter_mut().zip(o.queue_depth_hist.iter()) {
                *acc += c;
            }
            queue_depth_sum += o.queue_depth_sum;
        }
        let (paths, infeasible, abandoned, out_of_shard, mut errors, mut merged, frontier_remaining) = {
            let mut j = shared.journal.lock();
            (
                j.paths,
                j.infeasible,
                j.abandoned,
                j.out_of_shard,
                std::mem::take(&mut j.errors),
                std::mem::take(&mut j.emitted),
                j.pending.len() as u64,
            )
        };
        merge_solver_stats(&mut self.solver_totals, &run_solver);
        merge_sat_stats(&mut self.sat_totals, &run_sat);
        if let Some(t) = &mut trace {
            t.canonicalize();
        }
        errors.deadline_expired |= shared.deadline_hit.load(Ordering::Relaxed);
        errors.frontend_warnings = self.frontend_warnings.len() as u64;
        // Canonical panic order too: by trail, like the test suite itself.
        errors.panics.sort_by(|a, b| a.trail.cmp(&b.trail));
        errors.panics.truncate(MAX_PANIC_RECORDS);
        let solver_checks = self.solver_totals.checks;
        let memo_hits = shared.memo.hits.load(Ordering::Relaxed);

        // A kill fault simulates power loss right after the final flush:
        // nothing is delivered downstream of the (already-written)
        // checkpoint, exactly like a real dead process.
        let killed = shared.kill_hit.load(Ordering::Relaxed);
        if killed {
            merged.clear();
            if resume_info.is_none() {
                resume_info = Some(ResumeInfo::default());
            }
        }
        if let Some(info) = &mut resume_info {
            info.checkpoint_path =
                self.config.checkpoint.as_ref().map(|c| c.path.display().to_string());
            info.checkpoints_written = shared.checkpoints_written.load(Ordering::Relaxed);
            info.frontier_remaining = frontier_remaining;
            info.flush_error = shared.flush_error.lock().take();
            info.interrupted = if killed {
                Some("kill-fault".to_string())
            } else if shared.deadline_hit.load(Ordering::Relaxed) {
                Some("deadline".to_string())
            } else if shared.drain_hit.load(Ordering::Relaxed) {
                Some("signal".to_string())
            } else {
                None
            };
        }

        // Canonical order: lexicographic by fork trail — the order a
        // sequential DFS-of-the-fork-tree would discover the paths in,
        // independent of worker scheduling.
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        if self.config.max_tests > 0 {
            merged.truncate(self.config.max_tests as usize);
        }
        let test_trails: Vec<Vec<u32>> = merged.iter().map(|(t, _)| t.clone()).collect();
        let mut tests = 0u64;
        for (i, (_, spec)) in merged.iter_mut().enumerate() {
            spec.id = i as u64;
        }
        // Provenance: coverage deltas are derived by walking the *final*
        // suite in canonical order, so they are a pure function of the
        // suite — deterministic at any job count — rather than of the
        // racy order in which workers reached `SharedCoverage::add`.
        let provenance = self.config.obs.provenance.then(|| {
            let meta: BTreeMap<&[u32], (u64, u64)> =
                prov_raw.iter().map(|(t, c, k)| (t.as_slice(), (*c, *k))).collect();
            let mut seen: BTreeSet<u32> = BTreeSet::new();
            merged
                .iter()
                .map(|(trail, spec)| {
                    let mut new_coverage = Vec::new();
                    for &s in &spec.covered_statements {
                        if seen.insert(s) {
                            new_coverage.push(s);
                        }
                    }
                    // Checkpoint-restored tests have no per-path meta (their
                    // paths were not re-executed this run): None, not 0.
                    let m = meta.get(trail.as_slice());
                    TestProvenance {
                        id: spec.id,
                        trail: trail.clone(),
                        constraints: m.map(|(c, _)| *c),
                        solver_checks: m.map(|(_, k)| *k),
                        new_coverage,
                        cumulative_covered: seen.len() as u64,
                    }
                })
                .collect::<Vec<_>>()
        });
        // Canonical order for abandonment sites too (their collection
        // order is schedule-dependent; their content is not).
        abandon_sites.sort_by(|a, b| a.trail.cmp(&b.trail).then_with(|| a.reason.cmp(&b.reason)));
        for (_, spec) in &merged {
            tests += 1;
            if !on_test(spec) {
                break;
            }
        }

        phases.total = t_start.elapsed();
        phases.workers = jobs as u32;

        if let Some(ls) = &self.config.obs.live {
            ls.tests_emitted.store(tests, Ordering::Relaxed);
            ls.paths_explored.store(paths, Ordering::Relaxed);
            ls.frontier_depth.store(frontier_remaining, Ordering::Relaxed);
            ls.queue_live.store(0, Ordering::Relaxed);
            ls.sample_coverage(shared.coverage.covered_count() as u64);
            ls.finish();
        }

        if let Some(reg) = &self.config.obs.metrics {
            fold_run_metrics(
                reg,
                &FoldInputs {
                    tests,
                    infeasible,
                    abandoned,
                    errors: &errors,
                    run_solver: &run_solver,
                    run_sat: &run_sat,
                    run_inc: &run_inc,
                    memo_lookups: shared.memo.lookups.load(Ordering::Relaxed),
                    memo_hits,
                    pool: &self.pool,
                    phases: &phases,
                    idle,
                    steals,
                    parks,
                    queue_depth_hist: &queue_depth_hist,
                    queue_depth_sum,
                    resume: resume_info.as_ref(),
                    last_ckpt: shared.last_ckpt.lock().map(|(at, bytes)| (at.elapsed(), bytes)),
                },
            );
        }

        Ok(RunSummary {
            tests,
            paths_explored: paths,
            infeasible_paths: infeasible,
            abandoned_paths: abandoned,
            out_of_shard_paths: out_of_shard,
            coverage: shared.coverage.report(&self.prog),
            phases,
            solver_checks,
            memo_hits,
            solver_mode: self.config.solver_mode,
            solver: run_inc,
            errors,
            test_trails,
            trace,
            resume: resume_info,
            provenance,
            abandon_sites,
            differential: None,
        })
    }
}

/// Everything [`fold_run_metrics`] reads, bundled to keep the call site flat.
struct FoldInputs<'a> {
    tests: u64,
    infeasible: u64,
    abandoned: u64,
    errors: &'a ErrorStats,
    run_solver: &'a SolverStats,
    run_sat: &'a SatStats,
    run_inc: &'a IncrementalStats,
    memo_lookups: u64,
    memo_hits: u64,
    pool: &'a TermPool,
    phases: &'a PhaseStats,
    idle: Duration,
    steals: u64,
    parks: u64,
    queue_depth_hist: &'a [u64],
    queue_depth_sum: u64,
    resume: Option<&'a ResumeInfo>,
    /// Age and on-disk size of the last successful checkpoint flush.
    last_ckpt: Option<(Duration, u64)>,
}

/// Fold one run's merged statistics into the metrics registry. Runs once at
/// merge time on the coordinating thread — the exploration hot path never
/// touches the registry. The metric catalogue here is documented in
/// DESIGN.md ("Observability").
fn fold_run_metrics(reg: &Registry, f: &FoldInputs<'_>) {
    let paths_help = "explored paths by terminal outcome";
    reg.counter_with("p4testgen_paths_total", paths_help, &[("outcome", "emitted")]).add(f.tests);
    reg.counter_with("p4testgen_paths_total", paths_help, &[("outcome", "infeasible")])
        .add(f.infeasible);
    reg.counter_with("p4testgen_paths_total", paths_help, &[("outcome", "abandoned")])
        .add(f.abandoned);
    reg.counter("p4testgen_tests_emitted_total", "tests delivered to the backend").add(f.tests);
    for (reason, n) in &f.errors.abandoned_by_reason {
        reg.counter_with(
            "p4testgen_abandoned_total",
            "abandoned paths by taxonomy reason",
            &[("reason", reason)],
        )
        .add(*n);
    }

    let s = f.run_solver;
    reg.counter("p4testgen_solver_checks_total", "solver checks issued").add(s.checks);
    let verdict_help = "solver verdicts by kind";
    reg.counter_with("p4testgen_solver_results_total", verdict_help, &[("verdict", "sat")])
        .add(s.sat_results);
    reg.counter_with("p4testgen_solver_results_total", verdict_help, &[("verdict", "unsat")])
        .add(s.unsat_results);
    reg.counter_with("p4testgen_solver_results_total", verdict_help, &[("verdict", "unknown")])
        .add(s.unknown_results);
    reg.counter("p4testgen_solver_solve_ns_total", "wall time inside check (ns)")
        .add(s.solve_time.as_nanos() as u64);

    let sat = f.run_sat;
    reg.counter("p4testgen_sat_decisions_total", "SAT decisions").add(sat.decisions);
    reg.counter("p4testgen_sat_propagations_total", "SAT unit propagations").add(sat.propagations);
    reg.counter("p4testgen_sat_conflicts_total", "SAT conflicts").add(sat.conflicts);
    reg.counter("p4testgen_sat_restarts_total", "SAT restarts").add(sat.restarts);
    reg.counter("p4testgen_sat_learnt_clauses_total", "learnt clauses").add(sat.learnt_clauses);
    reg.counter("p4testgen_sat_learnt_literals_total", "literals across learnt clauses")
        .add(sat.learnt_literals);
    reg.histogram(
        "p4testgen_sat_learnt_clause_size",
        "learnt clause sizes (literals)",
        &LEARNT_SIZE_BOUNDS,
    )
    .merge_prebucketed(&sat.learnt_size_hist, sat.learnt_literals);
    reg.histogram(
        "p4testgen_sat_conflicts_per_check",
        "SAT conflicts per solver check",
        &CONFLICTS_PER_CHECK_BOUNDS,
    )
    .merge_prebucketed(&s.conflicts_per_check_hist, sat.conflicts);

    reg.counter("p4testgen_memo_lookups_total", "feasibility-memo lookups").add(f.memo_lookups);
    reg.counter("p4testgen_memo_hits_total", "feasibility-memo hits").add(f.memo_hits);

    // The incremental layer: warm spine core, simplifier, blast cache,
    // cross-worker clause exchange.
    let inc = f.run_inc;
    let warm_help = "feasibility checks by solving discipline";
    reg.counter_with("p4testgen_feasibility_checks_total", warm_help, &[("path", "warm")])
        .add(inc.warm_checks);
    reg.counter_with("p4testgen_feasibility_checks_total", warm_help, &[("path", "fresh_fallback")])
        .add(inc.fresh_fallbacks);
    reg.counter("p4testgen_warm_rebuilds_total", "warm-core rebuilds (garbage-growth policy)")
        .add(inc.rebuilds);
    let roots_help = "spine constraint encodings by reuse";
    reg.counter_with("p4testgen_spine_roots_total", roots_help, &[("kind", "reused")])
        .add(inc.roots_reused);
    reg.counter_with("p4testgen_spine_roots_total", roots_help, &[("kind", "blasted")])
        .add(inc.roots_blasted);
    reg.histogram(
        "p4testgen_spine_reused_per_check",
        "assertions reused from the warm core per check",
        &SPINE_PER_CHECK_BOUNDS,
    )
    .merge_prebucketed(&inc.reused_per_check_hist, inc.roots_reused);
    reg.histogram(
        "p4testgen_spine_blasted_per_check",
        "assertions newly blasted per check",
        &SPINE_PER_CHECK_BOUNDS,
    )
    .merge_prebucketed(&inc.blasted_per_check_hist, inc.roots_blasted);
    let cache_help = "blaster term-cache outcomes";
    reg.counter_with("p4testgen_blast_cache_total", cache_help, &[("outcome", "hit")])
        .add(inc.blast_cache_hits);
    reg.counter_with("p4testgen_blast_cache_total", cache_help, &[("outcome", "miss")])
        .add(inc.blast_cache_misses);
    let simp_help = "term-simplifier actions on feasibility checks";
    reg.counter_with("p4testgen_simplify_total", simp_help, &[("action", "rewrites")])
        .add(inc.simplify.rewrites);
    reg.counter_with("p4testgen_simplify_total", simp_help, &[("action", "substitutions")])
        .add(inc.simplify.substitutions);
    reg.counter_with("p4testgen_simplify_total", simp_help, &[("action", "dropped_true")])
        .add(inc.simplify.dropped_true);
    reg.counter_with("p4testgen_simplify_total", simp_help, &[("action", "fast_unsat")])
        .add(inc.simplify.fast_unsat);
    let xch_help = "cross-worker learnt-clause exchange traffic";
    reg.counter_with("p4testgen_learnt_exchange_total", xch_help, &[("dir", "exported")])
        .add(inc.learnt_exported);
    reg.counter_with("p4testgen_learnt_exchange_total", xch_help, &[("dir", "imported")])
        .add(inc.learnt_imported);
    reg.counter_with("p4testgen_learnt_exchange_total", xch_help, &[("dir", "import_skipped")])
        .add(inc.learnt_import_skipped);

    reg.gauge("p4testgen_pool_terms", "interned terms in the pool").set(f.pool.len() as u64);
    reg.gauge("p4testgen_pool_vars", "declared symbolic variables").set(f.pool.num_vars() as u64);
    reg.gauge(
        "p4testgen_pool_intern_contention",
        "interns that found their consing shard locked (pool lifetime)",
    )
    .set(f.pool.intern_contention());

    reg.counter("p4testgen_worker_steals_total", "successful work steals").add(f.steals);
    reg.counter("p4testgen_worker_parks_total", "busy-to-idle worker transitions").add(f.parks);
    reg.counter("p4testgen_worker_busy_ns_total", "summed worker busy time (ns)")
        .add(f.phases.busy.as_nanos() as u64);
    reg.counter("p4testgen_worker_idle_ns_total", "summed worker idle time (ns)")
        .add(f.idle.as_nanos() as u64);
    reg.histogram(
        "p4testgen_queue_depth",
        "local queue depth sampled at each dequeue",
        &QUEUE_DEPTH_BOUNDS,
    )
    .merge_prebucketed(f.queue_depth_hist, f.queue_depth_sum);

    reg.counter("p4testgen_unknown_queries_total", "solver queries ending Unknown after retry")
        .add(f.errors.unknown_queries);
    reg.counter("p4testgen_budget_retries_total", "Unknown queries retried with a rotated phase seed")
        .add(f.errors.budget_retries);
    reg.counter("p4testgen_panicked_paths_total", "paths isolated after panicking")
        .add(f.errors.panicked_paths);
    reg.counter("p4testgen_model_defaults_total", "model evaluations that fell back to zero")
        .add(f.errors.model_defaults);
    reg.gauge("p4testgen_deadline_expired", "1 when the run deadline expired")
        .set(u64::from(f.errors.deadline_expired));

    // Checkpoint/resume instrumentation (present only for checkpointed or
    // resumed runs, so plain runs don't grow empty series).
    if let Some(r) = f.resume {
        reg.counter("p4testgen_checkpoints_written_total", "checkpoint files flushed")
            .add(r.checkpoints_written);
        reg.counter("p4testgen_frontier_restored_total", "frontier trails replayed on resume")
            .add(r.frontier_restored);
        reg.counter("p4testgen_tests_restored_total", "emitted tests carried over on resume")
            .add(r.tests_restored);
        reg.counter(
            "p4testgen_resume_replayed_trails_total",
            "frontier trails successfully replayed to live states on resume",
        )
        .add(r.replayed_trails);
        reg.gauge(
            "p4testgen_frontier_remaining",
            "unexplored frontier trails at run end (resumable work)",
        )
        .set(r.frontier_remaining);
    }
    if let Some((age, bytes)) = f.last_ckpt {
        reg.gauge(
            "p4testgen_checkpoint_age_seconds",
            "Seconds since the last successful checkpoint flush",
        )
        .set(age.as_secs());
        reg.gauge(
            "p4testgen_checkpoint_bytes",
            "On-disk size of the last successful checkpoint",
        )
        .set(bytes);
    }
}

fn merge_solver_stats(into: &mut SolverStats, from: &SolverStats) {
    into.checks += from.checks;
    into.sat_results += from.sat_results;
    into.unsat_results += from.unsat_results;
    into.unknown_results += from.unknown_results;
    into.solve_time += from.solve_time;
    into.sat_time += from.sat_time;
    for (i, f) in into.conflicts_per_check_hist.iter_mut().zip(from.conflicts_per_check_hist.iter())
    {
        *i += f;
    }
}

fn merge_sat_stats(into: &mut SatStats, from: &SatStats) {
    into.decisions += from.decisions;
    into.propagations += from.propagations;
    into.conflicts += from.conflicts;
    into.restarts += from.restarts;
    into.learnt_clauses += from.learnt_clauses;
    into.learnt_literals += from.learnt_literals;
    for (i, f) in into.learnt_size_hist.iter_mut().zip(from.learnt_size_hist.iter()) {
        *i += f;
    }
}

/// FNV-1a offset basis (64-bit); used for the run/source fingerprints.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold bytes into an FNV-1a accumulator.
fn fnv_mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Render a panic payload as text when possible.
fn panic_payload_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Rebuild the live [`ExecState`] for one checkpointed frontier trail by
/// re-executing from the initial state and consuming one trail element per
/// fork event (`0` = continue the parent, `e ≥ 1` = take fork `e-1`).
///
/// Replay does no feasibility checking and no fault injection: the original
/// run already admitted this exact trail, and replaying its prefix is pure
/// deterministic stepping. The step budget is the per-path budget scaled by
/// the trail depth (each queue-time hop along the trail was itself a path
/// that ran under the per-path budget). `None` means the program or engine
/// no longer produces this trail — the caller abandons it rather than
/// trusting a diverged world.
fn replay_to_trail<T: Target>(
    sh: &Shared<'_, T>,
    init: &ExecState,
    trail: &[u32],
) -> Option<ExecState> {
    let mut st = init.clone();
    if trail.is_empty() {
        return Some(st); // the root is the initial state itself
    }
    let budget = sh
        .config
        .max_steps_per_path
        .saturating_mul(trail.len() as u64 + 1);
    let mut pos = 0usize;
    let mut steps = 0u64;
    while pos < trail.len() {
        if !st.is_running() {
            return None; // finished before the trail was consumed
        }
        let cmd = st.continuations.pop()?;
        steps += 1;
        if steps > budget {
            return None;
        }
        let mut ctx = ExecCtx::new(
            sh.pool,
            sh.prog,
            &sh.next_id,
            sh.config.parser_loop_bound,
            sh.config.seed,
        );
        ctx.apply_entry_restrictions = sh.config.preconditions.apply_entry_restrictions;
        let res = exec::step(&mut ctx, &mut st, sh.target, cmd);
        let forks = std::mem::take(&mut ctx.forks);
        res.ok()?;
        if forks.is_empty() {
            continue;
        }
        let e = trail[pos];
        pos += 1;
        if e == 0 {
            // Continue the parent along its (…, 0) trail; the forked
            // children belong to other frontier entries.
            st.trail.push(0);
        } else {
            let mut f = forks.into_iter().nth(e as usize - 1)?;
            f.trail.push(e);
            st = f;
            // A queue-time trail ends on a nonzero element: when the last
            // element is consumed here the state is exactly what the
            // original run had queued — return it unstepped.
        }
    }
    Some(st)
}

/// One exploration worker: drives states popped from its local deque,
/// queues feasible forks locally, and steals when idle.
struct PathWorker<'a, 'b, T: Target> {
    sh: &'b Shared<'a, T>,
    widx: u32,
    solver: Solver,
    rng: StdRng,
    phases: PhaseStats,
    /// Per-*path* scratch counters, folded into the shared [`Journal`] by
    /// the per-path transaction in the worker loop (`mem::take`n there).
    paths: u64,
    infeasible: u64,
    abandoned: u64,
    out_of_shard: u64,
    errors: ErrorStats,
    /// Feasible children found by the current path. A worker field — not a
    /// `process` local — so children queued before an injected/organic
    /// panic survive the unwind, exactly as the old inline pushes did. They
    /// reach the local deque only after the journal transaction commits.
    spawned: Vec<Pending>,
    /// The current path's emission, if it survived the top-k filter.
    pending_emit: Option<(Vec<u32>, TestSpec)>,
    /// Trace buffer; `None` (the default) costs one pointer test per path.
    trace: Option<TraceLog>,
    /// Sequence number for this worker's engine events.
    event_seq: u32,
    /// Successful steals (counted even with tracing off — one add per steal).
    steals: u64,
    /// Logical queries issued while processing the current path. Counted at
    /// the query *sites* (fork admission, emission verdict) rather than from
    /// raw solver-check deltas, so a memo hit counts like a solver round
    /// trip — raw deltas would differ with which worker warmed the memo,
    /// breaking the trace determinism contract.
    path_checks: u64,
    /// Provenance raw material per emission (under `ObsConfig::provenance`).
    prov: Vec<(Vec<u32>, u64, u64)>,
    /// Abandonment sites (under `ObsConfig::explain`).
    abandon_sites: Vec<AbandonSite>,
}

/// If a worker dies *outside* the per-path panic isolation, its `live`
/// bookkeeping is lost and sibling workers would spin on `live > 0` forever.
/// This drop guard (armed only while the thread is unwinding) flips the
/// abort flag so siblings bail out and the join can report a [`RunError`].
struct AbortGuard<'x> {
    aborted: &'x AtomicBool,
    stop: &'x AtomicBool,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.aborted.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
        }
    }
}

fn run_worker<T: Target>(sh: &Shared<'_, T>, widx: usize, local: WorkerDeque<Pending>) -> WorkerOut {
    let _abort_guard = AbortGuard { aborted: &sh.aborted, stop: &sh.stop };
    let t_worker = Instant::now();
    let metrics_on = sh.config.obs.metrics.is_some();
    let mut solver = Solver::new();
    solver.set_budget(SolveBudget::conflicts(sh.config.solver_budget));
    solver.set_mode(sh.config.solver_mode);
    if let Some(ex) = &sh.exchange {
        solver.set_exchange(ex.clone(), widx as u32);
    }
    let mut w = PathWorker {
        sh,
        widx: widx as u32,
        solver,
        // Worker-local RNG (used only by RandomBacktrack selection, which is
        // schedule-dependent anyway). Test-emission RNG is per-path.
        rng: StdRng::seed_from_u64(
            sh.config.seed ^ (widx as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        ),
        phases: PhaseStats::default(),
        paths: 0,
        infeasible: 0,
        abandoned: 0,
        out_of_shard: 0,
        errors: ErrorStats::default(),
        spawned: Vec::new(),
        pending_emit: None,
        trace: sh.config.obs.trace.then(TraceLog::new),
        event_seq: 0,
        steals: 0,
        path_checks: 0,
        prov: Vec::new(),
        abandon_sites: Vec::new(),
    };
    w.engine_event("worker-start", None);
    w.flight("worker-start", None, None);
    let live_status = sh.config.obs.live.as_deref();
    if let Some(ls) = live_status {
        // Workers start busy (`was_busy = true` below mirrors this).
        ls.workers_busy.fetch_add(1, Ordering::Relaxed);
    }
    let mut parks = 0u64;
    let mut queue_depth_hist = [0u64; QUEUE_DEPTH_BOUNDS.len() + 1];
    let mut queue_depth_sum = 0u64;
    // Busy→idle edge detector: `park` fires once per transition, not per
    // polling iteration (an idle worker spins through here constantly).
    let mut was_busy = true;
    let mut deadline_seen = false;
    let mut drain_seen = false;
    loop {
        if sh.aborted.load(Ordering::Relaxed) {
            break;
        }
        let pending = match w.select_local(&local) {
            Some(p) => Some(p),
            None => w.steal(widx),
        };
        let Some(p) = pending else {
            if was_busy {
                was_busy = false;
                parks += 1;
                w.engine_event("park", None);
                if let Some(ls) = live_status {
                    ls.workers_busy.fetch_sub(1, Ordering::Relaxed);
                }
            }
            if sh.live.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        if !was_busy {
            if let Some(ls) = live_status {
                ls.workers_busy.fetch_add(1, Ordering::Relaxed);
            }
        }
        was_busy = true;
        let t_busy = Instant::now();
        if metrics_on {
            let depth = local.len() as u64;
            queue_depth_hist[QUEUE_DEPTH_BOUNDS.partition_point(|&b| b < depth)] += 1;
            queue_depth_sum += depth;
        }
        // Drain/deadline first, before any path work. With a checkpoint
        // configured (or after a kill fault) the popped state is simply
        // dropped — its trail *stays* in the journal's pending set, so the
        // final checkpoint hands it to a resuming run. Without one, legacy
        // deadline semantics apply: the state is *abandoned* (undecided),
        // unlike a cap-stop discard, which truncates a fully-decided run.
        if sh.drain_requested() {
            if sh.config.checkpoint.is_some() || sh.kill_hit.load(Ordering::Relaxed) {
                if !drain_seen {
                    drain_seen = true;
                    w.engine_event("drain", None);
                    w.flight("drain", Some(p.st.trail.clone()), None);
                }
            } else {
                {
                    let mut j = sh.journal.lock();
                    j.pending.remove(&p.st.trail);
                    j.abandoned += 1;
                    j.errors.bump_reason(reason::DEADLINE);
                }
                if sh.config.obs.explain {
                    w.abandon_sites.push(AbandonSite {
                        trail: p.st.trail.clone(),
                        reason: reason::DEADLINE.to_string(),
                        near_stmt: p.st.covered.iter().next_back().copied(),
                    });
                }
                if !deadline_seen {
                    deadline_seen = true;
                    w.engine_event("deadline", None);
                    w.flight("deadline", Some(p.st.trail.clone()), None);
                }
                if let Some(tr) = &mut w.trace {
                    tr.paths.push(PathRecord {
                        trail: p.st.trail.clone(),
                        steps: 0,
                        checks: 0,
                        outcome: PathOutcome::Abandoned(reason::DEADLINE.to_string()),
                        timing: PathTiming::default(),
                    });
                }
            }
            w.phases.busy += t_busy.elapsed();
            sh.live.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        // Injected hard abort: the simulated power loss happens at pop
        // time, before the state is processed, so its trail stays in the
        // frontier and siblings latch into the drain path above.
        if sh.config.fault_plan.wants_kill(&p.st.trail) {
            sh.kill_hit.store(true, Ordering::Relaxed);
            sh.drain_hit.store(true, Ordering::Relaxed);
            sh.stop.store(true, Ordering::Relaxed);
            w.engine_event("kill-fault", None);
            w.flight("kill-fault", Some(p.st.trail.clone()), None);
            w.phases.busy += t_busy.elapsed();
            sh.live.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        let mut discard = sh.stop.load(Ordering::Relaxed);
        if !discard && sh.config.max_tests > 0 {
            // Subtree pruning for the deterministic test cap: every test in
            // this state's subtree has a trail ≥ the state's trail, so once
            // k better trails exist the subtree cannot reach the final
            // top-k. (The converse holds under any schedule: the heap's top
            // only ever improves, so a state that could still contribute is
            // never pruned — the final suite is schedule-independent.)
            let best = sh.best.lock();
            discard = best.len() as u64 >= sh.config.max_tests
                && best.peek().is_some_and(|worst| p.st.trail >= *worst);
        }
        if !discard && sh.config.max_paths > 0 {
            let n = sh.paths_started.fetch_add(1, Ordering::Relaxed);
            if n >= sh.config.max_paths {
                sh.stop.store(true, Ordering::Relaxed);
                discard = true;
            }
        }
        if discard {
            // Cap discards *decide* the subtree (it can never contribute),
            // so it leaves the frontier — a resumed run agrees.
            sh.journal.lock().pending.remove(&p.st.trail);
            w.phases.busy += t_busy.elapsed();
            sh.live.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        // Per-path panic isolation: a poisoned path is recorded and
        // abandoned; the worker (and every other path) continues. The
        // state is stepped behind a mutable reference so its trail and
        // trace survive the unwind for the PanicRecord.
        let popped_trail = p.st.trail.clone();
        let mut st = p.st;
        let outcome = catch_unwind(AssertUnwindSafe(|| w.process(&mut st)));
        if let Err(payload) = outcome {
            // The warm spine core may have been abandoned mid-push by
            // the unwound frame; drop it so the next feasibility check
            // rebuilds from its own (fully specified) constraint set.
            w.solver.reset_warm();
            w.abandoned += 1;
            w.errors.panicked_paths += 1;
            w.errors.bump_reason(reason::PANIC);
            let payload_text = panic_payload_text(payload.as_ref());
            w.flight("panic", Some(st.trail.clone()), Some(payload_text.clone()));
            if sh.config.obs.explain {
                w.abandon_sites.push(AbandonSite {
                    trail: st.trail.clone(),
                    reason: reason::PANIC.to_string(),
                    near_stmt: st.covered.iter().next_back().copied(),
                });
            }
            w.errors.panics.push(PanicRecord {
                trail: st.trail.clone(),
                payload: payload_text,
                last_trace: st.trace.last().cloned(),
            });
            if let Some(tr) = &mut w.trace {
                // Step/check counts died with the unwound frame; the
                // trail survives in the state and identifies the path.
                tr.paths.push(PathRecord {
                    trail: st.trail.clone(),
                    steps: 0,
                    checks: 0,
                    outcome: PathOutcome::Panicked,
                    timing: PathTiming::default(),
                });
            }
        }
        // The per-path journal transaction: atomically replace the popped
        // trail with its children and emission, and fold this path's
        // scratch counters. Runs for panicked paths too — children queued
        // before the unwind are real frontier (the old inline pushes kept
        // them as well).
        let spawned = std::mem::take(&mut w.spawned);
        let emit = w.pending_emit.take();
        let live_snapshot = {
            let mut j = sh.journal.lock();
            j.pending.remove(&popped_trail);
            for s in &spawned {
                j.pending.insert(s.st.trail.clone());
            }
            if let Some(e) = emit {
                j.emitted.push(e);
            }
            j.paths += std::mem::take(&mut w.paths);
            j.infeasible += std::mem::take(&mut w.infeasible);
            j.abandoned += std::mem::take(&mut w.abandoned);
            j.out_of_shard += std::mem::take(&mut w.out_of_shard);
            let mut scratch = std::mem::take(&mut w.errors);
            if j.errors.panics.len() >= MAX_PANIC_RECORDS {
                scratch.panics.clear();
            }
            j.errors.absorb(&scratch);
            live_status.map(|_| (j.pending.len() as u64, j.emitted.len() as u64, j.paths))
        };
        if let (Some(ls), Some((frontier, emitted, paths))) = (live_status, live_snapshot) {
            ls.frontier_depth.store(frontier, Ordering::Relaxed);
            ls.tests_emitted.store(emitted, Ordering::Relaxed);
            ls.paths_explored.store(paths, Ordering::Relaxed);
            ls.queue_live.store(sh.live.load(Ordering::Relaxed), Ordering::Relaxed);
            ls.sample_coverage(sh.coverage.covered_count() as u64);
        }
        if !spawned.is_empty() {
            // `live` covers this path's own slot until the fetch_sub below,
            // so incrementing after the transaction cannot race termination.
            sh.live.fetch_add(spawned.len() as u64, Ordering::AcqRel);
            for s in spawned {
                local.push(s);
            }
        }
        w.maybe_flush_checkpoint();
        w.phases.busy += t_busy.elapsed();
        sh.live.fetch_sub(1, Ordering::AcqRel);
    }
    w.engine_event("worker-stop", None);
    w.flight("worker-stop", None, None);
    if was_busy {
        if let Some(ls) = live_status {
            ls.workers_busy.fetch_sub(1, Ordering::Relaxed);
        }
    }
    WorkerOut {
        idle: t_worker.elapsed().saturating_sub(w.phases.busy),
        phases: w.phases,
        solver_stats: w.solver.stats.clone(),
        sat_stats: w.solver.sat_stats().clone(),
        inc_stats: w.solver.inc_stats.clone(),
        trace: w.trace,
        steals: w.steals,
        parks,
        queue_depth_hist,
        queue_depth_sum,
        prov: w.prov,
        abandon_sites: w.abandon_sites,
    }
}

impl<T: Target> PathWorker<'_, '_, T> {
    /// Record a span event into the flight recorder (no-op when the
    /// recorder is off). Callers building a `detail` string should gate on
    /// `self.sh.config.obs.flight.is_some()` first.
    fn flight(&self, kind: &'static str, trail: Option<Vec<u32>>, detail: Option<String>) {
        if let Some(fr) = &self.sh.config.obs.flight {
            fr.record(self.widx, kind, trail, detail);
        }
    }

    /// Record an engine-level trace event (no-op, and no allocation, when
    /// tracing is off). Callers building a `detail` string should gate on
    /// `self.trace.is_some()` first.
    fn engine_event(&mut self, event: &str, detail: Option<String>) {
        if let Some(tr) = &mut self.trace {
            let seq = self.event_seq;
            self.event_seq += 1;
            tr.engine.push(EngineEvent {
                worker: self.widx,
                seq,
                event: event.to_string(),
                detail,
                at_ns: self.sh.started.elapsed().as_nanos() as u64,
            });
        }
    }

    /// Record the terminal state of one path (no-op when tracing is off).
    /// Pruned forks pass `checks: 0` — their admission query is attributed
    /// to the parent path that issued it.
    fn path_record(
        &mut self,
        trail: &[u32],
        steps: u64,
        checks: u64,
        outcome: PathOutcome,
        timing: PathTiming,
    ) {
        if let Some(tr) = &mut self.trace {
            tr.paths.push(PathRecord { trail: trail.to_vec(), steps, checks, outcome, timing });
        }
    }

    /// Pop the next state from the local deque per the configured strategy.
    fn select_local(&mut self, local: &WorkerDeque<Pending>) -> Option<Pending> {
        let sh = self.sh;
        match sh.config.strategy {
            Strategy::Dfs => local.pop(),
            // O(1) front pop — the deque replaces the old `Vec::remove(0)`.
            Strategy::Bfs => local.with(|d| d.pop_front()),
            Strategy::RandomBacktrack => {
                let rng = &mut self.rng;
                local.with(|d| {
                    if d.is_empty() {
                        None
                    } else {
                        let i = rng.gen_range(0..d.len());
                        d.swap_remove_back(i)
                    }
                })
            }
            Strategy::CoverageFirst => local.with(|d| {
                if d.is_empty() {
                    return None;
                }
                // Most novel statements covered wins; ties go to the most
                // recent state (DFS-like locality). Novelty counts are
                // cached per state and recomputed only when the global
                // coverage epoch has advanced.
                let epoch = sh.coverage.epoch();
                let mut best = (0usize, 0usize);
                for i in 0..d.len() {
                    let p = d.get_mut(i).expect("index in range");
                    let novel = match p.novelty {
                        Some((e, n)) if e == epoch => n,
                        _ => {
                            let n = p
                                .st
                                .covered
                                .iter()
                                .filter(|id| !sh.coverage.contains(**id))
                                .count();
                            p.novelty = Some((epoch, n));
                            n
                        }
                    };
                    if (novel, i) >= best {
                        best = (novel, i);
                    }
                }
                d.swap_remove_back(best.1)
            }),
        }
    }

    /// Round-robin steal from the other workers' deques.
    fn steal(&mut self, widx: usize) -> Option<Pending> {
        let n = self.sh.stealers.len();
        for k in 1..n {
            let i = (widx + k) % n;
            loop {
                match self.sh.stealers[i].steal() {
                    Steal::Success(p) => {
                        self.steals += 1;
                        if self.trace.is_some() {
                            self.engine_event("steal", Some(format!("from={i}")));
                        }
                        return Some(p);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Injected Unknown (fault plan) for a query issued at `trail`. Counts
    /// the forced verdict — and the retry the plan also swallows — so the
    /// injected-fault books balance exactly like organic ones.
    fn injected_unknown(&mut self, trail: &[u32]) -> bool {
        if !self.sh.config.fault_plan.wants_unknown(trail) {
            return false;
        }
        self.errors.unknown_queries += 1;
        if self.sh.config.budget_retry {
            self.errors.budget_retries += 1;
        }
        true
    }

    /// Injected panic (fault plan): deliberately poison this path. The
    /// per-path `catch_unwind` in the worker loop contains it.
    fn maybe_panic(&self, trail: &[u32]) {
        if self.sh.config.fault_plan.wants_panic(trail) {
            panic!("injected fault: panic at trail {trail:?}");
        }
    }

    /// One *logical* solver query with budget handling: on Unknown, retry
    /// once with a rotated decision-phase seed (a pure function of the run
    /// seed and the querying trail, so the retry — like everything else — is
    /// schedule-independent), then count the query as Unknown if it still
    /// failed to decide.
    fn checked(&mut self, trail: &[u32], assumptions: &[TermId]) -> CheckResult {
        self.checked_impl(trail, assumptions, false)
    }

    /// Like [`PathWorker::checked`] but verdict-only: eligible for the warm
    /// spine core under `SolverMode::Incremental`. The Unknown retry path is
    /// identical — with a budget set, `check_feasible` always solves fresh,
    /// and the rotated phase seed forces fresh too, so retry verdicts are a
    /// pure function of (constraints, budget, seed, trail) in both modes.
    fn checked_feasible(&mut self, trail: &[u32], assumptions: &[TermId]) -> CheckResult {
        self.checked_impl(trail, assumptions, true)
    }

    fn checked_impl(
        &mut self,
        trail: &[u32],
        assumptions: &[TermId],
        verdict_only: bool,
    ) -> CheckResult {
        let sh = self.sh;
        let query = |solver: &mut Solver| {
            if verdict_only {
                solver.check_feasible(sh.pool, assumptions)
            } else {
                solver.check_assuming(sh.pool, assumptions)
            }
        };
        let mut res = query(&mut self.solver);
        if res == CheckResult::Unknown && sh.config.budget_retry {
            self.errors.budget_retries += 1;
            if self.trace.is_some() {
                self.engine_event("budget-retry", Some(format!("trail={trail:?}")));
            }
            self.solver.set_phase_seed((sh.config.seed ^ trail_hash(trail)) | 1);
            res = query(&mut self.solver);
            self.solver.set_phase_seed(0);
        }
        if res == CheckResult::Unknown {
            self.errors.unknown_queries += 1;
        }
        if self.sh.config.obs.flight.is_some() {
            let verdict = match res {
                CheckResult::Sat => "sat",
                CheckResult::Unsat => "unsat",
                CheckResult::Unknown => "unknown",
            };
            self.flight(
                "solver-check",
                Some(trail.to_vec()),
                Some(format!(
                    "{verdict} {} assumptions={}",
                    if verdict_only { "feasibility" } else { "model" },
                    assumptions.len(),
                )),
            );
        }
        res
    }

    /// Fork-feasibility check with memoization on the constraint set.
    fn fork_feasible(&mut self, f: &ExecState) -> CheckResult {
        let sh = self.sh;
        // One logical query regardless of how it resolves (injected fault,
        // memo hit, or solver round trip) — see the `path_checks` field docs.
        self.path_checks += 1;
        // Fault injection comes before the memo: a memoized verdict must
        // never swallow a planned fault on some schedules but not others.
        if self.injected_unknown(&f.trail) {
            return CheckResult::Unknown;
        }
        let key = FeasMemo::key(&f.constraints);
        if let Some(sat) = sh.memo.lookup(&key) {
            return if sat { CheckResult::Sat } else { CheckResult::Unsat };
        }
        // Second, persistent memo layer keyed by a TermId-independent
        // fingerprint: only consulted when checkpointing is on (the
        // fingerprint walk costs real time). A hit also warms the cheap
        // TermId layer for this process's lifetime.
        let stable_fp = sh
            .memo
            .persistent()
            .then(|| stable_fingerprint(sh.pool, &f.constraints));
        if let Some(fp) = stable_fp {
            if let Some(sat) = sh.memo.stable_lookup(fp) {
                sh.memo.record(key, sat);
                return if sat { CheckResult::Sat } else { CheckResult::Unsat };
            }
        }
        let t1 = Instant::now();
        let res = self.checked_feasible(&f.trail, &f.constraints);
        self.phases.solving += t1.elapsed();
        // Unknown is a verdict about the budget, not the constraint set —
        // never memoize it.
        if res != CheckResult::Unknown {
            sh.memo.record(key, res == CheckResult::Sat);
            if let Some(fp) = stable_fp {
                sh.memo.stable_record(fp, res == CheckResult::Sat);
            }
        }
        res
    }

    /// Periodic checkpoint flush, called once per completed journal
    /// transaction. The interval gate lives behind a `try_lock` so at most
    /// one worker pays the snapshot+write cost per interval and nobody ever
    /// blocks on a flush in progress.
    fn maybe_flush_checkpoint(&mut self) {
        let Some(ck) = &self.sh.config.checkpoint else { return };
        let Some(mut last) = self.sh.last_flush.try_lock() else { return };
        if last.elapsed() < ck.every {
            return;
        }
        let path = ck.path.clone();
        if self.sh.flush_checkpoint(&path)
            && (self.trace.is_some() || self.sh.config.obs.flight.is_some())
        {
            let frontier = self.sh.journal.lock().pending.len();
            if self.trace.is_some() {
                self.engine_event("checkpoint-flush", Some(format!("frontier={frontier}")));
            }
            self.flight("checkpoint-flush", None, Some(format!("frontier={frontier}")));
        }
        *last = Instant::now();
    }

    /// Drive one state until it forks into children, finishes, or exhausts
    /// its budget; then emit a test if it completed. Children and the
    /// emitted test land on `self.spawned` / `self.pending_emit`, which the
    /// worker loop commits to the shared journal in one transaction after
    /// this call returns (or unwinds — spawned children survive a panic).
    fn process(&mut self, st: &mut ExecState) {
        let sh = self.sh;
        // Per-path span bookkeeping: reset the logical-query counter and
        // remember the phase clocks so the deltas at the end of this call
        // are this path's own cost. Plain copies — nothing here allocates
        // or branches on whether tracing is enabled.
        self.path_checks = 0;
        let phases_at_entry =
            (self.phases.stepping, self.phases.solving, self.phases.emission);
        self.maybe_panic(&st.trail);
        let mut steps: u64 = 0;
        while st.is_running() {
            let Some(cmd) = st.continuations.pop() else {
                st.finish(FinishReason::Completed);
                break;
            };
            steps += 1;
            if steps > sh.config.max_steps_per_path {
                st.finish(FinishReason::Abandoned("step budget exhausted".into()));
                break;
            }
            // Cooperative mid-path drain check, amortized over steps. Only
            // in legacy (no-checkpoint) mode: a checkpointing run lets
            // in-flight paths complete, because a mid-path abandon is
            // schedule-dependent and the path would be lost on resume.
            if steps & 0x1FF == 0
                && sh.config.checkpoint.is_none()
                && sh.drain_requested()
            {
                let msg = if sh.deadline_expired() {
                    "deadline expired"
                } else {
                    "drain requested"
                };
                st.finish(FinishReason::Abandoned(msg.into()));
                break;
            }
            let t0 = Instant::now();
            let mut ctx = ExecCtx::new(
                sh.pool,
                sh.prog,
                &sh.next_id,
                sh.config.parser_loop_bound,
                sh.config.seed,
            );
            ctx.apply_entry_restrictions = sh.config.preconditions.apply_entry_restrictions;
            let res = exec::step(&mut ctx, st, sh.target, cmd);
            let forks = std::mem::take(&mut ctx.forks);
            self.phases.stepping += t0.elapsed();
            if let Err(e) = res {
                st.finish(FinishReason::Abandoned(e.0));
                break;
            }
            if !forks.is_empty() {
                // Extend the fork trails *before* feasibility pruning, so a
                // path's trail does not depend on which siblings happened to
                // be pruned (pruning verdicts are deterministic, but this
                // keeps trail assignment trivially schedule-independent).
                // Children are pushed in reverse so the owner's LIFO pop
                // explores the lowest fork index — lex-smallest trail —
                // first, which under a test cap reaches the retained top-k
                // quickly and lets the subtree pruning close the rest.
                st.trail.push(0);
                for (i, mut f) in forks.into_iter().enumerate().rev() {
                    f.trail.push(i as u32 + 1);
                    // Shard pruning happens first — before any solver work —
                    // and before trace records, so per-shard traces contain
                    // only owned paths. `may_own_subtree` keeps every trail
                    // shorter than the shard prefix, so short-trail tests
                    // are claimed by `owns_test` at emission instead.
                    if let Some(shard) = &sh.config.shard {
                        if !shard.may_own_subtree(&f.trail) {
                            self.out_of_shard += 1;
                            continue;
                        }
                    }
                    if f.trivially_unsat(sh.pool) {
                        self.infeasible += 1;
                        self.path_record(
                            &f.trail,
                            0,
                            0,
                            PathOutcome::Infeasible,
                            PathTiming::default(),
                        );
                        continue;
                    }
                    if sh.config.eager_pruning && !f.constraints.is_empty() {
                        match self.fork_feasible(&f) {
                            CheckResult::Sat => {}
                            CheckResult::Unsat => {
                                self.infeasible += 1;
                                self.path_record(
                                    &f.trail,
                                    0,
                                    0,
                                    PathOutcome::Infeasible,
                                    PathTiming::default(),
                                );
                                continue;
                            }
                            CheckResult::Unknown => {
                                // Undecided, not proven infeasible: the fork
                                // is *abandoned* (budget or injected fault).
                                self.abandoned += 1;
                                self.errors.bump_reason(reason::SOLVER_UNKNOWN);
                                if sh.config.obs.explain {
                                    self.abandon_sites.push(AbandonSite {
                                        trail: f.trail.clone(),
                                        reason: reason::SOLVER_UNKNOWN.to_string(),
                                        near_stmt: f.covered.iter().next_back().copied(),
                                    });
                                }
                                if self.trace.is_some() {
                                    self.path_record(
                                        &f.trail,
                                        0,
                                        0,
                                        PathOutcome::Abandoned(reason::SOLVER_UNKNOWN.to_string()),
                                        PathTiming::default(),
                                    );
                                }
                                continue;
                            }
                        }
                    }
                    self.spawned.push(Pending { st: f, novelty: None });
                }
                // The continuing (…, 0) trail may have left this shard's
                // prefix; stop stepping it here. Not a journal event — the
                // owning shard explores the identical continuation.
                if let Some(shard) = &sh.config.shard {
                    if !shard.may_own_subtree(&st.trail) {
                        self.out_of_shard += 1;
                        return;
                    }
                }
                // Injected panic on the continuing (…, 0) trail — after the
                // children are queued, so only this continuation is lost.
                self.maybe_panic(&st.trail);
                if !st.is_running() {
                    break; // superseded by forks
                }
            }
        }
        // A completed state whose full trail belongs to another shard is
        // dropped before emission (and before the shared heap): the owning
        // shard emits the identical test. Checked only for finished states
        // that would emit — infeasible/abandoned bookkeeping is shard-local.
        if matches!(
            st.finished,
            Some(FinishReason::Completed) | Some(FinishReason::Dropped)
        ) {
            if let Some(shard) = &sh.config.shard {
                if !shard.owns_test(&st.trail) {
                    self.out_of_shard += 1;
                    return;
                }
            }
        }
        self.paths += 1;
        // Taxonomy keys are &'static strs, so the outcome is carried without
        // allocating; the owned PathOutcome is built only when tracing.
        enum Out {
            Emitted,
            Infeasible,
            Abandoned(&'static str),
        }
        let outcome = match st.finished.clone() {
            Some(FinishReason::Completed) | Some(FinishReason::Dropped) => {
                let t2 = Instant::now();
                let solving_before = self.phases.solving;
                let emitted = self.emit_test(st);
                let nested_solving = self.phases.solving - solving_before;
                self.phases.emission += t2.elapsed().saturating_sub(nested_solving);
                match emitted {
                    Ok(spec) => {
                        sh.coverage.add(&st.covered);
                        let mut keep = true;
                        if sh.config.max_tests > 0 {
                            let mut best = sh.best.lock();
                            if (best.len() as u64) < sh.config.max_tests {
                                best.push(st.trail.clone());
                            } else if best.peek().is_some_and(|worst| st.trail < *worst) {
                                best.pop();
                                best.push(st.trail.clone());
                            } else {
                                // Outside the retained top-k; the merger
                                // would truncate it anyway.
                                keep = false;
                            }
                        }
                        if keep {
                            if sh.config.obs.provenance {
                                self.prov.push((
                                    st.trail.clone(),
                                    st.constraints.len() as u64,
                                    self.path_checks,
                                ));
                            }
                            self.pending_emit = Some((st.trail.clone(), spec));
                        }
                        if sh.config.stop_at_full_coverage && sh.coverage.is_full() {
                            sh.stop.store(true, Ordering::Relaxed);
                        }
                        Out::Emitted
                    }
                    Err(key) => {
                        self.abandoned += 1;
                        self.errors.bump_reason(key);
                        Out::Abandoned(key)
                    }
                }
            }
            Some(FinishReason::Infeasible) => {
                self.infeasible += 1;
                Out::Infeasible
            }
            Some(FinishReason::Abandoned(msg)) => {
                self.abandoned += 1;
                let key = classify_abandon_reason(&msg);
                self.errors.bump_reason(key);
                Out::Abandoned(key)
            }
            None => {
                self.abandoned += 1;
                self.errors.bump_reason(reason::EXEC_ERROR);
                Out::Abandoned(reason::EXEC_ERROR)
            }
        };
        if sh.config.obs.explain {
            if let Out::Abandoned(key) = &outcome {
                self.abandon_sites.push(AbandonSite {
                    trail: st.trail.clone(),
                    reason: (*key).to_string(),
                    near_stmt: st.covered.iter().next_back().copied(),
                });
            }
        }
        if sh.config.obs.flight.is_some() {
            let label = match &outcome {
                Out::Emitted => "emitted",
                Out::Infeasible => "infeasible",
                Out::Abandoned(key) => key,
            };
            self.flight(
                "path-end",
                Some(st.trail.clone()),
                Some(format!("{label} steps={steps} checks={}", self.path_checks)),
            );
        }
        if self.trace.is_some() {
            let timing = PathTiming {
                step_ns: (self.phases.stepping - phases_at_entry.0).as_nanos() as u64,
                solve_ns: (self.phases.solving - phases_at_entry.1).as_nanos() as u64,
                emit_ns: (self.phases.emission - phases_at_entry.2).as_nanos() as u64,
            };
            let outcome = match outcome {
                Out::Emitted => PathOutcome::Emitted,
                Out::Infeasible => PathOutcome::Infeasible,
                Out::Abandoned(key) => PathOutcome::Abandoned(key.to_string()),
            };
            let checks = self.path_checks;
            let trail = st.trail.clone();
            self.path_record(&trail, steps, checks, outcome, timing);
        }
    }

    /// Concretize a finished state into a test specification; `Err(reason)`
    /// — a [`reason`] taxonomy key — when the path must be discarded (unsat,
    /// Unknown, unresolvable concolics, or a tainted output port). The
    /// spec's `id` is provisional — the merger renumbers after
    /// trail-sorting.
    fn emit_test(&mut self, st: &ExecState) -> Result<TestSpec, &'static str> {
        let sh = self.sh;
        // Injected Unknown at this finished trail (fault plan): the
        // emission-time check is treated as exhausted before being issued.
        // (For leaf trails that were eagerly pruned as forks the injection
        // already fired in `fork_feasible` and execution never got here.)
        if self.injected_unknown(&st.trail) {
            self.path_checks += 1;
            return Err(reason::SOLVER_UNKNOWN);
        }
        // Tainted output port, or control flow that branched on a tainted
        // value: the test would be flaky (§5.3 / footnote 2) — drop it.
        if st.flag("taint_flaky") == 1 {
            return Err(reason::TAINTED_OUTPUT);
        }
        for out in &st.outputs {
            if out.port.is_tainted() {
                return Err(reason::TAINTED_OUTPUT);
            }
        }
        // Resolve concolic bindings (§5.4); adds equality constraints. An
        // Unknown inside the concolic loop surfaces as a failed resolution.
        let t0 = Instant::now();
        let extra = resolve_concolics(
            sh.pool,
            &mut self.solver,
            sh.concolics,
            &st.concolics,
            &st.constraints,
            sh.config.concolic_retries,
        );
        let mut assumptions = st.constraints.clone();
        match extra {
            Some(eqs) => assumptions.extend(eqs),
            None => {
                self.phases.solving += t0.elapsed();
                return Err(reason::CONCOLIC_UNRESOLVED);
            }
        }
        self.path_checks += 1;
        let verdict = self.checked(&st.trail, &assumptions);
        self.phases.solving += t0.elapsed();
        match verdict {
            CheckResult::Sat => {}
            CheckResult::Unsat => return Err(reason::EMISSION_UNSAT),
            CheckResult::Unknown => return Err(reason::SOLVER_UNKNOWN),
        }
        // Randomize free control-plane choices (the paper: "the output port
        // is chosen at random"): propose seeded random values for synthesized
        // entry arguments and fall back to the unbiased model when the
        // proposal is inconsistent with the path constraints. Seeded by the
        // fork trail so the choice is a function of the path, not of the
        // order in which workers reached it.
        let t1 = Instant::now();
        let mut proposals: Vec<TermId> = Vec::new();
        let mut rng = StdRng::seed_from_u64(sh.config.seed ^ trail_hash(&st.trail));
        for e in &st.entries {
            for (_, t, w) in &e.args {
                let r: u128 = rng.gen::<u128>() & mask_ones(*w);
                let c = sh.pool.constant(BitVec::from_u128(*w as usize, r));
                proposals.push(sh.pool.eq(*t, c));
            }
        }
        if !proposals.is_empty() {
            let mut with_rand = assumptions.clone();
            with_rand.extend(proposals.iter().copied());
            if self.solver.check_assuming(sh.pool, &with_rand) == CheckResult::Sat {
                assumptions = with_rand;
            } else {
                // Re-establish the model without the proposals.
                let _ = self.solver.check_assuming(sh.pool, &assumptions);
            }
        }
        self.phases.solving += t1.elapsed();
        // Gather every variable the test depends on and extract the model.
        let model = self.model_for(st, &assumptions);
        // Input packet.
        let mut input_bits = BitVec::empty();
        for chunk in &st.packet.input {
            input_bits = input_bits.concat(&eval(sh.pool, &model, chunk.term));
        }
        let input_packet = bits_to_bytes(&input_bits);
        // Input port (targets record it in a conventional slot).
        let input_port = match st.read_global("$input_port") {
            Some(s) => self.model_u64(&model, s.term) as u32,
            None => 0,
        };
        // Outputs.
        let mut outputs = Vec::new();
        for out in &st.outputs {
            let port = self.model_u64(&model, out.port.term) as u32;
            let packet = match &out.payload {
                Some(p) => {
                    let data = eval(sh.pool, &model, p.term);
                    masked_bytes(&data, &p.taint)
                }
                None => MaskedBytes::exact(Vec::new()),
            };
            outputs.push(OutputPacketSpec { port, packet });
        }
        // Control-plane entries.
        let entries = st
            .entries
            .iter()
            .map(|e| TableEntrySpec {
                table: e.table.clone(),
                keys: e.keys.iter().map(|k| self.concretize_key(k, &model)).collect(),
                action: e.action.clone(),
                action_args: e
                    .args
                    .iter()
                    .map(|(n, t, w)| {
                        (n.clone(), value_bytes(&eval(sh.pool, &model, *t), *w))
                    })
                    .collect(),
                priority: e.priority,
            })
            .collect();
        // Registers.
        let mut register_init = Vec::new();
        let mut register_expect = Vec::new();
        for op in &st.register_ops {
            match op {
                RegisterOp::Read { instance, index, result, width } => {
                    register_init.push(RegisterSpec {
                        instance: instance.clone(),
                        index: self.model_u64(&model, *index),
                        value: value_bytes(&eval(sh.pool, &model, *result), *width),
                    });
                }
                RegisterOp::Write { instance, index, value, width } => {
                    register_expect.push(RegisterSpec {
                        instance: instance.clone(),
                        index: self.model_u64(&model, *index),
                        value: value_bytes(&eval(sh.pool, &model, *value), *width),
                    });
                }
            }
        }
        Ok(TestSpec {
            id: 0,
            program: sh.program_name.to_string(),
            target: sh.target.name().to_string(),
            seed: sh.config.seed,
            input_port,
            input_packet,
            entries,
            register_init,
            register_expect,
            outputs,
            covered_statements: st.covered.iter().map(|s| s.0).collect(),
            trace: st.trace.clone(),
        })
    }

    /// Evaluate a term under the model as `u64`, falling back to 0 — and
    /// counting the silent gap in `errors.model_defaults` — when the model
    /// has no 64-bit value for it.
    fn model_u64(&mut self, model: &Assignment, t: TermId) -> u64 {
        match eval(self.sh.pool, model, t).to_u64() {
            Some(v) => v,
            None => {
                self.errors.model_defaults += 1;
                0
            }
        }
    }

    fn model_for(&self, st: &ExecState, assumptions: &[TermId]) -> Assignment {
        let pool = self.sh.pool;
        let mut vars: Vec<VarId> = Vec::new();
        for &c in assumptions {
            vars.extend(pool.vars_of(c));
        }
        for chunk in &st.packet.input {
            vars.extend(pool.vars_of(chunk.term));
        }
        for out in &st.outputs {
            vars.extend(pool.vars_of(out.port.term));
            if let Some(p) = &out.payload {
                vars.extend(pool.vars_of(p.term));
            }
        }
        for e in &st.entries {
            for k in &e.keys {
                for t in [k.value, k.mask, k.hi].into_iter().flatten() {
                    vars.extend(pool.vars_of(t));
                }
            }
            for (_, t, _) in &e.args {
                vars.extend(pool.vars_of(*t));
            }
        }
        for op in &st.register_ops {
            match op {
                RegisterOp::Read { index, result, .. } => {
                    vars.extend(pool.vars_of(*index));
                    vars.extend(pool.vars_of(*result));
                }
                RegisterOp::Write { index, value, .. } => {
                    vars.extend(pool.vars_of(*index));
                    vars.extend(pool.vars_of(*value));
                }
            }
        }
        if let Some(p) = st.read_global("$input_port") {
            vars.extend(pool.vars_of(p.term));
        }
        vars.sort();
        vars.dedup();
        self.solver.model(pool, &vars)
    }

    fn concretize_key(&self, k: &SynthKeyMatch, model: &Assignment) -> KeyMatch {
        let pool = self.sh.pool;
        let val = |t: Option<TermId>| {
            t.map(|t| value_bytes(&eval(pool, model, t), k.width)).unwrap_or_default()
        };
        match k.match_kind.as_str() {
            "ternary" => KeyMatch::Ternary {
                name: k.key_name.clone(),
                value: val(k.value),
                mask: val(k.mask),
            },
            "lpm" => KeyMatch::Lpm {
                name: k.key_name.clone(),
                value: val(k.value),
                prefix_len: k.prefix_len.unwrap_or(k.width),
            },
            "range" => KeyMatch::Range {
                name: k.key_name.clone(),
                lo: val(k.value),
                hi: val(k.hi),
            },
            "optional" => {
                // Zero mask encodes the wildcard.
                let wildcard = k
                    .mask
                    .map(|m| eval(pool, model, m).is_zero())
                    .unwrap_or(false);
                KeyMatch::Optional {
                    name: k.key_name.clone(),
                    value: if wildcard { None } else { Some(val(k.value)) },
                }
            }
            _ => KeyMatch::Exact { name: k.key_name.clone(), value: val(k.value) },
        }
    }
}

fn mask_ones(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

/// Bits (MSB-first) to bytes, right-padding the final partial byte with 0.
fn bits_to_bytes(bits: &BitVec) -> Vec<u8> {
    let w = bits.width();
    if w == 0 {
        return Vec::new();
    }
    let rem = w % 8;
    let padded = if rem == 0 {
        bits.clone()
    } else {
        bits.concat(&BitVec::zeros(8 - rem))
    };
    padded.to_bytes_be()
}

/// A value rendered as minimal big-endian bytes of its declared width.
fn value_bytes(v: &BitVec, width: u32) -> Vec<u8> {
    let byte_w = (width as usize).div_ceil(8) * 8;
    v.cast(byte_w).to_bytes_be()
}

/// Data + taint mask to masked bytes (taint bit 1 → mask bit 0).
fn masked_bytes(data: &BitVec, taint: &BitVec) -> MaskedBytes {
    let d = bits_to_bytes(data);
    let m = bits_to_bytes(&taint.not());
    MaskedBytes { data: d, mask: m }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feas_memo_key_is_canonical() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 1);
        let y = p.fresh_var("y", 1);
        let a = FeasMemo::key(&[y, x, y]);
        let b = FeasMemo::key(&[x, y]);
        assert_eq!(a, b);
        let memo = FeasMemo::new();
        assert_eq!(memo.lookup(&a), None);
        memo.record(a.clone(), true);
        assert_eq!(memo.lookup(&a), Some(true));
        assert_eq!(memo.hits.load(Ordering::Relaxed), 1);
    }

    /// A verdict recorded by one budget class must be invisible to another:
    /// a high-budget tenant's definitive answer leaking into a low-budget
    /// tenant's run would diverge that tenant's suite from its cold CLI
    /// run, which would have abandoned the query as Unknown.
    #[test]
    fn shared_memo_is_partitioned_by_budget_class() {
        let shared = Arc::new(SharedFeasMemo::new(16));
        let mut big = TestgenConfig::default();
        big.solver_budget = 1_000_000;
        let mut small = big.clone();
        small.solver_budget = 1;
        let (big_class, small_class) =
            (feas_budget_class(&big), feas_budget_class(&small));
        assert_ne!(big_class, small_class);

        let writer = FeasMemo::with_persistence(&[], Some(Arc::clone(&shared)), big_class);
        writer.stable_record(42, true);
        let reader_small =
            FeasMemo::with_persistence(&[], Some(Arc::clone(&shared)), small_class);
        assert_eq!(reader_small.stable_lookup(42), None);
        let reader_big = FeasMemo::with_persistence(&[], Some(shared), big_class);
        assert_eq!(reader_big.stable_lookup(42), Some(true));

        // Budget-irrelevant config fields (here: max_tests; seed only when
        // budget retries are off) do not split the class — that sharing is
        // the point of the daemon-wide memo.
        let mut other = big.clone();
        other.max_tests = big.max_tests + 7;
        assert_eq!(feas_budget_class(&other), big_class);
        let mut no_retry_a = big.clone();
        no_retry_a.budget_retry = false;
        let mut no_retry_b = no_retry_a.clone();
        no_retry_b.seed = no_retry_a.seed + 1;
        assert_eq!(feas_budget_class(&no_retry_a), feas_budget_class(&no_retry_b));
        // With retries on, the seed feeds the retry phase seed and so
        // decides which queries come back definitive: it splits the class.
        let mut seeded = big.clone();
        seeded.seed = big.seed + 1;
        assert_ne!(feas_budget_class(&seeded), big_class);
    }
}
