//! Concolic execution support (§5.4).
//!
//! Externs too complex for first-order logic (checksums, hashes) model
//! their result as an unconstrained variable and record a
//! [`crate::state::ConcolicBinding`]. At test-emission time
//! [`resolve_concolics`] runs the §5.4 loop:
//!
//! 1. solve the path constraints to get concrete values for the function's
//!    arguments;
//! 2. run the concrete implementation on those values;
//! 3. bind the arguments and the result with equality constraints and
//!    re-solve;
//! 4. on unsatisfiability, retry with different argument values (bounded).
//!
//! Domain-specific fallbacks (e.g. forcing `verify_checksum`'s reference
//! value equal to the computed checksum) live in the target extensions,
//! which fork a dedicated path instead of relying on a lucky model.
//!
//! Every solve in this loop is **model-bearing**, so it always runs on a
//! fresh SAT instance via [`Solver::check_assuming`] — even when the run's
//! feasibility checks use the warm incremental spine core
//! ([`p4t_smt::SolverMode::Incremental`]). The concrete argument values fed
//! to step 2 therefore depend only on the constraint set, which is what
//! keeps concolic resolutions (and the tests built from them)
//! byte-identical across solver modes and worker counts.

use crate::state::ConcolicBinding;
use p4t_smt::{eval, Assignment, BitVec, CheckResult, Solver, TermId, TermPool};
use std::collections::HashMap;

/// A concrete implementation backing an uninterpreted extern function.
pub type ConcolicFn = fn(&[BitVec], u32) -> BitVec;

/// Registry of concrete implementations, keyed by function name.
#[derive(Clone)]
pub struct ConcolicRegistry {
    fns: HashMap<String, ConcolicFn>,
}

impl Default for ConcolicRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ConcolicRegistry {
    pub fn empty() -> Self {
        ConcolicRegistry { fns: HashMap::new() }
    }

    /// Registry preloaded with the common packet-processing functions.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("csum16", csum16);
        r.register("crc32", crc32);
        r.register("crc16", crc16);
        r.register("xor16", xor16);
        r.register("identity", identity);
        r
    }

    pub fn register(&mut self, name: &str, f: ConcolicFn) {
        self.fns.insert(name.to_string(), f);
    }

    pub fn get(&self, name: &str) -> Option<ConcolicFn> {
        self.fns.get(name).copied()
    }
}

/// Resolve all concolic bindings of a path against the solver: returns the
/// extra equality constraints to add, or `None` if no consistent concrete
/// assignment was found within `max_retries`.
pub fn resolve_concolics(
    pool: &TermPool,
    solver: &mut Solver,
    registry: &ConcolicRegistry,
    bindings: &[ConcolicBinding],
    path_constraints: &[TermId],
    max_retries: u32,
) -> Option<Vec<TermId>> {
    if bindings.is_empty() {
        return Some(Vec::new());
    }
    let mut banned: Vec<TermId> = Vec::new();
    for _attempt in 0..=max_retries {
        // Solve path constraints (plus any banned previous attempts).
        let mut assumptions = path_constraints.to_vec();
        assumptions.extend(banned.iter().copied());
        if solver.check_assuming(pool, &assumptions) != CheckResult::Sat {
            return None;
        }
        // Concretize arguments under the model, compute results.
        let model = model_for(pool, solver, bindings, path_constraints);
        let mut equalities = Vec::new();
        let mut attempt_key = Vec::new();
        for b in bindings {
            let f = registry.get(&b.func)?;
            let arg_vals: Vec<BitVec> =
                b.args.iter().map(|&a| eval(pool, &model, a)).collect();
            let out_width = pool.width(b.result) as u32;
            let result = f(&arg_vals, out_width);
            for (&arg, val) in b.args.iter().zip(&arg_vals) {
                let c = pool.constant(val.clone());
                equalities.push(pool.eq(arg, c));
                attempt_key.push(equalities[equalities.len() - 1]);
            }
            let rc = pool.constant(result);
            equalities.push(pool.eq(b.result, rc));
        }
        // Check the combined system.
        let mut assumptions = path_constraints.to_vec();
        assumptions.extend(equalities.iter().copied());
        if solver.check_assuming(pool, &assumptions) == CheckResult::Sat {
            return Some(equalities);
        }
        // Ban this argument assignment and retry with new inputs.
        let conj = pool.and_all(&attempt_key);
        banned.push(pool.not(conj));
    }
    None
}

fn model_for(
    pool: &TermPool,
    solver: &Solver,
    bindings: &[ConcolicBinding],
    constraints: &[TermId],
) -> Assignment {
    let mut vars = Vec::new();
    for b in bindings {
        for &a in &b.args {
            vars.extend(pool.vars_of(a));
        }
    }
    for &c in constraints {
        vars.extend(pool.vars_of(c));
    }
    vars.sort();
    vars.dedup();
    solver.model(pool, &vars)
}

// ---- concrete implementations ---------------------------------------------

/// Internet checksum (RFC 1071): one's-complement sum of 16-bit words over
/// the concatenated arguments, truncated/extended to `out_width`.
pub fn csum16(args: &[BitVec], out_width: u32) -> BitVec {
    let bytes = concat_bytes(args);
    let mut sum: u32 = 0;
    let mut i = 0;
    while i < bytes.len() {
        let hi = bytes[i] as u32;
        let lo = if i + 1 < bytes.len() { bytes[i + 1] as u32 } else { 0 };
        sum += (hi << 8) | lo;
        i += 2;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    BitVec::from_u64(out_width as usize, (!sum as u64) & 0xFFFF)
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
pub fn crc32(args: &[BitVec], out_width: u32) -> BitVec {
    let bytes = concat_bytes(args);
    let mut crc: u32 = 0xFFFF_FFFF;
    for b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    BitVec::from_u64(out_width as usize, (!crc) as u64)
}

/// CRC-16 (ARC, reflected, poly 0xA001).
pub fn crc16(args: &[BitVec], out_width: u32) -> BitVec {
    let bytes = concat_bytes(args);
    let mut crc: u16 = 0;
    for b in bytes {
        crc ^= b as u16;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xA001 } else { crc >> 1 };
        }
    }
    BitVec::from_u64(out_width as usize, crc as u64)
}

/// XOR-fold of all 16-bit words.
pub fn xor16(args: &[BitVec], out_width: u32) -> BitVec {
    let bytes = concat_bytes(args);
    let mut acc: u16 = 0;
    let mut i = 0;
    while i < bytes.len() {
        let hi = bytes[i] as u16;
        let lo = if i + 1 < bytes.len() { bytes[i + 1] as u16 } else { 0 };
        acc ^= (hi << 8) | lo;
        i += 2;
    }
    BitVec::from_u64(out_width as usize, acc as u64)
}

/// Identity "hash": the input truncated/zero-extended to the output width.
pub fn identity(args: &[BitVec], out_width: u32) -> BitVec {
    let mut acc = BitVec::empty();
    for a in args {
        acc = acc.concat(a);
    }
    acc.cast(out_width as usize)
}

/// Concatenate the (byte-padded) arguments into one big-endian byte string.
fn concat_bytes(args: &[BitVec]) -> Vec<u8> {
    let mut acc = BitVec::empty();
    for a in args {
        acc = acc.concat(a);
    }
    let w = acc.width();
    let padded = if w.is_multiple_of(8) {
        acc
    } else {
        // Left-pad to a byte boundary (value-preserving).
        acc.zext(w + (8 - w % 8))
    };
    padded.to_bytes_be()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csum16_known_vector() {
        // RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 220d (one's
        // complement of ddf2).
        let data = BitVec::from_bytes_be(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        let c = csum16(&[data], 16);
        assert_eq!(c.to_u64(), Some(0x220d));
    }

    #[test]
    fn csum16_verifies_to_zero() {
        // Including the checksum in the sum yields 0xFFFF before complement.
        let data = BitVec::from_bytes_be(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        let c = csum16(std::slice::from_ref(&data), 16);
        let total = csum16(&[data, c], 16);
        assert_eq!(total.to_u64(), Some(0));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926.
        let data = BitVec::from_bytes_be(b"123456789");
        assert_eq!(crc32(&[data], 32).to_u64(), Some(0xCBF43926));
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/ARC("123456789") = 0xBB3D.
        let data = BitVec::from_bytes_be(b"123456789");
        assert_eq!(crc16(&[data], 16).to_u64(), Some(0xBB3D));
    }

    #[test]
    fn identity_concatenates_and_casts() {
        let a = BitVec::from_u64(8, 0xAB);
        let b = BitVec::from_u64(8, 0xCD);
        assert_eq!(identity(&[a, b], 16).to_u64(), Some(0xABCD));
    }

    #[test]
    fn resolve_simple_binding() {
        // result = csum16(x) with x otherwise unconstrained; the loop must
        // find a consistent concrete assignment.
        let pool = TermPool::new();
        let mut solver = Solver::new();
        let reg = ConcolicRegistry::with_builtins();
        let x = pool.fresh_var("x", 32);
        let r = pool.fresh_var("csum_result", 16);
        let bindings = vec![ConcolicBinding { func: "csum16".into(), args: vec![x], result: r }];
        let eqs = resolve_concolics(&pool, &mut solver, &reg, &bindings, &[], 3)
            .expect("resolvable");
        assert!(!eqs.is_empty());
    }

    #[test]
    fn resolve_fails_on_contradiction() {
        // Constrain result != csum16(x) for the concrete x chosen — since x
        // is pinned by a path constraint, no retry can succeed.
        let pool = TermPool::new();
        let mut solver = Solver::new();
        let reg = ConcolicRegistry::with_builtins();
        let x = pool.fresh_var("x", 32);
        let xc = pool.const_u128(32, 0x01020304);
        let pin = pool.eq(x, xc);
        let r = pool.fresh_var("csum_result", 16);
        let expected = csum16(&[BitVec::from_u128(32, 0x01020304)], 16);
        let wrong = expected.add(&BitVec::from_u64(16, 1));
        let wrong_c = pool.constant(wrong);
        let pin_r = pool.eq(r, wrong_c);
        let bindings = vec![ConcolicBinding { func: "csum16".into(), args: vec![x], result: r }];
        let out =
            resolve_concolics(&pool, &mut solver, &reg, &bindings, &[pin, pin_r], 2);
        assert!(out.is_none());
    }
}
