//! Symbolic values with bit-level taint.
//!
//! Every storage slot holds a [`Sym`]: a term plus a concrete taint mask
//! (§5.3). A taint bit set to 1 means the corresponding value bit is
//! unpredictable on the target — sourced from uninitialized reads, random
//! externs, or target-prepended content — and must not influence test
//! verdicts. Taint propagates structurally: bitwise operations propagate
//! per bit, arithmetic conservatively taints the whole result if any input
//! bit is tainted, and the term pool's algebraic simplifications (`x * 0`,
//! `x & 0`) provide the paper's taint-spread mitigations by never consulting
//! the tainted operand at all.

use p4t_smt::{BitVec, TermId, TermPool};

/// A symbolic value: term + taint mask (same width, 1 = tainted bit).
#[derive(Clone, Debug, PartialEq)]
pub struct Sym {
    pub term: TermId,
    pub taint: BitVec,
}

impl Sym {
    /// A clean (untainted) value.
    pub fn clean(term: TermId, width: u32) -> Sym {
        Sym { term, taint: BitVec::zeros(width as usize) }
    }

    /// A fully tainted value.
    pub fn tainted(term: TermId, width: u32) -> Sym {
        Sym { term, taint: BitVec::ones(width as usize) }
    }

    pub fn with_taint(term: TermId, taint: BitVec) -> Sym {
        Sym { term, taint }
    }

    pub fn width(&self) -> u32 {
        self.taint.width() as u32
    }

    pub fn is_tainted(&self) -> bool {
        !self.taint.is_zero()
    }

    pub fn is_fully_tainted(&self) -> bool {
        self.taint == BitVec::ones(self.taint.width())
    }

    /// Taint combination for operations where any tainted input bit can
    /// influence every output bit (arithmetic, comparisons, shifts by
    /// symbolic amounts).
    pub fn smear(inputs: &[&Sym], out_width: u32) -> BitVec {
        if inputs.iter().any(|s| s.is_tainted()) {
            BitVec::ones(out_width as usize)
        } else {
            BitVec::zeros(out_width as usize)
        }
    }
}

/// Taint-aware operation helpers mirroring the executor's expression forms.
pub struct SymOps;

impl SymOps {
    /// Bitwise op: per-bit union of taints, with AND/OR constant-mask
    /// mitigation handled by the caller via constant folding in the pool.
    pub fn bitwise_taint(a: &Sym, b: &Sym) -> BitVec {
        a.taint.or(&b.taint)
    }

    /// `a & b` where constant-zero bits of either side neutralize taint of
    /// the other: taint_out = (taint_a | taint_b) & known_possible.
    pub fn and_taint(pool: &TermPool, a: &Sym, b: &Sym) -> BitVec {
        let mut t = a.taint.or(&b.taint);
        // If one side is a constant, its zero bits force output bits to 0
        // regardless of taint on the other side (mitigation rule 1).
        if let Some(cb) = pool.as_const(b.term) {
            t = t.and(cb);
        }
        if let Some(ca) = pool.as_const(a.term) {
            t = t.and(ca);
        }
        t
    }

    pub fn concat_taint(hi: &Sym, lo: &Sym) -> BitVec {
        hi.taint.concat(&lo.taint)
    }

    pub fn slice_taint(s: &Sym, hi: u32, lo: u32) -> BitVec {
        s.taint.extract(hi as usize, lo as usize)
    }

    pub fn cast_taint(s: &Sym, width: u32) -> BitVec {
        let w = width as usize;
        let cur = s.taint.width();
        if w <= cur {
            if w == 0 {
                BitVec::empty()
            } else {
                s.taint.extract(w - 1, 0)
            }
        } else {
            s.taint.zext(w)
        }
    }

    /// Mux taint: if the condition is tainted, the whole result is; else the
    /// union of branch taints (conservative, branch-insensitive).
    pub fn mux_taint(cond: &Sym, t: &Sym, e: &Sym) -> BitVec {
        if cond.is_tainted() {
            BitVec::ones(t.taint.width())
        } else {
            t.taint.or(&e.taint)
        }
    }
}

/// Create a fresh, fully tainted symbolic value (a havoc value): the model of
/// "the target may put anything here".
pub fn havoc(pool: &TermPool, name: &str, width: u32) -> Sym {
    let t = pool.fresh_var(format!("havoc_{name}"), width as usize);
    Sym::tainted(t, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_and_tainted_constructors() {
        let pool = TermPool::new();
        let t = pool.const_u128(8, 5);
        assert!(!Sym::clean(t, 8).is_tainted());
        assert!(Sym::tainted(t, 8).is_fully_tainted());
    }

    #[test]
    fn and_with_constant_clears_taint() {
        let pool = TermPool::new();
        let x = pool.fresh_var("x", 8);
        let tainted = Sym::tainted(x, 8);
        let mask = pool.const_u128(8, 0x0F);
        let clean_mask = Sym::clean(mask, 8);
        let taint = SymOps::and_taint(&pool, &tainted, &clean_mask);
        // Only the low nibble can still be unpredictable.
        assert_eq!(taint.to_u64(), Some(0x0F));
    }

    #[test]
    fn concat_and_slice_taint() {
        let pool = TermPool::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.const_u128(8, 0);
        let hi = Sym::tainted(x, 8);
        let lo = Sym::clean(c, 8);
        let cat = SymOps::concat_taint(&hi, &lo);
        assert_eq!(cat.to_u64(), Some(0xFF00));
        let s = Sym::with_taint(x, cat.extract(15, 0));
        assert_eq!(SymOps::slice_taint(&s, 7, 0).to_u64(), Some(0));
        assert_eq!(SymOps::slice_taint(&s, 15, 8).to_u64(), Some(0xFF));
    }

    #[test]
    fn mux_taint_spreads_from_condition() {
        let pool = TermPool::new();
        let c = pool.fresh_var("c", 1);
        let a = pool.const_u128(8, 1);
        let cond_tainted = Sym::tainted(c, 1);
        let clean = Sym::clean(a, 8);
        let taint = SymOps::mux_taint(&cond_tainted, &clean, &clean);
        assert_eq!(taint.to_u64(), Some(0xFF));
        let cond_clean = Sym::clean(c, 1);
        assert!(SymOps::mux_taint(&cond_clean, &clean, &clean).is_zero());
    }
}
