//! Per-path execution state (§6: "P4Testgen maintains an independent
//! execution state object that tracks the state of this particular path"):
//! the symbolic environment, collected path constraints, the packet model,
//! the continuation stack, synthesized control-plane objects, concolic
//! bindings, coverage, and an execution trace.

use crate::packet::PacketModel;
use crate::sym::Sym;
use p4t_ir::{IrStmt, Path, StmtId};
use p4t_smt::{BitVec, TermId, TermPool};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A continuation command. The continuation stack generalizes control flow
/// (§5.1.2): target pipelines, recirculation, and block chaining are all
/// expressed by pushing commands.
#[derive(Clone, Debug)]
pub enum Cmd {
    /// Execute one IR statement.
    Stmt(IrStmt),
    /// Enter a parser state of the named parser block.
    ParserState { parser: String, state: String },
    /// Execute pipeline step `idx` of the target's pipeline template.
    PipeStep(usize),
    /// Pop the current alias frame (end of a block).
    PopFrame,
    /// Flush the emit buffer into the live packet (trigger point, §5.2.1).
    FlushEmit,
    /// Invoke a named target hook (interstitial control flow, e.g. the
    /// traffic manager between ingress and egress).
    Hook(String),
}

/// Why a path terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// The packet left the pipeline (possibly multiple output packets).
    Completed,
    /// The target dropped the packet; still a valid (drop-expectation) test.
    Dropped,
    /// The path was found infeasible.
    Infeasible,
    /// Test generation gave up (e.g. tainted output port — the paper drops
    /// such tests because no framework can check many-valued outputs).
    Abandoned(String),
}

/// A synthesized table-key match in a control-plane entry.
#[derive(Clone, Debug)]
pub struct SynthKeyMatch {
    pub key_name: String,
    pub match_kind: String,
    pub width: u32,
    /// Exact value / ternary value / lpm prefix value / range low bound.
    pub value: Option<TermId>,
    /// Ternary mask (also used to encode optional-wildcard as zero mask).
    pub mask: Option<TermId>,
    /// Range high bound.
    pub hi: Option<TermId>,
    /// LPM prefix length.
    pub prefix_len: Option<u32>,
}

/// A synthesized control-plane entry (one per table per path, §6).
#[derive(Clone, Debug)]
pub struct SynthEntry {
    /// Control-plane table name.
    pub table: String,
    pub keys: Vec<SynthKeyMatch>,
    pub action: String,
    /// (param name, value term, width).
    pub args: Vec<(String, TermId, u32)>,
    pub priority: u32,
}

/// A deferred concolic-function binding (§5.4): `result` is an otherwise
/// unconstrained variable standing for `func(args...)`; resolved against the
/// concrete implementation at test-emission time.
#[derive(Clone, Debug)]
pub struct ConcolicBinding {
    pub func: String,
    pub args: Vec<TermId>,
    pub result: TermId,
}

/// A register operation recorded for the test specification.
#[derive(Clone, Debug)]
pub enum RegisterOp {
    /// A read observed `result` at `index`; the test initializes the register
    /// accordingly before injecting the packet.
    Read { instance: String, index: TermId, result: TermId, width: u32 },
    /// A write of `value` at `index`; the test validates the final state.
    Write { instance: String, index: TermId, value: TermId, width: u32 },
}

/// An output packet produced by this path (port + content).
#[derive(Clone, Debug)]
pub struct SymOutput {
    pub port: Sym,
    pub payload: Option<Sym>,
}

/// The per-path execution state.
#[derive(Clone, Debug)]
pub struct ExecState {
    pub id: u64,
    /// Fork trail: at every fork event the surviving parent appends `0` and
    /// child `i` appends `i + 1` (indexed before feasibility pruning). The
    /// trail uniquely identifies a path in the exploration tree regardless of
    /// which worker explored it or in what order, so it serves as the
    /// schedule-independent identity used for deterministic test ordering and
    /// per-path RNG seeding under parallel exploration.
    pub trail: Vec<u32>,
    /// Flattened storage: global path → symbolic value. A `BTreeMap` so that
    /// iteration (e.g. [`ExecState::snapshot_prefix`], used for clone /
    /// resubmit metadata) is deterministic and independent of insertion
    /// history — a requirement for reproducible parallel exploration.
    env: BTreeMap<String, Sym>,
    /// Alias frames: local head segment → global head segment.
    frames: Vec<HashMap<String, String>>,
    /// Path constraints (1-bit terms), in collection order.
    pub constraints: Vec<TermId>,
    pub packet: PacketModel,
    /// Continuation stack; the top (last) element executes next.
    pub continuations: Vec<Cmd>,
    pub covered: BTreeSet<StmtId>,
    pub entries: Vec<SynthEntry>,
    pub concolics: Vec<ConcolicBinding>,
    pub register_ops: Vec<RegisterOp>,
    pub outputs: Vec<SymOutput>,
    /// Target-specific counters and flags (recirculation depth, clone
    /// sessions, ...).
    pub flags: HashMap<String, u64>,
    /// Parser state visit counts (loop bounding).
    pub visits: HashMap<(String, String), u32>,
    /// Human-readable execution trace.
    pub trace: Vec<String>,
    pub finished: Option<FinishReason>,
    /// Depth in the exploration tree (for selector heuristics).
    pub depth: u32,
}

impl ExecState {
    pub fn new(id: u64) -> Self {
        ExecState {
            id,
            trail: Vec::new(),
            env: BTreeMap::new(),
            frames: vec![HashMap::new()],
            constraints: Vec::new(),
            packet: PacketModel::new(),
            continuations: Vec::new(),
            covered: BTreeSet::new(),
            entries: Vec::new(),
            concolics: Vec::new(),
            register_ops: Vec::new(),
            outputs: Vec::new(),
            flags: HashMap::new(),
            visits: HashMap::new(),
            trace: Vec::new(),
            finished: None,
            depth: 0,
        }
    }

    /// Fork this state with a new id.
    pub fn fork(&self, id: u64) -> ExecState {
        let mut s = self.clone();
        s.id = id;
        s.depth += 1;
        s
    }

    // ---- alias frames ------------------------------------------------------

    pub fn push_frame(&mut self, aliases: HashMap<String, String>) {
        self.frames.push(aliases);
    }

    pub fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// Resolve a (possibly block-local) path to its global storage path.
    pub fn resolve(&self, path: &Path) -> Path {
        let head = path.head();
        for frame in self.frames.iter().rev() {
            if let Some(alias) = frame.get(head) {
                return path.rebase(alias);
            }
        }
        path.clone()
    }

    // ---- environment -------------------------------------------------------

    /// Read a slot; `None` if never written (caller decides the
    /// uninitialized-read policy — taint vs. target zero-init).
    pub fn read(&self, path: &Path) -> Option<&Sym> {
        self.env.get(self.resolve(path).as_str())
    }

    pub fn write(&mut self, path: &Path, value: Sym) {
        self.env.insert(self.resolve(path).0, value);
    }

    /// Write to an already-global path (no alias resolution).
    pub fn write_global(&mut self, path: &str, value: Sym) {
        self.env.insert(path.to_string(), value);
    }

    pub fn read_global(&self, path: &str) -> Option<&Sym> {
        self.env.get(path)
    }

    /// Remove every slot whose global path starts with `prefix` (used to
    /// reset `out` parameters and recirculation metadata).
    pub fn clear_prefix(&mut self, prefix: &str) {
        self.env.retain(|k, _| !(k == prefix || k.starts_with(&format!("{prefix}."))));
    }

    /// Iterate over all global slots (diagnostics, clone semantics).
    pub fn slots(&self) -> impl Iterator<Item = (&String, &Sym)> {
        self.env.iter()
    }

    /// Snapshot of all slots below a prefix (clone/resubmit metadata saving).
    pub fn snapshot_prefix(&self, prefix: &str) -> Vec<(String, Sym)> {
        let dot = format!("{prefix}.");
        self.env
            .iter()
            .filter(|(k, _)| *k == prefix || k.starts_with(&dot))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    pub fn restore_snapshot(&mut self, snap: Vec<(String, Sym)>) {
        for (k, v) in snap {
            self.env.insert(k, v);
        }
    }

    // ---- constraints ---------------------------------------------------------

    /// Add a path constraint (must be a 1-bit term).
    pub fn add_constraint(&mut self, pool: &TermPool, c: TermId) {
        debug_assert_eq!(pool.width(c), 1);
        // Skip trivially-true constraints to keep solver queries small.
        if pool.is_const_true(c) {
            return;
        }
        self.constraints.push(c);
    }

    /// Whether the constraint set is syntactically unsatisfiable (contains a
    /// literal `false`), a cheap pre-solver prune.
    pub fn trivially_unsat(&self, pool: &TermPool) -> bool {
        self.constraints.iter().any(|&c| pool.is_const_false(c))
    }

    // ---- misc ------------------------------------------------------------------

    pub fn cover(&mut self, id: StmtId) {
        self.covered.insert(id);
    }

    pub fn log(&mut self, msg: impl Into<String>) {
        self.trace.push(msg.into());
    }

    pub fn flag(&self, name: &str) -> u64 {
        self.flags.get(name).copied().unwrap_or(0)
    }

    pub fn set_flag(&mut self, name: &str, value: u64) {
        self.flags.insert(name.to_string(), value);
    }

    pub fn bump_flag(&mut self, name: &str) -> u64 {
        let v = self.flag(name) + 1;
        self.set_flag(name, v);
        v
    }

    pub fn finish(&mut self, reason: FinishReason) {
        self.finished = Some(reason);
        self.continuations.clear();
    }

    pub fn is_running(&self) -> bool {
        self.finished.is_none()
    }

    /// Push commands so `cmds[0]` executes first.
    pub fn push_cmds(&mut self, cmds: Vec<Cmd>) {
        for c in cmds.into_iter().rev() {
            self.continuations.push(c);
        }
    }

    /// Push a block of statements so they execute in order.
    pub fn push_stmts(&mut self, stmts: &[IrStmt]) {
        for s in stmts.iter().rev() {
            self.continuations.push(Cmd::Stmt(s.clone()));
        }
    }
}

/// Helper: a zero value of a given width.
pub fn zero_sym(pool: &TermPool, width: u32) -> Sym {
    let t = pool.constant(BitVec::zeros(width as usize));
    Sym::clean(t, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_resolution() {
        let mut st = ExecState::new(0);
        let mut frame = HashMap::new();
        frame.insert("h".to_string(), "hdr".to_string());
        st.push_frame(frame);
        assert_eq!(st.resolve(&Path::new("h.eth.dst")).as_str(), "hdr.eth.dst");
        assert_eq!(st.resolve(&Path::new("m.x")).as_str(), "m.x");
        st.pop_frame();
        assert_eq!(st.resolve(&Path::new("h.eth.dst")).as_str(), "h.eth.dst");
    }

    #[test]
    fn nested_frames_shadow() {
        let mut st = ExecState::new(0);
        let mut f1 = HashMap::new();
        f1.insert("x".to_string(), "outer".to_string());
        st.push_frame(f1);
        let mut f2 = HashMap::new();
        f2.insert("x".to_string(), "inner".to_string());
        st.push_frame(f2);
        assert_eq!(st.resolve(&Path::new("x.f")).as_str(), "inner.f");
        st.pop_frame();
        assert_eq!(st.resolve(&Path::new("x.f")).as_str(), "outer.f");
    }

    #[test]
    fn env_read_write_via_alias() {
        let pool = TermPool::new();
        let mut st = ExecState::new(0);
        let mut frame = HashMap::new();
        frame.insert("m".to_string(), "meta".to_string());
        st.push_frame(frame);
        let v = zero_sym(&pool, 8);
        st.write(&Path::new("m.x"), v.clone());
        assert_eq!(st.read_global("meta.x"), Some(&v));
        assert_eq!(st.read(&Path::new("m.x")), Some(&v));
    }

    #[test]
    fn clear_prefix_scopes_correctly() {
        let pool = TermPool::new();
        let mut st = ExecState::new(0);
        let v = zero_sym(&pool, 8);
        st.write_global("meta.x", v.clone());
        st.write_global("meta.y", v.clone());
        st.write_global("metadata.z", v.clone());
        st.clear_prefix("meta");
        assert!(st.read_global("meta.x").is_none());
        assert!(st.read_global("meta.y").is_none());
        assert!(st.read_global("metadata.z").is_some(), "prefix must match whole segment");
    }

    #[test]
    fn constraints_skip_trivial_true() {
        let pool = TermPool::new();
        let mut st = ExecState::new(0);
        let t = pool.mk_true();
        st.add_constraint(&pool, t);
        assert!(st.constraints.is_empty());
        let f = pool.mk_false();
        st.add_constraint(&pool, f);
        assert!(st.trivially_unsat(&pool));
    }

    #[test]
    fn continuation_order() {
        let mut st = ExecState::new(0);
        st.push_cmds(vec![Cmd::Hook("a".into()), Cmd::Hook("b".into())]);
        let Some(Cmd::Hook(first)) = st.continuations.pop() else {
            panic!()
        };
        assert_eq!(first, "a");
        let Some(Cmd::Hook(second)) = st.continuations.pop() else {
            panic!()
        };
        assert_eq!(second, "b");
    }
}
