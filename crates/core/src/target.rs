//! The target-extension interface: pipeline templates, interstitial hooks,
//! and extern semantics (§5.1, §5.2).
//!
//! A target extension supplies:
//! * a **prelude** — P4 source declaring the architecture's types & externs;
//! * a **pipeline template** — the ordered [`PipeStep`]s a packet traverses,
//!   with parameter bindings mapping each block's parameters onto global
//!   pipeline state (the Fig. 3 structure);
//! * **hooks** — target-defined control flow between blocks (traffic
//!   manager, recirculation, drop checks; the green segments of Fig. 5);
//! * **extern implementations** — including taint-based rapid prototypes and
//!   concolic externs;
//! * **policies** — uninitialized-value behavior, minimum packet size, etc.

use crate::state::ExecState;
use crate::sym::Sym;
use crate::sym::havoc;
use p4t_ir::{IrProgram, Path};
use p4t_smt::{BitVec, TermId, TermPool};
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::state::Cmd;

/// One step of a pipeline template.
#[derive(Clone, Debug)]
pub enum PipeStep {
    /// Run a programmable block. `bindings[i]` is the global storage name
    /// bound to the block's i-th parameter (`None` for packet parameters,
    /// which have no storage).
    Block { block: String, bindings: Vec<Option<String>> },
    /// Invoke a named target hook.
    Hook(String),
    /// Flush the emit buffer into the live packet (trigger point).
    FlushEmit,
}

/// An evaluated extern argument.
#[derive(Clone, Debug)]
pub enum ExtArg {
    /// An input value.
    Val(Sym),
    /// A flattened list (`{a, b, c}`).
    List(Vec<Sym>),
    /// An output l-value (path already block-local; write via the state).
    Out(Path, u32),
    /// A struct/header passed by reference.
    Ref(Path),
}

impl ExtArg {
    /// The value of an input argument; panics on out/ref arguments.
    pub fn value(&self) -> &Sym {
        match self {
            ExtArg::Val(s) => s,
            other => panic!("expected value argument, got {other:?}"),
        }
    }

    /// All scalar values of a Val or List argument, flattened.
    pub fn values(&self) -> Vec<Sym> {
        match self {
            ExtArg::Val(s) => vec![s.clone()],
            ExtArg::List(v) => v.clone(),
            other => panic!("expected value arguments, got {other:?}"),
        }
    }
}

/// Execution context shared by the executor, hooks, and externs: the term
/// pool, the program, and the fork buffer.
pub struct ExecCtx<'a> {
    pub pool: &'a TermPool,
    pub prog: &'a IrProgram,
    /// States forked during the current step; collected by the driver.
    pub forks: Vec<ExecState>,
    /// Shared state-id counter. State ids are diagnostic labels only (path
    /// identity is the fork trail), so a relaxed atomic shared across workers
    /// is sufficient.
    next_id: &'a AtomicU64,
    /// Parser-state visit bound (loop unrolling depth).
    pub parser_loop_bound: u32,
    /// Deterministic seed for value choices.
    pub seed: u64,
    /// Honor `@entry_restriction` annotations (P4-constraints, Table 4b).
    pub apply_entry_restrictions: bool,
}

impl<'a> ExecCtx<'a> {
    pub fn new(
        pool: &'a TermPool,
        prog: &'a IrProgram,
        next_id: &'a AtomicU64,
        parser_loop_bound: u32,
        seed: u64,
    ) -> Self {
        ExecCtx {
            pool,
            prog,
            forks: Vec::new(),
            next_id,
            parser_loop_bound,
            seed,
            apply_entry_restrictions: true,
        }
    }

    /// Fork `st`, adding `constraint` to the fork. The fork continues from
    /// the same continuation stack.
    pub fn fork(&mut self, st: &ExecState, constraint: TermId) -> ExecState {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut f = st.fork(id);
        f.add_constraint(self.pool, constraint);
        f
    }

    /// Fresh symbolic variable as a clean value.
    pub fn fresh(&mut self, name: &str, width: u32) -> Sym {
        let t = self.pool.fresh_var(name, width as usize);
        Sym::clean(t, width)
    }

    /// Fresh fully-tainted value (taint-based rapid prototyping, §5.3).
    pub fn havoc(&mut self, name: &str, width: u32) -> Sym {
        havoc(self.pool, name, width)
    }

    /// Constant value.
    pub fn constant(&mut self, width: u32, value: u128) -> Sym {
        let t = self.pool.constant(BitVec::from_u128(width as usize, value));
        Sym::clean(t, width)
    }
}

/// Outcome of a target extern call.
pub enum ExternOutcome {
    /// Handled; execution continues.
    Handled,
    /// Not a known extern for this target.
    Unknown,
}

/// Policy for reading a slot that was never written.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UninitPolicy {
    /// Reads yield zero (BMv2: "all uninitialized variables are implicitly
    /// initialized to 0").
    Zero,
    /// Reads yield an unconstrained, fully tainted value (the P4-16 default:
    /// undefined).
    Taint,
}

/// A target extension.
///
/// Targets must be `Send + Sync`: one target instance is shared by all
/// exploration workers. In practice target extensions are stateless policy
/// objects (all per-path state lives in [`ExecState`]), so this bound is
/// free.
pub trait Target: Send + Sync {
    /// Architecture name (e.g. "v1model").
    fn name(&self) -> &str;

    /// P4 source for the architecture's types, externs, and constants,
    /// prepended to every program before parsing.
    fn prelude(&self) -> &str;

    /// The pipeline template for a program (§5.1.1): resolves the package
    /// instantiation's block arguments to concrete steps.
    fn pipeline(&self, prog: &IrProgram) -> Result<Vec<PipeStep>, String>;

    /// Initialize per-path state: intrinsic metadata, input port, prepended
    /// target content (Tofino metadata / FCS), preconditions.
    fn init(&self, ctx: &mut ExecCtx, st: &mut ExecState);

    /// Policy for uninitialized reads.
    fn uninit_policy(&self) -> UninitPolicy {
        UninitPolicy::Taint
    }

    /// Per-slot refinement of the uninitialized-read policy (e.g. Tofino
    /// zero-initializes user metadata but leaves intrinsic metadata
    /// undefined). Receives the resolved global path.
    fn uninit_policy_for(&self, _global_path: &str) -> UninitPolicy {
        self.uninit_policy()
    }

    /// Interstitial control-flow hook (§5.1.2).
    fn hook(&self, name: &str, ctx: &mut ExecCtx, st: &mut ExecState);

    /// Extern dispatch. Arguments are pre-evaluated.
    fn extern_call(
        &self,
        name: &str,
        instance: Option<&str>,
        args: &[ExtArg],
        ctx: &mut ExecCtx,
        st: &mut ExecState,
    ) -> ExternOutcome;

    /// Minimum input packet size in bytes (a fixed target precondition, §6).
    fn min_packet_bytes(&self) -> u32 {
        0
    }

    /// Called when the pipeline completes: derive the output packet(s) and
    /// ports from the final state (push into `st.outputs`), or mark the
    /// state dropped.
    fn finalize(&self, ctx: &mut ExecCtx, st: &mut ExecState);

    /// Width of port numbers on this target.
    fn port_width(&self) -> u32 {
        9
    }
}
