//! Preconditions: P4-constraints (`@entry_restriction`) and fixed-size
//! packet restrictions (§6.1.1, Table 4b).
//!
//! P4-constraints annotates tables with a boolean expression over the
//! table's key names; entries the control plane may install must satisfy it.
//! P4Testgen compiles the annotation into a predicate over the *synthesized*
//! entry's key variables and asserts it as a precondition, pruning paths
//! whose entries would be illegal — this is how Table 4b's test-count
//! reductions arise.

use crate::state::SynthKeyMatch;
use p4t_frontend::ast::{BinaryOp, Expr, UnaryOp};
use p4t_frontend::parse_expression;
use p4t_smt::{BitVec, TermId, TermPool};

/// Compile an `@entry_restriction` source string into a constraint over the
/// synthesized entry's key variables. Returns `Ok(None)` when the
/// restriction references no known key (vacuous).
pub fn compile_restriction(
    pool: &TermPool,
    source: &str,
    keys: &[SynthKeyMatch],
) -> Result<Option<TermId>, String> {
    let expr = parse_expression(source).map_err(|diags| {
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
    })?;
    let mut any_key = false;
    let t = compile_expr(pool, &expr, keys, &mut any_key)?;
    if any_key {
        Ok(Some(t))
    } else {
        Ok(None)
    }
}

fn key_term(keys: &[SynthKeyMatch], name: &str) -> Option<(TermId, u32)> {
    keys.iter()
        .find(|k| k.key_name == name || k.key_name.ends_with(&format!(".{name}")))
        .and_then(|k| k.value.map(|v| (v, k.width)))
}

fn compile_expr(
    pool: &TermPool,
    e: &Expr,
    keys: &[SynthKeyMatch],
    any_key: &mut bool,
) -> Result<TermId, String> {
    match e {
        Expr::Bool { value, .. } => Ok(pool.const_u128(1, *value as u128)),
        Expr::Int { value, width, .. } => {
            let w = width.unwrap_or(64);
            Ok(pool.constant(BitVec::from_u128(w as usize, *value)))
        }
        Expr::Ident { name, .. } => match key_term(keys, name) {
            Some((t, _)) => {
                *any_key = true;
                Ok(t)
            }
            None => Err(format!("unknown key '{name}' in restriction")),
        },
        Expr::Member { base, member, .. } => {
            // Dotted key names like `hdr.ipv4.dst`: reconstruct the text.
            let mut parts = vec![member.clone()];
            let mut cur = base.as_ref();
            loop {
                match cur {
                    Expr::Member { base, member, .. } => {
                        parts.push(member.clone());
                        cur = base.as_ref();
                    }
                    Expr::Ident { name, .. } => {
                        parts.push(name.clone());
                        break;
                    }
                    _ => return Err("unsupported restriction member".into()),
                }
            }
            parts.reverse();
            let name = parts.join(".");
            match key_term(keys, &name) {
                Some((t, _)) => {
                    *any_key = true;
                    Ok(t)
                }
                None => Err(format!("unknown key '{name}' in restriction")),
            }
        }
        Expr::Unary { op: UnaryOp::Not, arg, .. } => {
            let a = compile_expr(pool, arg, keys, any_key)?;
            Ok(pool.not(a))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let mut l = compile_expr(pool, lhs, keys, any_key)?;
            let mut r = compile_expr(pool, rhs, keys, any_key)?;
            // Width-adapt integer literals to the other operand.
            let (lw, rw) = (pool.width(l), pool.width(r));
            if lw != rw {
                if lw < rw {
                    l = pool.cast(l, rw);
                } else {
                    r = pool.cast(r, lw);
                }
            }
            Ok(match op {
                BinaryOp::And => pool.and(l, r),
                BinaryOp::Or => pool.or(l, r),
                BinaryOp::Eq => pool.eq(l, r),
                BinaryOp::Neq => pool.neq(l, r),
                BinaryOp::Lt => pool.ult(l, r),
                BinaryOp::Le => pool.ule(l, r),
                BinaryOp::Gt => pool.ult(r, l),
                BinaryOp::Ge => pool.ule(r, l),
                BinaryOp::BitAnd => pool.and(l, r),
                BinaryOp::BitOr => pool.or(l, r),
                BinaryOp::BitXor => pool.xor(l, r),
                BinaryOp::Add => pool.add(l, r),
                BinaryOp::Sub => pool.sub(l, r),
                other => return Err(format!("unsupported operator {other:?} in restriction")),
            })
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            let c = compile_expr(pool, cond, keys, any_key)?;
            let t = compile_expr(pool, then_e, keys, any_key)?;
            let f = compile_expr(pool, else_e, keys, any_key)?;
            Ok(pool.ite(c, t, f))
        }
        other => Err(format!("unsupported restriction expression: {other:?}")),
    }
}

/// Generation-time preconditions (Table 4b's experiment knobs).
#[derive(Clone, Debug, Default)]
pub struct Preconditions {
    /// Fix the input packet size to exactly this many bytes: extracts never
    /// run short, removing parser-reject paths.
    pub fixed_packet_bytes: Option<u32>,
    /// Honor `@entry_restriction` annotations (P4-constraints).
    pub apply_entry_restrictions: bool,
}

impl Preconditions {
    pub fn none() -> Self {
        Preconditions::default()
    }

    pub fn with_fixed_packet(bytes: u32) -> Self {
        Preconditions { fixed_packet_bytes: Some(bytes), apply_entry_restrictions: false }
    }

    pub fn with_constraints() -> Self {
        Preconditions { fixed_packet_bytes: None, apply_entry_restrictions: true }
    }

    pub fn all(bytes: u32) -> Self {
        Preconditions { fixed_packet_bytes: Some(bytes), apply_entry_restrictions: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(pool: &TermPool) -> Vec<SynthKeyMatch> {
        let a = pool.fresh_var("a", 8);
        let b = pool.fresh_var("b", 16);
        vec![
            SynthKeyMatch {
                key_name: "a".into(),
                match_kind: "exact".into(),
                width: 8,
                value: Some(a),
                mask: None,
                hi: None,
                prefix_len: None,
            },
            SynthKeyMatch {
                key_name: "hdr.x.b".into(),
                match_kind: "exact".into(),
                width: 16,
                value: Some(b),
                mask: None,
                hi: None,
                prefix_len: None,
            },
        ]
    }

    #[test]
    fn compiles_simple_comparison() {
        let pool = TermPool::new();
        let ks = keys(&pool);
        let c = compile_restriction(&pool, "a != 0", &ks).unwrap();
        assert!(c.is_some());
    }

    #[test]
    fn dotted_key_names_resolve() {
        let pool = TermPool::new();
        let ks = keys(&pool);
        let c = compile_restriction(&pool, "hdr.x.b == 5 && a < 10", &ks).unwrap();
        assert!(c.is_some());
    }

    #[test]
    fn suffix_matching_on_key_names() {
        let pool = TermPool::new();
        let ks = keys(&pool);
        // `b` alone matches the key named `hdr.x.b`.
        let c = compile_restriction(&pool, "b > 100", &ks).unwrap();
        assert!(c.is_some());
    }

    #[test]
    fn unknown_key_is_error() {
        let pool = TermPool::new();
        let ks = keys(&pool);
        assert!(compile_restriction(&pool, "zzz == 1", &ks).is_err());
    }

    #[test]
    fn restriction_actually_constrains() {
        use p4t_smt::{CheckResult, Solver};
        let pool = TermPool::new();
        let ks = keys(&pool);
        let c = compile_restriction(&pool, "a == 7", &ks).unwrap().unwrap();
        let mut solver = Solver::new();
        solver.assert(&pool, c);
        // Also assert a != 7: unsat.
        let a = ks[0].value.unwrap();
        let seven = pool.const_u128(8, 7);
        let neq = pool.neq(a, seven);
        solver.assert(&pool, neq);
        assert_eq!(solver.check(&pool), CheckResult::Unsat);
    }
}
