//! The small-step symbolic executor (§4 step 2).
//!
//! [`step`] pops one continuation command from a state and executes it,
//! possibly forking. Expression evaluation maps IR expressions to symbolic
//! values with taint; statement execution implements the reference semantics
//! of each P4 construct, with the target consulted for extern calls, hooks,
//! and policies.

use crate::state::{Cmd, ExecState, FinishReason};
use crate::sym::{Sym, SymOps};
use crate::tables;
use crate::target::{ExecCtx, ExtArg, ExternOutcome, Target, UninitPolicy};
use p4t_frontend::types::{Type, ERROR_WIDTH};
use p4t_ir::{IrArg, IrBinOp, IrBlock, IrExpr, IrKeyset, IrStmt, IrTransition, IrUnOp, Path};
use p4t_smt::{BinOp, BitVec, TermId};
use std::collections::HashMap;

/// An execution abort: the state cannot continue (unsupported construct,
/// internal inconsistency). The driver marks the path abandoned.
#[derive(Clone, Debug)]
pub struct Abort(pub String);

pub type ExecResult<T> = Result<T, Abort>;

/// Error code of `error.PacketTooShort` (index in the core error list).
pub const ERR_PACKET_TOO_SHORT: u128 = 1;
/// Error code of `error.NoMatch`.
pub const ERR_NO_MATCH: u128 = 2;

/// Evaluate an IR expression to a symbolic value.
pub fn eval_expr(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    e: &IrExpr,
) -> ExecResult<Sym> {
    match e {
        IrExpr::Const { width, value } => Ok(ctx.constant(*width, *value)),
        IrExpr::Read { path, width } => Ok(read_slot(ctx, st, target, path, *width)),
        IrExpr::IsValid { path } => {
            let vp = st.resolve(path).valid();
            match st.read_global(vp.as_str()) {
                Some(s) => Ok(s.clone()),
                None => Ok(ctx.constant(1, 0)), // never-touched headers are invalid
            }
        }
        IrExpr::Unary { op, arg, width } => {
            let a = eval_expr(ctx, st, target, arg)?;
            match op {
                IrUnOp::Not => {
                    let t = ctx.pool.not(a.term);
                    Ok(Sym::with_taint(t, a.taint.clone()))
                }
                IrUnOp::Neg => {
                    let t = ctx.pool.neg(a.term);
                    Ok(Sym::with_taint(t, Sym::smear(&[&a], *width)))
                }
            }
        }
        IrExpr::Binary { op, lhs, rhs, width } => {
            let a = eval_expr(ctx, st, target, lhs)?;
            let b = eval_expr(ctx, st, target, rhs)?;
            Ok(eval_binary(ctx, *op, &a, &b, *width))
        }
        IrExpr::Slice { base, hi, lo } => {
            let b = eval_expr(ctx, st, target, base)?;
            let t = ctx.pool.extract(*hi as usize, *lo as usize, b.term);
            Ok(Sym::with_taint(t, SymOps::slice_taint(&b, *hi, *lo)))
        }
        IrExpr::Cast { arg, width } => {
            let a = eval_expr(ctx, st, target, arg)?;
            let t = ctx.pool.cast(a.term, *width as usize);
            Ok(Sym::with_taint(t, SymOps::cast_taint(&a, *width)))
        }
        IrExpr::SignCast { arg, width } => {
            let a = eval_expr(ctx, st, target, arg)?;
            let aw = a.width();
            let t = if *width > aw {
                ctx.pool.sext(a.term, *width as usize)
            } else {
                ctx.pool.cast(a.term, *width as usize)
            };
            let taint = if a.is_tainted() {
                BitVec::ones(*width as usize)
            } else {
                BitVec::zeros(*width as usize)
            };
            Ok(Sym::with_taint(t, taint))
        }
        IrExpr::Mux { cond, then_e, else_e, .. } => {
            let c = eval_expr(ctx, st, target, cond)?;
            let t = eval_expr(ctx, st, target, then_e)?;
            let f = eval_expr(ctx, st, target, else_e)?;
            let term = ctx.pool.ite(c.term, t.term, f.term);
            // A constant condition selects exactly one branch: the other
            // branch's taint must not leak into the result (this matters
            // for elaborated header-stack muxes whose untaken arms read
            // invalid slots).
            let taint = match ctx.pool.as_const(c.term) {
                Some(v) if v.is_true() => t.taint.clone(),
                Some(_) => f.taint.clone(),
                None => SymOps::mux_taint(&c, &t, &f),
            };
            Ok(Sym::with_taint(term, taint))
        }
        IrExpr::Lookahead { width } => Ok(st.packet.peek(ctx.pool, *width)),
        IrExpr::VarbitLen { path } => {
            let lp = st.resolve(path).child("$len");
            match st.read_global(lp.as_str()) {
                Some(s) => Ok(s.clone()),
                None => Ok(ctx.constant(32, 0)),
            }
        }
    }
}

fn eval_binary(ctx: &mut ExecCtx, op: IrBinOp, a: &Sym, b: &Sym, width: u32) -> Sym {
    let pool = ctx.pool;
    let (term, taint) = match op {
        IrBinOp::And => (pool.bin(BinOp::And, a.term, b.term), SymOps::and_taint(pool, a, b)),
        IrBinOp::Or => (pool.bin(BinOp::Or, a.term, b.term), SymOps::bitwise_taint(a, b)),
        IrBinOp::Xor => (pool.bin(BinOp::Xor, a.term, b.term), SymOps::bitwise_taint(a, b)),
        IrBinOp::Concat => (pool.bin(BinOp::Concat, a.term, b.term), SymOps::concat_taint(a, b)),
        IrBinOp::Add => (pool.bin(BinOp::Add, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Sub => (pool.bin(BinOp::Sub, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Mul => {
            let t = pool.bin(BinOp::Mul, a.term, b.term);
            // Mitigation: multiplying by constant zero erases taint (the
            // pool folds the term to 0; mirror that in the taint).
            let taint = if pool.as_const(t).is_some_and(|v| v.is_zero()) {
                BitVec::zeros(width as usize)
            } else {
                Sym::smear(&[a, b], width)
            };
            (t, taint)
        }
        IrBinOp::Div => (pool.bin(BinOp::UDiv, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Mod => (pool.bin(BinOp::URem, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Shl => (pool.bin(BinOp::Shl, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Shr => (pool.bin(BinOp::LShr, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::AShr => (pool.bin(BinOp::AShr, a.term, b.term), Sym::smear(&[a, b], width)),
        IrBinOp::Eq => (pool.bin(BinOp::Eq, a.term, b.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Neq => {
            let e = pool.bin(BinOp::Eq, a.term, b.term);
            (pool.not(e), Sym::smear(&[a, b], 1))
        }
        IrBinOp::Ult => (pool.bin(BinOp::Ult, a.term, b.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Ule => (pool.bin(BinOp::Ule, a.term, b.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Ugt => (pool.bin(BinOp::Ult, b.term, a.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Uge => (pool.bin(BinOp::Ule, b.term, a.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Slt => (pool.bin(BinOp::Slt, a.term, b.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Sle => (pool.bin(BinOp::Sle, a.term, b.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Sgt => (pool.bin(BinOp::Slt, b.term, a.term), Sym::smear(&[a, b], 1)),
        IrBinOp::Sge => (pool.bin(BinOp::Sle, b.term, a.term), Sym::smear(&[a, b], 1)),
    };
    Sym::with_taint(term, taint)
}

/// Read a slot, applying the target's uninitialized-read policy on a miss.
/// Reading a field of a header that is *concretely invalid* yields an
/// undefined (fully tainted) value, per the P4-16 spec — this is what makes
/// the paper's short-packet example unable to synthesize a table entry.
pub fn read_slot(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    path: &Path,
    width: u32,
) -> Sym {
    let resolved = st.resolve(path);
    if let Some((parent, leaf)) = resolved.as_str().rsplit_once('.') {
        if !leaf.starts_with('$') {
            if let Some(v) = st.read_global(&format!("{parent}.$valid")) {
                if ctx.pool.as_const(v.term).is_some_and(|c| c.is_zero()) {
                    return ctx.havoc(&format!("invalid_{resolved}"), width);
                }
            }
        }
    }
    if let Some(s) = st.read(path) {
        return s.clone();
    }
    let global = resolved;
    let value = match target.uninit_policy_for(global.as_str()) {
        UninitPolicy::Zero => ctx.constant(width, 0),
        UninitPolicy::Taint => ctx.havoc(&format!("uninit_{global}"), width),
    };
    st.write_global(global.as_str(), value.clone());
    value
}

/// Execute one continuation command. Forks are pushed into `ctx.forks`.
pub fn step(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    cmd: Cmd,
) -> ExecResult<()> {
    match cmd {
        Cmd::Stmt(s) => exec_stmt(ctx, st, target, &s),
        Cmd::ParserState { parser, state } => {
            if let Some(base) = state.strip_suffix("$select") {
                run_select(ctx, st, target, &parser, base)
            } else {
                enter_parser_state(ctx, st, &parser, &state)
            }
        }
        Cmd::PipeStep(idx) => pipe_step(ctx, st, target, idx),
        Cmd::PopFrame => {
            st.pop_frame();
            Ok(())
        }
        Cmd::FlushEmit => {
            st.packet.flush_emit();
            Ok(())
        }
        Cmd::Hook(name) => {
            target.hook(&name, ctx, st);
            Ok(())
        }
    }
}

fn pipe_step(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    idx: usize,
) -> ExecResult<()> {
    let pipeline = target
        .pipeline(ctx.prog)
        .map_err(|e| Abort(format!("pipeline template error: {e}")))?;
    if idx >= pipeline.len() {
        target.finalize(ctx, st);
        if st.is_running() {
            st.finish(FinishReason::Completed);
        }
        return Ok(());
    }
    // Queue the next step underneath this one's work.
    st.continuations.push(Cmd::PipeStep(idx + 1));
    match &pipeline[idx] {
        crate::target::PipeStep::Hook(name) => {
            st.continuations.push(Cmd::Hook(name.clone()));
        }
        crate::target::PipeStep::FlushEmit => {
            st.continuations.push(Cmd::FlushEmit);
        }
        crate::target::PipeStep::Block { block, bindings } => {
            enter_block(ctx, st, block, bindings)?;
        }
    }
    Ok(())
}

/// Bind a block's parameters and queue its body.
pub fn enter_block(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    block: &str,
    bindings: &[Option<String>],
) -> ExecResult<()> {
    let prog = ctx.prog;
    let Some(b) = prog.blocks.get(block) else {
        return Err(Abort(format!("unknown block '{block}'")));
    };
    let params = match b {
        IrBlock::Parser(p) => &p.params,
        IrBlock::Control(c) => &c.params,
    };
    let mut frame = HashMap::new();
    let mut resets: Vec<(Type, String)> = Vec::new();
    for (i, p) in params.iter().enumerate() {
        if let Some(Some(global)) = bindings.get(i) {
            frame.insert(p.name.clone(), global.clone());
            if p.direction == p4t_frontend::ast::Direction::Out {
                resets.push((p.ty.clone(), global.clone()));
            }
        }
    }
    // `out` parameters are reset on entry: slots cleared (so the uninit
    // policy applies) and header validity explicitly zeroed.
    for (ty, global) in resets {
        st.clear_prefix(&global);
        invalidate_headers(ctx, st, &ty, &Path::new(global));
    }
    st.push_frame(frame);
    st.continuations.push(Cmd::PopFrame);
    st.log(format!("enter block {block}"));
    match b {
        IrBlock::Parser(_) => {
            st.continuations.push(Cmd::ParserState {
                parser: block.to_string(),
                state: "start".to_string(),
            });
        }
        IrBlock::Control(c) => {
            st.push_stmts(&c.apply);
        }
    }
    Ok(())
}

/// Set `$valid = 0` for every header reachable under a type at a path.
pub fn invalidate_headers(ctx: &mut ExecCtx, st: &mut ExecState, ty: &Type, base: &Path) {
    let zero = ctx.constant(1, 0);
    match ty {
        Type::Header(_) => {
            st.write_global(base.valid().as_str(), zero);
        }
        Type::Struct(sn) => {
            let prog = ctx.prog;
            let Some(fields) = prog.env.fields_of(sn) else {
                return;
            };
            for f in fields {
                invalidate_headers(ctx, st, &f.ty, &base.child(&f.name));
            }
        }
        Type::Stack(elem, n) => {
            if matches!(elem.as_ref(), Type::Header(_)) {
                let z32 = ctx.constant(32, 0);
                st.write_global(base.next_index().as_str(), z32);
                for i in 0..*n {
                    st.write_global(base.indexed(i).valid().as_str(), zero.clone());
                }
            }
        }
        _ => {}
    }
}

fn enter_parser_state(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    parser: &str,
    state: &str,
) -> ExecResult<()> {
    if state == "accept" {
        return Ok(());
    }
    if state == "reject" {
        st.continuations.push(Cmd::Hook("parser_reject".to_string()));
        return Ok(());
    }
    let key = (parser.to_string(), state.to_string());
    let visits = st.visits.entry(key).or_insert(0);
    *visits += 1;
    if *visits > ctx.parser_loop_bound {
        // Loop bound exceeded: stop this path (the paper bounds parser
        // unrolling in the midend; we bound dynamically).
        st.log(format!("parser loop bound hit in {parser}.{state}"));
        st.finish(FinishReason::Abandoned("parser loop bound".into()));
        return Ok(());
    }
    let prog = ctx.prog;
    let Some(IrBlock::Parser(p)) = prog.blocks.get(parser) else {
        return Err(Abort(format!("unknown parser '{parser}'")));
    };
    let Some(ir_state) = p.states.get(state) else {
        return Err(Abort(format!("unknown parser state '{parser}.{state}'")));
    };
    st.log(format!("parser state {parser}.{state}"));
    // Queue: statements, then the transition decision.
    match &ir_state.transition {
        IrTransition::Direct(next) => {
            st.continuations
                .push(Cmd::ParserState { parser: parser.to_string(), state: next.clone() });
        }
        IrTransition::Select { .. } => {
            st.continuations.push(Cmd::ParserState {
                parser: parser.to_string(),
                state: format!("{state}$select"),
            });
        }
    }
    st.push_stmts(&ir_state.stmts);
    Ok(())
}

/// Evaluate a `select` transition: fork one state per case (with
/// first-match-wins semantics) plus a NoMatch-reject fork.
fn run_select(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    parser: &str,
    state: &str,
) -> ExecResult<()> {
    let prog = ctx.prog;
    let Some(IrBlock::Parser(p)) = prog.blocks.get(parser) else {
        return Err(Abort(format!("unknown parser '{parser}'")));
    };
    let Some(ir_state) = p.states.get(state) else {
        return Err(Abort(format!("unknown parser state '{parser}.{state}'")));
    };
    let IrTransition::Select { keys, cases } = &ir_state.transition else {
        return Err(Abort("select pseudo-state without select transition".into()));
    };
    let key_syms: Vec<Sym> = keys
        .iter()
        .map(|k| eval_expr(ctx, st, target, k))
        .collect::<ExecResult<_>>()?;
    let keys_tainted = key_syms.iter().any(|k| k.is_tainted());
    let mut not_earlier: Vec<TermId> = Vec::new();
    let mut forks: Vec<ExecState> = Vec::new();
    for case in cases {
        let m = keyset_match(ctx, &key_syms, &case.keysets)?;
        let mut conj = vec![m];
        conj.extend(not_earlier.iter().copied());
        let cond = ctx.pool.and_all(&conj);
        if !ctx.pool.is_const_false(cond) {
            let mut f = ctx.fork(st, cond);
            if keys_tainted {
                f.set_flag("taint_flaky", 1);
            }
            f.continuations.push(Cmd::ParserState {
                parser: parser.to_string(),
                state: case.next_state.clone(),
            });
            f.log(format!("select -> {}", case.next_state));
            forks.push(f);
        }
        let nm = ctx.pool.not(m);
        not_earlier.push(nm);
    }
    // No case matched: implicit transition to reject with error.NoMatch.
    let nomatch = ctx.pool.and_all(&not_earlier);
    if !ctx.pool.is_const_false(nomatch) {
        let mut f = ctx.fork(st, nomatch);
        if keys_tainted {
            f.set_flag("taint_flaky", 1);
        }
        set_parser_error(ctx, &mut f, ERR_NO_MATCH);
        f.continuations.push(Cmd::ParserState {
            parser: parser.to_string(),
            state: "reject".to_string(),
        });
        f.log("select -> reject (NoMatch)".to_string());
        forks.push(f);
    }
    // The original state is replaced by the forks.
    st.finish(FinishReason::Infeasible);
    ctx.forks.extend(forks);
    Ok(())
}

/// Record a parser error in the conventional global slot.
pub fn set_parser_error(ctx: &mut ExecCtx, st: &mut ExecState, code: u128) {
    let v = ctx.constant(ERROR_WIDTH, code);
    st.write_global("$parser_error", v);
}

/// Build the match condition of one keyset row against the key values.
pub fn keyset_match(ctx: &mut ExecCtx, keys: &[Sym], keysets: &[IrKeyset]) -> ExecResult<TermId> {
    let mut conj = Vec::new();
    for (k, ks) in keys.iter().zip(keysets) {
        match ks {
            IrKeyset::Dontcare => {}
            IrKeyset::Exact(e) => {
                let v = const_keyset_value(ctx, e, k.width())?;
                conj.push(ctx.pool.eq(k.term, v));
            }
            IrKeyset::Mask { value, mask } => {
                let v = const_keyset_value(ctx, value, k.width())?;
                let m = const_keyset_value(ctx, mask, k.width())?;
                let km = ctx.pool.and(k.term, m);
                let vm = ctx.pool.and(v, m);
                conj.push(ctx.pool.eq(km, vm));
            }
            IrKeyset::Range { lo, hi } => {
                let l = const_keyset_value(ctx, lo, k.width())?;
                let h = const_keyset_value(ctx, hi, k.width())?;
                let ge = ctx.pool.ule(l, k.term);
                let le = ctx.pool.ule(k.term, h);
                conj.push(ctx.pool.and(ge, le));
            }
        }
    }
    Ok(ctx.pool.and_all(&conj))
}

fn const_keyset_value(ctx: &mut ExecCtx, e: &IrExpr, width: u32) -> ExecResult<TermId> {
    match e {
        IrExpr::Const { width: w, value } => {
            let v = ctx.constant(*w, *value);
            Ok(ctx.pool.cast(v.term, width as usize))
        }
        other => Err(Abort(format!("non-constant keyset expression: {other:?}"))),
    }
}

// ---- statements ---------------------------------------------------------------

fn exec_stmt(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    s: &IrStmt,
) -> ExecResult<()> {
    st.cover(s.id());
    match s {
        IrStmt::DeclVar { path, width, .. } => {
            let global = st.resolve(path);
            let value = match target.uninit_policy_for(global.as_str()) {
                UninitPolicy::Zero => ctx.constant(*width, 0),
                UninitPolicy::Taint => ctx.havoc(&format!("decl_{path}"), *width),
            };
            st.write(path, value);
            Ok(())
        }
        IrStmt::Assign { target: tpath, value, .. } => {
            let v = eval_expr(ctx, st, target, value)?;
            st.write(tpath, v);
            Ok(())
        }
        IrStmt::If { cond, then_s, else_s, .. } => {
            let c = eval_expr(ctx, st, target, cond)?;
            if let Some(cv) = ctx.pool.as_const(c.term) {
                if cv.is_true() {
                    st.push_stmts(then_s);
                } else {
                    st.push_stmts(else_s);
                }
                return Ok(());
            }
            // Fork both arms; the original state is superseded. Branching
            // on a *tainted* condition means the target's choice is
            // unpredictable: both arms are still explored (coverage), but
            // the resulting tests are flaky and are dropped at emission,
            // like tainted-output-port tests (§5.3, footnote 2).
            let flaky = c.is_tainted();
            let mut t = ctx.fork(st, c.term);
            t.push_stmts(then_s);
            let nc = ctx.pool.not(c.term);
            let mut f = ctx.fork(st, nc);
            f.push_stmts(else_s);
            if flaky {
                t.set_flag("taint_flaky", 1);
                f.set_flag("taint_flaky", 1);
            }
            ctx.forks.push(t);
            ctx.forks.push(f);
            st.finish(FinishReason::Infeasible);
            Ok(())
        }
        IrStmt::ApplyTable { table, .. } => tables::apply_table(ctx, st, target, table, None),
        IrStmt::SwitchActionRun { table, cases, .. } => {
            tables::apply_table(ctx, st, target, table, Some(cases))
        }
        IrStmt::Extract { header, ty, varbit_len, .. } => {
            exec_extract(ctx, st, target, header, ty, varbit_len.as_ref())
        }
        IrStmt::Advance { bits, .. } => {
            let b = eval_expr(ctx, st, target, bits)?;
            let Some(n) = ctx.pool.as_const(b.term).and_then(|v| v.to_u64()) else {
                return Err(Abort("advance with symbolic amount".into()));
            };
            exec_advance(ctx, st, n as u32)
        }
        IrStmt::Emit { header, ty, .. } => exec_emit(ctx, st, target, header, ty),
        IrStmt::SetValid { header, valid, .. } => {
            let v = ctx.constant(1, *valid as u128);
            let vp = st.resolve(header).valid();
            st.write_global(vp.as_str(), v);
            Ok(())
        }
        IrStmt::CallAction { action, args, .. } => {
            let arg_syms: Vec<Sym> = args
                .iter()
                .map(|a| eval_expr(ctx, st, target, a))
                .collect::<ExecResult<_>>()?;
            call_action(ctx, st, action, &arg_syms)
        }
        IrStmt::ExternCall { name, instance, args, .. } => {
            exec_extern(ctx, st, target, name, instance.as_deref(), args)
        }
        IrStmt::StackOp { stack, push, count, .. } => exec_stack_op(ctx, st, stack, *push, *count),
        IrStmt::Exit { .. } => {
            // `exit` terminates the pipeline block: drop queued commands up
            // to the enclosing frame boundary.
            while let Some(cmd) = st.continuations.last() {
                if matches!(cmd, Cmd::PopFrame | Cmd::PipeStep(_)) {
                    break;
                }
                st.continuations.pop();
            }
            Ok(())
        }
        IrStmt::Return { .. } => {
            // Return from an action: drop queued statements.
            while let Some(Cmd::Stmt(_)) = st.continuations.last() {
                st.continuations.pop();
            }
            Ok(())
        }
    }
}

/// Run an action body with bound data-plane arguments.
pub fn call_action(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    action: &str,
    args: &[Sym],
) -> ExecResult<()> {
    let prog = ctx.prog;
    for block in prog.blocks.values() {
        if let IrBlock::Control(c) = block {
            if let Some(a) = c.actions.get(action) {
                for ((pname, pwidth), v) in a.params.iter().zip(args) {
                    let path = format!("{}::{}::{}", c.name, a.name, pname);
                    let cast = ctx.pool.cast(v.term, *pwidth as usize);
                    st.write_global(&path, Sym::with_taint(cast, SymOps::cast_taint(v, *pwidth)));
                }
                st.push_stmts(&a.body);
                return Ok(());
            }
        }
    }
    Err(Abort(format!("unknown action '{action}'")))
}

fn exec_extract(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    header: &Path,
    ty: &str,
    varbit_len: Option<&IrExpr>,
) -> ExecResult<()> {
    let prog = ctx.prog;
    let fields: Vec<(String, Type)> = prog
        .env
        .fields_of(ty)
        .ok_or_else(|| Abort(format!("unknown header type '{ty}'")))?
        .iter()
        .map(|f| (f.name.clone(), f.ty.clone()))
        .collect();
    let mut fixed_bits: u32 = 0;
    for (_, fty) in &fields {
        if !matches!(fty, Type::Varbit(_)) {
            fixed_bits += fty.width(&prog.env).unwrap_or(0);
        }
    }
    // Varbit length must be concrete.
    let vb_len: u32 = match varbit_len {
        Some(e) => {
            let v = eval_expr(ctx, st, target, e)?;
            ctx.pool
                .as_const(v.term)
                .and_then(|c| c.to_u64())
                .ok_or_else(|| Abort("extract with symbolic varbit length".into()))?
                as u32
        }
        None => 0,
    };
    let need = fixed_bits + vb_len;
    let have = st.packet.live_bits();
    // Fork: packet too short (§5.2.1; Fig 1c line 4). Only exists when the
    // live packet cannot already satisfy the extract.
    if (have as u32) < need {
        let t = ctx.pool.mk_true();
        let mut short = ctx.fork(st, t);
        // The short packet ends after all but the last field, matching the
        // paper's example tests (96-bit packet for a 112-bit Ethernet header
        // whose last field is 16 bits).
        let last_field_bits = fields
            .last()
            .and_then(|(_, t)| t.width(&prog.env))
            .unwrap_or(0)
            .min(need);
        let short_total = need.saturating_sub(last_field_bits).max(have as u32);
        let missing = short_total.saturating_sub(have as u32);
        if missing > 0 {
            short.packet.grow_input(ctx.pool, missing);
        }
        // The failed extract consumes nothing: the unparsed content remains
        // and passes through as payload (Fig 1c line 7: 96 bits in, 96 out).
        set_parser_error(ctx, &mut short, ERR_PACKET_TOO_SHORT);
        short.log(format!("extract {header}: packet too short"));
        truncate_parser_continuations(&mut short);
        short.continuations.push(Cmd::Hook("parser_reject".to_string()));
        ctx.forks.push(short);
    }
    // Normal path: read the content and assign fields MSB-first.
    let content = st.packet.read(ctx.pool, need);
    let hp = st.resolve(header);
    let mut offset = need; // bits remaining, counted from the MSB end
    for (fname, fty) in &fields {
        let fp = hp.child(fname);
        if let Type::Varbit(max) = fty {
            let data = if vb_len > 0 {
                let t = ctx.pool.extract(
                    (offset - 1) as usize,
                    (offset - vb_len) as usize,
                    content.term,
                );
                let taint = content
                    .taint
                    .extract((offset - 1) as usize, (offset - vb_len) as usize);
                let part = Sym::with_taint(t, taint);
                let padded = ctx.pool.cast(part.term, *max as usize);
                Sym::with_taint(padded, SymOps::cast_taint(&part, *max))
            } else {
                ctx.constant(*max, 0)
            };
            st.write_global(fp.as_str(), data);
            let len = ctx.constant(32, vb_len as u128);
            st.write_global(fp.child("$len").as_str(), len);
            offset -= vb_len;
        } else {
            let w = fty.width(&prog.env).unwrap_or(0);
            if w == 0 {
                continue;
            }
            let t = ctx.pool.extract((offset - 1) as usize, (offset - w) as usize, content.term);
            let taint = content.taint.extract((offset - 1) as usize, (offset - w) as usize);
            st.write_global(fp.as_str(), Sym::with_taint(t, taint));
            offset -= w;
        }
    }
    let valid = ctx.constant(1, 1);
    st.write_global(hp.valid().as_str(), valid);
    st.log(format!("extract {hp} ({need} bits)"));
    Ok(())
}

/// Remove queued parser continuations (statements, parser states, hooks) up
/// to the current frame boundary, leaving the PopFrame in place.
fn truncate_parser_continuations(st: &mut ExecState) {
    while let Some(cmd) = st.continuations.last() {
        match cmd {
            Cmd::Stmt(_) | Cmd::ParserState { .. } | Cmd::Hook(_) => {
                st.continuations.pop();
            }
            _ => break,
        }
    }
}

fn exec_advance(ctx: &mut ExecCtx, st: &mut ExecState, bits: u32) -> ExecResult<()> {
    let have = st.packet.live_bits();
    if (have as u32) < bits {
        let t = ctx.pool.mk_true();
        let mut short = ctx.fork(st, t);
        set_parser_error(ctx, &mut short, ERR_PACKET_TOO_SHORT);
        truncate_parser_continuations(&mut short);
        short.continuations.push(Cmd::Hook("parser_reject".to_string()));
        ctx.forks.push(short);
    }
    let _ = st.packet.read(ctx.pool, bits);
    Ok(())
}

fn exec_emit(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    header: &Path,
    ty: &str,
) -> ExecResult<()> {
    let hp = st.resolve(header);
    let validity = match st.read_global(hp.valid().as_str()) {
        Some(s) => s.clone(),
        None => ctx.constant(1, 0),
    };
    match ctx.pool.as_const(validity.term) {
        Some(v) if v.is_true() => emit_fields(ctx, st, target, &hp, ty),
        Some(_) => Ok(()), // invalid: emit nothing
        None => {
            // Symbolic validity: fork.
            let mut valid_fork = ctx.fork(st, validity.term);
            emit_fields(ctx, &mut valid_fork, target, &hp, ty)?;
            let nv = ctx.pool.not(validity.term);
            let invalid_fork = ctx.fork(st, nv);
            ctx.forks.push(valid_fork);
            ctx.forks.push(invalid_fork);
            st.finish(FinishReason::Infeasible);
            Ok(())
        }
    }
}

fn emit_fields(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    hp: &Path,
    ty: &str,
) -> ExecResult<()> {
    let prog = ctx.prog;
    let fields: Vec<(String, Type)> = prog
        .env
        .fields_of(ty)
        .ok_or_else(|| Abort(format!("unknown header type '{ty}'")))?
        .iter()
        .map(|f| (f.name.clone(), f.ty.clone()))
        .collect();
    let mut acc: Option<Sym> = None;
    for (fname, fty) in &fields {
        let fp = hp.child(fname);
        let part = match fty {
            Type::Varbit(max) => {
                let data = read_slot(ctx, st, target, &fp, *max);
                let lenp = fp.child("$len");
                let len = st
                    .read_global(lenp.as_str())
                    .and_then(|s| ctx.pool.as_const(s.term))
                    .and_then(|c| c.to_u64())
                    .unwrap_or(0) as u32;
                if len == 0 {
                    continue;
                }
                // The varbit data is left-aligned... stored right-aligned by
                // extract's cast; emit the low `len` bits.
                let t = ctx.pool.extract((len - 1) as usize, 0, data.term);
                Sym::with_taint(t, data.taint.extract((len - 1) as usize, 0))
            }
            t => {
                let w = t.width(&prog.env).unwrap_or(0);
                if w == 0 {
                    continue;
                }
                read_slot(ctx, st, target, &fp, w)
            }
        };
        acc = Some(match acc {
            None => part,
            Some(a) => {
                let t = ctx.pool.concat(a.term, part.term);
                Sym::with_taint(t, a.taint.concat(&part.taint))
            }
        });
    }
    if let Some(v) = acc {
        st.packet.emit(v);
        st.log(format!("emit {hp}"));
    }
    Ok(())
}

fn exec_stack_op(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    stack: &Path,
    push: bool,
    count: u32,
) -> ExecResult<()> {
    let sp = st.resolve(stack);
    // Discover the stack size by probing validity slots.
    let mut size: u32 = 0;
    while st.read_global(sp.indexed(size).valid().as_str()).is_some() && size < 64 {
        size += 1;
    }
    if size == 0 {
        return Ok(());
    }
    let snapshot: Vec<Vec<(String, Sym)>> = (0..size)
        .map(|i| st.snapshot_prefix(sp.indexed(i).as_str()))
        .collect();
    for i in 0..size {
        let from = if push {
            i.checked_sub(count)
        } else {
            i.checked_add(count).filter(|v| *v < size)
        };
        let dst_prefix = sp.indexed(i).as_str().to_string();
        st.clear_prefix(&dst_prefix);
        match from {
            Some(src) => {
                let src_prefix = sp.indexed(src).as_str().to_string();
                for (k, v) in &snapshot[src as usize] {
                    let suffix = &k[src_prefix.len()..];
                    st.write_global(&format!("{dst_prefix}{suffix}"), v.clone());
                }
            }
            None => {
                let zero = ctx.constant(1, 0);
                st.write_global(sp.indexed(i).valid().as_str(), zero);
            }
        }
    }
    // Adjust $next (saturating at the bounds).
    let nextp = sp.next_index();
    let cur = st
        .read_global(nextp.as_str())
        .and_then(|s| ctx.pool.as_const(s.term))
        .and_then(|c| c.to_u64())
        .unwrap_or(0);
    let newv = if push {
        (cur + count as u64).min(size as u64)
    } else {
        cur.saturating_sub(count as u64)
    };
    let nv = ctx.constant(32, newv as u128);
    st.write_global(nextp.as_str(), nv);
    Ok(())
}

fn exec_extern(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    target: &dyn Target,
    name: &str,
    instance: Option<&str>,
    args: &[IrArg],
) -> ExecResult<()> {
    // Pre-evaluate arguments.
    let mut ext_args = Vec::with_capacity(args.len());
    for a in args {
        ext_args.push(match a {
            IrArg::In(e) => ExtArg::Val(eval_expr(ctx, st, target, e)?),
            IrArg::InList(es) => {
                let vs: Vec<Sym> = es
                    .iter()
                    .map(|e| eval_expr(ctx, st, target, e))
                    .collect::<ExecResult<_>>()?;
                ExtArg::List(vs)
            }
            IrArg::Out(p, w) => ExtArg::Out(p.clone(), *w),
            IrArg::Ref(p) => ExtArg::Ref(p.clone()),
        });
    }
    // Built-in: parser error signaling.
    if name == "$parser_error" {
        if let Some(ExtArg::Val(code)) = ext_args.first() {
            let c = ctx.pool.as_const(code.term).and_then(|v| v.to_u128()).unwrap_or(0);
            set_parser_error(ctx, st, c);
        }
        truncate_parser_continuations(st);
        st.continuations.push(Cmd::Hook("parser_reject".to_string()));
        return Ok(());
    }
    match target.extern_call(name, instance, &ext_args, ctx, st) {
        ExternOutcome::Handled => Ok(()),
        ExternOutcome::Unknown => Err(Abort(format!(
            "extern '{name}' not implemented by target '{}'",
            target.name()
        ))),
    }
}
