//! The packet-sizing model (§5.2.1, Fig. 6).
//!
//! Three buffers track packet content along a path:
//!
//! * **I — the required input packet**: symbolic chunks allocated on demand.
//!   Whenever the live packet runs out of content, a fresh chunk variable is
//!   appended to both I and L, recording that a larger input is required to
//!   traverse this path. The final test's input packet is the concatenation
//!   of I under the model, plus any target-prepended content excluded.
//! * **L — the live packet**: what the current block can still consume.
//!   Targets may prepend parseable metadata (Tofino's intrinsic bytes, FCS)
//!   to L without growing I.
//! * **E — the emit buffer**: headers appended by `emit` calls, in order.
//!   At a *trigger point* (deparser exit), E is prepended to L and cleared.
//!
//! Content is tracked as `(Sym, provenance)` segments so the test emitter can
//! distinguish bits that came from the test's input packet from bits the
//! target synthesized.

use crate::sym::Sym;
use p4t_smt::{BitVec, TermPool};

/// Where a live-packet segment originally came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Part of the test's input packet (member of I).
    Input,
    /// Prepended by the target (intrinsic metadata, FCS): not in I.
    Target,
    /// Produced by the program (emitted headers).
    Emitted,
}

/// One contiguous segment of packet content.
#[derive(Clone, Debug)]
pub struct Segment {
    pub sym: Sym,
    pub provenance: Provenance,
}

/// The packet model carried by each execution state.
#[derive(Clone, Debug, Default)]
pub struct PacketModel {
    /// I: symbolic input chunks, in order. Only grows.
    pub input: Vec<Sym>,
    /// L: the live packet, front = next bits to parse.
    pub live: Vec<Segment>,
    /// E: the emit buffer.
    pub emit: Vec<Sym>,
    /// Bits of input consumed so far across all parsers (for diagnostics).
    pub consumed_bits: u64,
    /// Counter for naming fresh input chunks.
    chunk_counter: u32,
    /// How many live segments are target content appended at the end
    /// (frame check sequences) rather than prepended metadata.
    trailing_appended: usize,
}

impl PacketModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total width of the live packet in bits.
    pub fn live_bits(&self) -> u64 {
        self.live.iter().map(|s| s.sym.width() as u64).sum()
    }

    /// Total width of the required input packet in bits.
    pub fn input_bits(&self) -> u64 {
        self.input.iter().map(|s| s.width() as u64).sum()
    }

    /// Total width of the emit buffer in bits.
    pub fn emit_bits(&self) -> u64 {
        self.emit.iter().map(|s| s.width() as u64).sum()
    }

    /// Prepend target-provided content to the live packet (Tofino metadata,
    /// frame check sequences). Does not grow I.
    pub fn prepend_target(&mut self, sym: Sym) {
        self.live.insert(0, Segment { sym, provenance: Provenance::Target });
    }

    /// Append target-provided content to the end of the live packet. It
    /// stays at the end even when the input packet later grows.
    pub fn append_target(&mut self, sym: Sym) {
        self.live.push(Segment { sym, provenance: Provenance::Target });
        self.trailing_appended += 1;
    }

    /// Allocate a fresh input chunk of `bits`, appending it to I and to L.
    /// In L the chunk is inserted *before* any trailing target-appended
    /// content (e.g. Tofino's frame check sequence stays at the very end of
    /// the wire no matter how much the input packet grows).
    pub fn grow_input(&mut self, pool: &TermPool, bits: u32) -> Sym {
        let name = format!("pkt_in_{}", self.chunk_counter);
        self.chunk_counter += 1;
        let term = pool.fresh_var(name, bits as usize);
        let sym = Sym::clean(term, bits);
        self.input.push(sym.clone());
        let trailing_target = self
            .live
            .iter()
            .rev()
            .take_while(|s| s.provenance == Provenance::Target)
            .count();
        // When L is entirely target content (just the prepended metadata),
        // the input still belongs after it — cap the rewind so prepended
        // metadata stays in front.
        let insert_at = self.live.len() - trailing_target.min(self.trailing_appended);
        self.live.insert(insert_at, Segment { sym: sym.clone(), provenance: Provenance::Input });
        sym
    }

    /// Consume exactly `bits` from the front of the live packet, growing the
    /// input if the live packet is shorter (the Fig. 6 "allocate a new packet
    /// variable" rule). Returns the consumed content as one value.
    pub fn read(&mut self, pool: &TermPool, bits: u32) -> Sym {
        let shortfall = (bits as u64).saturating_sub(self.live_bits());
        if shortfall > 0 {
            self.grow_input(pool, shortfall as u32);
        }
        self.consume(pool, bits).expect("read after grow cannot fail")
    }

    /// Consume exactly `bits` without growing; `None` if not enough content.
    pub fn consume(&mut self, pool: &TermPool, bits: u32) -> Option<Sym> {
        if (self.live_bits()) < bits as u64 {
            return None;
        }
        if bits == 0 {
            let t = pool.constant(BitVec::empty());
            return Some(Sym::clean(t, 0));
        }
        let mut remaining = bits;
        let mut acc: Option<Sym> = None;
        while remaining > 0 {
            let seg = self.live.remove(0);
            let w = seg.sym.width();
            let (taken, leftover) = if w <= remaining {
                (seg.sym, None)
            } else {
                // Packet content is MSB-first: the first bits on the wire are
                // the most significant bits of the segment term.
                let hi_t = pool.extract((w - 1) as usize, (w - remaining) as usize, seg.sym.term);
                let hi = Sym::with_taint(
                    hi_t,
                    seg.sym.taint.extract((w - 1) as usize, (w - remaining) as usize),
                );
                let lo_t = pool.extract((w - remaining - 1) as usize, 0, seg.sym.term);
                let lo = Sym::with_taint(
                    lo_t,
                    seg.sym.taint.extract((w - remaining - 1) as usize, 0),
                );
                (hi, Some(Segment { sym: lo, provenance: seg.provenance }))
            };
            remaining -= taken.width();
            acc = Some(match acc {
                None => taken,
                Some(a) => {
                    let t = pool.concat(a.term, taken.term);
                    Sym::with_taint(t, a.taint.concat(&taken.taint))
                }
            });
            if let Some(rest) = leftover {
                self.live.insert(0, rest);
            }
        }
        self.consumed_bits += bits as u64;
        acc
    }

    /// Peek `bits` from the front without consuming, growing I if needed
    /// (`lookahead` semantics).
    pub fn peek(&mut self, pool: &TermPool, bits: u32) -> Sym {
        let shortfall = (bits as u64).saturating_sub(self.live_bits());
        if shortfall > 0 {
            self.grow_input(pool, shortfall as u32);
        }
        // Read then restore.
        let saved = self.live.clone();
        let consumed = self.consumed_bits;
        let out = self.consume(pool, bits).expect("peek after grow cannot fail");
        self.live = saved;
        self.consumed_bits = consumed;
        out
    }

    /// Append a value to the emit buffer.
    pub fn emit(&mut self, sym: Sym) {
        self.emit.push(sym);
    }

    /// Trigger point: prepend E to L (preserving emit order) and clear E.
    pub fn flush_emit(&mut self) {
        for sym in self.emit.drain(..).rev() {
            self.live.insert(0, Segment { sym, provenance: Provenance::Emitted });
        }
    }

    /// Reset the live packet to the original input (resubmit semantics:
    /// the unmodified packet re-enters the ingress parser). Target content
    /// and the emit buffer are cleared; I is unchanged.
    pub fn resubmit_original(&mut self) {
        self.live = self
            .input
            .iter()
            .map(|sym| Segment { sym: sym.clone(), provenance: Provenance::Input })
            .collect();
        self.emit.clear();
        self.trailing_appended = 0;
    }

    /// Drop all remaining live content (e.g. eBPF has no deparser; the
    /// verbatim packet is the output instead).
    pub fn clear_live(&mut self) {
        self.live.clear();
    }

    /// The live packet as a single value (the expected output packet).
    /// `None` when the live packet is empty.
    pub fn live_value(&self, pool: &TermPool) -> Option<Sym> {
        let mut acc: Option<Sym> = None;
        for seg in &self.live {
            acc = Some(match acc {
                None => seg.sym.clone(),
                Some(a) => {
                    let t = pool.concat(a.term, seg.sym.term);
                    Sym::with_taint(t, a.taint.concat(&seg.sym.taint))
                }
            });
        }
        acc
    }

    /// The required input packet as a single value. `None` when no input
    /// content was required on this path.
    pub fn input_value(&self, pool: &TermPool) -> Option<Sym> {
        let mut acc: Option<Sym> = None;
        for sym in &self.input {
            acc = Some(match acc {
                None => sym.clone(),
                Some(a) => {
                    let t = pool.concat(a.term, sym.term);
                    Sym::with_taint(t, a.taint.concat(&sym.taint))
                }
            });
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_grows_input_on_demand() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        assert_eq!(pm.input_bits(), 0);
        let v = pm.read(&pool, 112);
        assert_eq!(v.width(), 112);
        assert_eq!(pm.input_bits(), 112);
        assert_eq!(pm.live_bits(), 0);
    }

    #[test]
    fn partial_segment_consumption() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        pm.grow_input(&pool, 32);
        let first = pm.consume(&pool, 8).unwrap();
        assert_eq!(first.width(), 8);
        assert_eq!(pm.live_bits(), 24);
        let rest = pm.consume(&pool, 24).unwrap();
        assert_eq!(rest.width(), 24);
        assert_eq!(pm.input_bits(), 32);
    }

    #[test]
    fn consume_fails_without_content() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        pm.grow_input(&pool, 8);
        assert!(pm.consume(&pool, 16).is_none());
        // The failed consume did not disturb the buffer.
        assert_eq!(pm.live_bits(), 8);
    }

    #[test]
    fn msb_first_wire_order() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        // Prepend a known 16-bit constant as target content.
        let c = pool.constant(BitVec::from_u128(16, 0xABCD));
        pm.prepend_target(Sym::clean(c, 16));
        let first_byte = pm.consume(&pool, 8).unwrap();
        assert_eq!(pool.as_const(first_byte.term).unwrap().to_u64(), Some(0xAB));
        let second_byte = pm.consume(&pool, 8).unwrap();
        assert_eq!(pool.as_const(second_byte.term).unwrap().to_u64(), Some(0xCD));
    }

    #[test]
    fn emit_then_flush_prepends_in_order() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        let a = pool.constant(BitVec::from_u128(8, 0x11));
        let b = pool.constant(BitVec::from_u128(8, 0x22));
        let rest = pool.constant(BitVec::from_u128(8, 0x33));
        pm.append_target(Sym::clean(rest, 8));
        pm.emit(Sym::clean(a, 8));
        pm.emit(Sym::clean(b, 8));
        assert_eq!(pm.emit_bits(), 16);
        pm.flush_emit();
        assert_eq!(pm.emit_bits(), 0);
        let out = pm.live_value(&pool).unwrap();
        assert_eq!(pool.as_const(out.term).unwrap().to_u64(), Some(0x112233));
    }

    #[test]
    fn peek_does_not_consume() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        let v1 = pm.peek(&pool, 16);
        assert_eq!(pm.live_bits(), 16); // grown but not consumed
        let v2 = pm.consume(&pool, 16).unwrap();
        assert_eq!(v1.term, v2.term);
    }

    #[test]
    fn target_content_not_in_input() {
        let pool = TermPool::new();
        let mut pm = PacketModel::new();
        let meta = pool.fresh_var("tofino_meta", 64);
        pm.prepend_target(Sym::tainted(meta, 64));
        pm.read(&pool, 64 + 112);
        // 64 bits came from the target; only 112 had to come from the input.
        assert_eq!(pm.input_bits(), 112);
    }
}
