//! The abstract test specification (§4 step 3).
//!
//! A [`TestSpec`] is the target- and framework-independent description of
//! one test: input packet and port, control-plane configuration, register
//! initialization/expectations, and the expected output packet(s) with
//! don't-care masks over tainted bits. Test back ends (STF, PTF, Protobuf)
//! concretize this structure into their own formats.

use serde::{Deserialize, Serialize};

/// Bytes plus a per-bit care mask of equal length (mask bit 1 = verify this
/// bit; 0 = don't care, i.e. tainted in the model).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskedBytes {
    pub data: Vec<u8>,
    /// Same length as `data`; `0xFF` everywhere when fully deterministic.
    pub mask: Vec<u8>,
}

impl MaskedBytes {
    pub fn exact(data: Vec<u8>) -> Self {
        let mask = vec![0xFF; data.len()];
        MaskedBytes { data, mask }
    }

    pub fn is_fully_exact(&self) -> bool {
        self.mask.iter().all(|&m| m == 0xFF)
    }

    /// Whether `actual` matches under the mask.
    pub fn matches(&self, actual: &[u8]) -> bool {
        if actual.len() != self.data.len() {
            return false;
        }
        self.data
            .iter()
            .zip(&self.mask)
            .zip(actual)
            .all(|((d, m), a)| (d & m) == (a & m))
    }

    /// Hex rendering of the data (don't-care nibbles as `*`).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(self.data.len() * 2);
        for (d, m) in self.data.iter().zip(&self.mask) {
            for shift in [4u8, 0u8] {
                let nib_mask = (m >> shift) & 0xF;
                if nib_mask == 0 {
                    s.push('*');
                } else {
                    s.push(char::from_digit(((d >> shift) & 0xF) as u32, 16).unwrap());
                }
            }
        }
        s
    }
}

/// A key match in a control-plane entry, fully concretized.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyMatch {
    Exact { name: String, value: Vec<u8> },
    Ternary { name: String, value: Vec<u8>, mask: Vec<u8> },
    Lpm { name: String, value: Vec<u8>, prefix_len: u32 },
    Range { name: String, lo: Vec<u8>, hi: Vec<u8> },
    Optional { name: String, value: Option<Vec<u8>> },
}

impl KeyMatch {
    pub fn name(&self) -> &str {
        match self {
            KeyMatch::Exact { name, .. }
            | KeyMatch::Ternary { name, .. }
            | KeyMatch::Lpm { name, .. }
            | KeyMatch::Range { name, .. }
            | KeyMatch::Optional { name, .. } => name,
        }
    }
}

/// One table entry to install before injecting the packet.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntrySpec {
    pub table: String,
    pub keys: Vec<KeyMatch>,
    pub action: String,
    /// (parameter name, value bytes).
    pub action_args: Vec<(String, Vec<u8>)>,
    pub priority: u32,
}

/// Register state to initialize before, or validate after, the test.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterSpec {
    pub instance: String,
    pub index: u64,
    pub value: Vec<u8>,
}

/// An expected output packet on a port.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputPacketSpec {
    pub port: u32,
    pub packet: MaskedBytes,
}

/// A complete, concrete test.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestSpec {
    /// Sequential test id within the run.
    pub id: u64,
    /// The program and target this test was generated for.
    pub program: String,
    pub target: String,
    /// Seed used for value selection (reproducibility).
    pub seed: u64,
    /// Input packet bytes and ingress port.
    pub input_port: u32,
    pub input_packet: Vec<u8>,
    /// Control-plane configuration.
    pub entries: Vec<TableEntrySpec>,
    /// Registers to initialize before injection.
    pub register_init: Vec<RegisterSpec>,
    /// Registers to validate after the run.
    pub register_expect: Vec<RegisterSpec>,
    /// Expected outputs; empty = the packet must be dropped.
    pub outputs: Vec<OutputPacketSpec>,
    /// Statement ids covered by this test's path.
    pub covered_statements: Vec<u32>,
    /// Human-readable trace of the path (for debugging failing tests).
    pub trace: Vec<String>,
}

impl TestSpec {
    /// True when the test expects the packet to be dropped.
    pub fn expects_drop(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_match_respects_dont_care() {
        let mb = MaskedBytes { data: vec![0xAB, 0x00], mask: vec![0xFF, 0x00] };
        assert!(mb.matches(&[0xAB, 0x42]));
        assert!(mb.matches(&[0xAB, 0xFF]));
        assert!(!mb.matches(&[0xAC, 0x42]));
        assert!(!mb.matches(&[0xAB])); // length mismatch
    }

    #[test]
    fn hex_rendering_with_wildcards() {
        let mb = MaskedBytes { data: vec![0xAB, 0xCD], mask: vec![0xFF, 0x0F] };
        assert_eq!(mb.to_hex(), "ab*d");
    }

    #[test]
    fn serde_round_trip() {
        let spec = TestSpec {
            id: 1,
            program: "p".into(),
            target: "v1model".into(),
            seed: 42,
            input_port: 0,
            input_packet: vec![1, 2, 3],
            entries: vec![TableEntrySpec {
                table: "C.t".into(),
                keys: vec![KeyMatch::Exact { name: "k".into(), value: vec![0xBE, 0xEF] }],
                action: "C.a".into(),
                action_args: vec![("port".into(), vec![2])],
                priority: 0,
            }],
            register_init: vec![],
            register_expect: vec![],
            outputs: vec![OutputPacketSpec {
                port: 2,
                packet: MaskedBytes::exact(vec![1, 2, 3]),
            }],
            covered_statements: vec![0, 1],
            trace: vec!["x".into()],
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: TestSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
