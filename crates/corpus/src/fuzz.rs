//! Deterministic corpus fuzzing for the frontend pipeline.
//!
//! The harness mutates known-good seed programs (byte- and token-level
//! mutators over a seeded PRNG), feeds each mutant through the full
//! frontend — preprocessor, lexer, parser, typechecker, IR lowering — and
//! triages the outcome. The frontend's contract is *totality*: any byte
//! sequence must produce either a program or diagnostics, never a panic.
//! A panic is a crash; crashes are deduplicated by panic location,
//! minimized by greedy line removal, and persisted as a regression corpus
//! that CI replays on every change.
//!
//! Everything is deterministic: the same `--seed` over the same seed set
//! visits the same mutants in the same order, so a crash report is
//! reproducible from its `(seed, iteration)` coordinates alone.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// SplitMix64: tiny, seedable, and stable across platforms — exactly what a
/// reproducible fuzzer needs (the statistical quality bar here is low).
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    pub fn chance(&mut self, one_in: usize) -> bool {
        self.below(one_in) == 0
    }
}

// ---------------------------------------------------------------------------
// Panic capture

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<PanicSig>> = const { RefCell::new(None) };
}

static INSTALL_HOOK: Once = Once::new();

/// Where and why a panic fired. `location` is the dedup key: two mutants
/// that die on the same source line are the same bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicSig {
    /// `file:line:col` of the panic site.
    pub location: String,
    /// The panic payload, when it was a string.
    pub message: String,
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn install_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(Cell::get) {
                let location = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                    .unwrap_or_else(|| "<unknown>".to_string());
                let message = payload_string(info.payload());
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(PanicSig { location, message }));
            } else {
                prev(info);
            }
        }));
    });
}

/// Run `f`, converting a panic into a [`PanicSig`] instead of unwinding
/// further. The default panic printout is suppressed only while `f` runs on
/// this thread; panics elsewhere still reach the previous hook.
pub fn catch_panics<T>(f: impl FnOnce() -> T) -> Result<T, PanicSig> {
    install_hook();
    CAPTURING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|payload| {
        LAST_PANIC.with(|p| p.borrow_mut().take()).unwrap_or(PanicSig {
            location: "<unknown>".to_string(),
            message: payload_string(payload.as_ref()),
        })
    })
}

// ---------------------------------------------------------------------------
// Outcome triage

/// What one input did to the pipeline.
#[derive(Debug)]
pub enum Outcome {
    /// Compiled; carries the warning count.
    Clean { warnings: usize },
    /// Rejected with diagnostics — the *expected* failure mode.
    Rejected { codes: Vec<&'static str> },
    /// The frontend panicked: a bug in the frontend, not in the input.
    Panicked(PanicSig),
}

/// Feed one complete source (prelude already prepended) through the full
/// pipeline and classify the result.
pub fn check_input(full_source: &str) -> Outcome {
    match catch_panics(|| p4t_ir::compile_full(full_source)) {
        Ok(Ok((_, warnings))) => Outcome::Clean { warnings: warnings.len() },
        Ok(Err(diags)) => Outcome::Rejected { codes: diags.iter().map(|d| d.code).collect() },
        Err(sig) => Outcome::Panicked(sig),
    }
}

/// Resolve a seed's architecture banner (`// arch: tna` on the first line)
/// to its prelude. Unknown or absent banners default to v1model.
pub fn arch_of(source: &str) -> &'static str {
    let first = source.lines().next().unwrap_or("");
    match first.trim().strip_prefix("// arch:").map(str::trim) {
        Some("tna") => "tna",
        Some("t2na") => "t2na",
        Some("ebpf_model") => "ebpf_model",
        _ => "v1model",
    }
}

/// The prelude for an architecture name from [`arch_of`].
pub fn prelude_for(arch: &str) -> String {
    use p4testgen_core::Target;
    match arch {
        "tna" => p4t_targets::Tofino::tna().prelude().to_string(),
        "t2na" => p4t_targets::Tofino::t2na().prelude().to_string(),
        "ebpf_model" => p4t_targets::EbpfModel::new().prelude().to_string(),
        _ => p4t_targets::V1Model::new().prelude().to_string(),
    }
}

// ---------------------------------------------------------------------------
// Mutators

/// Bytes worth inserting: P4's structural characters plus a quote and the
/// comment openers, the characters most likely to unbalance the parser.
const INTERESTING_BYTES: &[u8] = b"{}();<>[]=,.:\"/*#@-x0123456789_w";

/// Boundary numerals that historically shake out width/overflow handling.
const INTERESTING_NUMBERS: &[&str] =
    &["0", "1", "255", "256", "65535", "4294967295", "340282366920938463463374607431768211455", "0w1", "8w256", "0x", "2147483648"];

/// Apply 1–4 stacked random mutations to `source`. Mutants may be arbitrary
/// bytes; the result is lossily re-encoded as UTF-8 since the frontend takes
/// `&str`.
pub fn mutate(source: &str, rng: &mut Rng) -> String {
    let mut bytes = source.as_bytes().to_vec();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        mutate_once(&mut bytes, rng);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn mutate_once(bytes: &mut Vec<u8>, rng: &mut Rng) {
    if bytes.is_empty() {
        bytes.push(INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())]);
        return;
    }
    match rng.below(10) {
        // Byte-level mutations.
        0 => {
            // Flip one bit.
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        1 => {
            // Overwrite with a structural byte.
            let i = rng.below(bytes.len());
            bytes[i] = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())];
        }
        2 => {
            // Delete a short span.
            let start = rng.below(bytes.len());
            let len = (1 + rng.below(16)).min(bytes.len() - start);
            bytes.drain(start..start + len);
        }
        3 => {
            // Duplicate a short span in place.
            let start = rng.below(bytes.len());
            let len = (1 + rng.below(16)).min(bytes.len() - start);
            let span = bytes[start..start + len].to_vec();
            bytes.splice(start..start, span);
        }
        4 => {
            // Insert structural bytes.
            let i = rng.below(bytes.len() + 1);
            let n = 1 + rng.below(4);
            for k in 0..n {
                let b = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())];
                bytes.insert((i + k).min(bytes.len()), b);
            }
        }
        5 => {
            // Truncate: end-of-input is where recovery bugs live.
            let at = rng.below(bytes.len());
            bytes.truncate(at);
        }
        6 => {
            // Splice a chunk from one place to another.
            let start = rng.below(bytes.len());
            let len = (1 + rng.below(32)).min(bytes.len() - start);
            let chunk = bytes[start..start + len].to_vec();
            let dest = rng.below(bytes.len() + 1);
            bytes.splice(dest..dest, chunk);
        }
        // Token/line-level mutations (re-encode, operate on text, encode back).
        _ => {
            let text = String::from_utf8_lossy(bytes).into_owned();
            let mutated = mutate_text(&text, rng);
            *bytes = mutated.into_bytes();
        }
    }
}

/// Split into identifier/number words and single punctuation tokens,
/// preserving nothing about the original spacing (tokens re-join with a
/// single space, newlines survive as tokens).
fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            word.push(ch);
        } else {
            if !word.is_empty() {
                tokens.push(std::mem::take(&mut word));
            }
            if ch == '\n' {
                tokens.push("\n".to_string());
            } else if !ch.is_whitespace() {
                tokens.push(ch.to_string());
            }
        }
    }
    if !word.is_empty() {
        tokens.push(word);
    }
    tokens
}

fn detokenize(tokens: &[String]) -> String {
    let mut out = String::new();
    for t in tokens {
        if t == "\n" {
            out.push('\n');
        } else {
            if !out.is_empty() && !out.ends_with('\n') {
                out.push(' ');
            }
            out.push_str(t);
        }
    }
    out
}

fn mutate_text(text: &str, rng: &mut Rng) -> String {
    match rng.below(6) {
        0 | 1 => {
            // Line-level: delete or duplicate one line.
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_string();
            }
            let i = rng.below(lines.len());
            if rng.chance(2) {
                lines.remove(i);
            } else {
                lines.insert(i, lines[i]);
            }
            lines.join("\n")
        }
        2 => {
            // Swap two tokens.
            let mut toks = tokenize(text);
            if toks.len() >= 2 {
                let a = rng.below(toks.len());
                let b = rng.below(toks.len());
                toks.swap(a, b);
            }
            detokenize(&toks)
        }
        3 => {
            // Delete or duplicate a token.
            let mut toks = tokenize(text);
            if !toks.is_empty() {
                let i = rng.below(toks.len());
                if rng.chance(2) {
                    toks.remove(i);
                } else {
                    let t = toks[i].clone();
                    toks.insert(i, t);
                }
            }
            detokenize(&toks)
        }
        4 => {
            // Replace an identifier with another identifier from the file —
            // keeps the program lexically valid while scrambling meaning,
            // which is what drives the typechecker into odd corners.
            let toks = tokenize(text);
            let idents: Vec<usize> = toks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
                .map(|(i, _)| i)
                .collect();
            if idents.len() >= 2 {
                let mut toks = toks;
                let dst = idents[rng.below(idents.len())];
                let src = idents[rng.below(idents.len())];
                toks[dst] = toks[src].clone();
                return detokenize(&toks);
            }
            text.to_string()
        }
        _ => {
            // Replace a number with a boundary value.
            let mut toks = tokenize(text);
            let nums: Vec<usize> = toks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.chars().next().is_some_and(|c| c.is_ascii_digit()))
                .map(|(i, _)| i)
                .collect();
            if !nums.is_empty() {
                let i = nums[rng.below(nums.len())];
                toks[i] = INTERESTING_NUMBERS[rng.below(INTERESTING_NUMBERS.len())].to_string();
            }
            detokenize(&toks)
        }
    }
}

// ---------------------------------------------------------------------------
// Minimization

/// Greedy line-based minimization: repeatedly drop chunks of lines (largest
/// first) while `still_interesting` holds. O(passes × lines × check), plenty
/// for crash inputs that start at a few hundred lines.
pub fn minimize(input: &str, still_interesting: impl Fn(&str) -> bool) -> String {
    let mut lines: Vec<String> = input.lines().map(str::to_string).collect();
    let mut chunk = (lines.len() / 2).max(1);
    loop {
        let mut i = 0;
        let mut shrunk = false;
        while i < lines.len() {
            let end = (i + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(i..end);
            if still_interesting(&candidate.join("\n")) {
                lines = candidate;
                shrunk = true;
                // Do not advance: the next chunk slid into position i.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !shrunk {
                break;
            }
        } else {
            chunk /= 2;
        }
    }
    lines.join("\n")
}

// ---------------------------------------------------------------------------
// The fuzzing loop

/// A deduplicated crash: one per unique panic location.
#[derive(Debug)]
pub struct Crash {
    pub signature: PanicSig,
    /// Seed program the mutant descended from.
    pub seed_name: String,
    pub arch: &'static str,
    /// Iteration at which it was first found (reproducible coordinates).
    pub iteration: u64,
    /// Minimized user-source input (no prelude).
    pub input: String,
}

/// Aggregate results of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub iterations: u64,
    pub clean: u64,
    pub rejected: u64,
    pub panics: u64,
    /// Unique crashes, keyed by panic location.
    pub crashes: Vec<Crash>,
    /// Distinct diagnostic codes observed — a coarse coverage signal for the
    /// diagnostic surface.
    pub codes_seen: BTreeSet<&'static str>,
}

/// Run `iterations` mutants drawn round-robin from `seeds` and triage every
/// outcome. `seeds` entries are `(name, user_source, arch)`.
pub fn run_fuzz(seeds: &[(String, String, &'static str)], iterations: u64, seed: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    if seeds.is_empty() {
        return report;
    }
    let mut rng = Rng::new(seed);
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    for iter in 0..iterations {
        let (name, source, arch) = &seeds[(iter as usize) % seeds.len()];
        let mutant = mutate(source, &mut rng);
        let prelude = prelude_for(arch);
        let full = format!("{prelude}\n{mutant}");
        report.iterations += 1;
        match check_input(&full) {
            Outcome::Clean { .. } => report.clean += 1,
            Outcome::Rejected { codes } => {
                report.rejected += 1;
                report.codes_seen.extend(codes);
            }
            Outcome::Panicked(sig) => {
                report.panics += 1;
                if seen.contains_key(&sig.location) {
                    continue;
                }
                seen.insert(sig.location.clone(), ());
                let location = sig.location.clone();
                let minimized = minimize(&mutant, |candidate| {
                    let full = format!("{prelude}\n{candidate}");
                    matches!(check_input(&full),
                        Outcome::Panicked(s) if s.location == location)
                });
                report.crashes.push(Crash {
                    signature: sig,
                    seed_name: name.clone(),
                    arch,
                    iteration: iter,
                    input: minimized,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mutation_stream_is_deterministic() {
        let seed = "control C() { apply { } }";
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..50 {
            assert_eq!(mutate(seed, &mut a), mutate(seed, &mut b));
        }
    }

    #[test]
    fn catch_panics_reports_location_and_message() {
        let err = catch_panics(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(err.message, "boom 42");
        assert!(err.location.contains("fuzz.rs"), "location: {}", err.location);
        // And a clean closure passes through.
        assert_eq!(catch_panics(|| 5).unwrap(), 5);
    }

    #[test]
    fn check_input_triages_clean_and_rejected() {
        let full = format!("{}\n{}", prelude_for("v1model"), crate::FIG1A);
        assert!(matches!(check_input(&full), Outcome::Clean { .. }));
        let bad = format!("{}\ncontrol C( {{", prelude_for("v1model"));
        match check_input(&bad) {
            Outcome::Rejected { codes } => assert!(!codes.is_empty()),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn minimize_drops_irrelevant_lines() {
        let input = "aaa\nbbb\nNEEDLE\nccc\nddd\neee";
        let out = minimize(input, |s| s.contains("NEEDLE"));
        assert_eq!(out, "NEEDLE");
    }

    #[test]
    fn minimize_keeps_joint_requirements() {
        let input = "one\ntwo\nthree\nfour";
        let out = minimize(input, |s| s.contains("two") && s.contains("four"));
        assert!(out.contains("two") && out.contains("four"), "{out}");
        assert!(!out.contains("one") && !out.contains("three"), "{out}");
    }

    #[test]
    fn arch_banner_resolves() {
        assert_eq!(arch_of("// arch: tna\nrest"), "tna");
        assert_eq!(arch_of("header h { }"), "v1model");
    }

    #[test]
    fn short_fuzz_run_is_panic_free_and_deterministic() {
        let seeds = vec![("fig1a".to_string(), crate::FIG1A.to_string(), "v1model")];
        let a = run_fuzz(&seeds, 50, 3);
        let b = run_fuzz(&seeds, 50, 3);
        assert_eq!(a.iterations, 50);
        assert_eq!(a.panics, 0, "crashes: {:?}", a.crashes);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.codes_seen, b.codes_seen);
    }
}
