//! p4fuzz: deterministic corpus fuzzing of the frontend pipeline.
//!
//! ```text
//! p4fuzz [options]
//!
//! options:
//!   --seed <N>        PRNG seed [1]
//!   --iters <N>       mutants to generate [2000]
//!   --seeds <DIR>     seed .p4 programs (default: built-in corpus; a
//!                     directory adds its *.p4 files to the built-ins)
//!   --corpus <DIR>    regression corpus to replay before fuzzing [tests/corpus]
//!   --out <DIR>       where to write new crashers [the corpus dir]
//!   --replay          only replay the regression corpus, no fuzzing
//!   -q, --quiet       suppress the per-phase progress lines
//! ```
//!
//! Exit codes: 0 = no panics anywhere, 1 = a crash was found (new or on
//! replay), 2 = usage or I/O error.
//!
//! Runs are reproducible: the same `--seed`, `--iters`, and seed set visit
//! the same mutants in the same order. Crashers are minimized and written
//! as `crash-<hash>.p4` with a banner recording the panic signature and
//! the architecture, so the regression corpus is self-describing.

use p4t_corpus::fuzz::{arch_of, check_input, prelude_for, run_fuzz, Outcome};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    seed: u64,
    iters: u64,
    seeds_dir: Option<PathBuf>,
    corpus_dir: PathBuf,
    out_dir: Option<PathBuf>,
    replay_only: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: p4fuzz [--seed N] [--iters N] [--seeds DIR] [--corpus DIR]\n\
         \t[--out DIR] [--replay] [-q|--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 1,
        iters: 2000,
        seeds_dir: None,
        corpus_dir: PathBuf::from("tests/corpus"),
        out_dir: None,
        replay_only: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--iters" => {
                opts.iters = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seeds" => opts.seeds_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--corpus" => opts.corpus_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--out" => opts.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--replay" => opts.replay_only = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// Load `*.p4` files from a directory as `(name, source, arch)` seeds,
/// sorted by name for determinism.
fn load_dir(dir: &Path) -> std::io::Result<Vec<(String, String, &'static str)>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "p4"))
        .collect();
    files.sort();
    let mut seeds = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let arch = arch_of(&source);
        seeds.push((name, source, arch));
    }
    Ok(seeds)
}

/// Replay every corpus entry; returns the number that panicked.
fn replay(dir: &Path, quiet: bool) -> std::io::Result<u64> {
    if !dir.exists() {
        return Ok(0);
    }
    let entries = load_dir(dir)?;
    let mut panics = 0;
    for (name, source, arch) in &entries {
        let full = format!("{}\n{source}", prelude_for(arch));
        match check_input(&full) {
            Outcome::Panicked(sig) => {
                eprintln!("REGRESSION {name}: panicked at {}: {}", sig.location, sig.message);
                panics += 1;
            }
            _ => {
                if !quiet {
                    eprintln!("replay {name}: ok");
                }
            }
        }
    }
    if !quiet {
        eprintln!("replayed {} corpus entries, {panics} panic(s)", entries.len());
    }
    Ok(panics)
}

/// Stable filename hash (FNV-1a) so re-finding a crash overwrites its file
/// instead of accumulating duplicates.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() -> ExitCode {
    let opts = parse_args();

    // Phase 1: replay the regression corpus. A panic here means a previously
    // fixed crash came back.
    let replay_panics = match replay(&opts.corpus_dir, opts.quiet) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("p4fuzz: cannot replay {}: {e}", opts.corpus_dir.display());
            return ExitCode::from(2);
        }
    };
    if opts.replay_only {
        return if replay_panics > 0 { ExitCode::from(1) } else { ExitCode::SUCCESS };
    }

    // Phase 2: assemble seeds — the built-in corpus plus any --seeds dir.
    let mut seeds: Vec<(String, String, &'static str)> = p4t_corpus::all_programs()
        .into_iter()
        .map(|(name, source, arch)| (name.to_string(), source, arch))
        .collect();
    if let Some(dir) = &opts.seeds_dir {
        match load_dir(dir) {
            Ok(extra) => seeds.extend(extra),
            Err(e) => {
                eprintln!("p4fuzz: cannot read seeds {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if !opts.quiet {
        eprintln!("fuzzing {} iterations over {} seeds (seed={})", opts.iters, seeds.len(), opts.seed);
    }

    // Phase 3: fuzz.
    let report = run_fuzz(&seeds, opts.iters, opts.seed);
    if !opts.quiet {
        eprintln!(
            "{} iterations: {} clean, {} rejected, {} panic(s) ({} unique); {} diagnostic codes seen",
            report.iterations,
            report.clean,
            report.rejected,
            report.panics,
            report.crashes.len(),
            report.codes_seen.len()
        );
    }

    // Phase 4: persist minimized crashers into the corpus.
    let out_dir = opts.out_dir.as_ref().unwrap_or(&opts.corpus_dir);
    for crash in &report.crashes {
        if let Err(e) = std::fs::create_dir_all(out_dir) {
            eprintln!("p4fuzz: cannot create {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
        let path = out_dir.join(format!("crash-{:016x}.p4", fnv(&crash.signature.location)));
        let body = format!(
            "// arch: {}\n// p4fuzz: panicked at {} ({})\n// found: seed={} iteration={} from {}\n{}\n",
            crash.arch,
            crash.signature.location,
            crash.signature.message.replace('\n', " "),
            opts.seed,
            crash.iteration,
            crash.seed_name,
            crash.input
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("p4fuzz: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "CRASH at {} ({}), minimized to {} bytes -> {}",
            crash.signature.location,
            crash.signature.message,
            crash.input.len(),
            path.display()
        );
    }

    if replay_panics > 0 || !report.crashes.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
