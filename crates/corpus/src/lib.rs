//! # p4t-corpus — the evaluation program corpus
//!
//! The paper evaluates on proprietary or external programs: the P4C test
//! suite, Intel's P4 Studio programs, `middleblock.p4` (SONiC/PINS),
//! `up4.p4` (ONF's 5G UPF), and `switch.p4`. This crate provides open
//! analogues written in the supported P4-16 subset:
//!
//! * [`MIDDLEBLOCK_SIM`] — a data-center middleblock switch: L2/L3
//!   forwarding, a ternary ACL with P4-constraints (`@entry_restriction`),
//!   mirroring, and checksum updates (stands in for `middleblock.p4`).
//! * [`UP4_SIM`] — a 5G UPF-style pipeline with GTP-U decap, PDR/FAR
//!   tables, and a taint-prototyped meter (stands in for `up4.p4`).
//! * [`SWITCH_SIM_TNA`] — a larger TNA switch with port/VLAN/L2/L3/ACL
//!   stages across ingress and egress (stands in for `switch.p4`).
//! * Small feature programs (header stacks, varbit, switch statements,
//!   registers) used to trigger the fault catalog.
//! * [`generate_synthetic`] — a parameterized program generator for
//!   path-count scaling sweeps.
//! * [`fuzz`] — the deterministic fuzzing harness behind the `p4fuzz`
//!   binary: mutates seed programs and checks that the frontend never
//!   panics (it must reject bad inputs with diagnostics instead).

pub mod fuzz;

use std::sync::LazyLock;

/// The paper's Fig. 1a example (forwarding on a rewritten EtherType).
pub const FIG1A: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control VC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    action set_out(bit<9> port) { meta.output_port = port; sm.egress_spec = port; }
    action noop() { }
    table forward_table {
        key = { hdr.eth.etherType: exact @name("type"); }
        actions = { noop; set_out; }
        default_action = noop();
    }
    apply {
        hdr.eth.etherType = 0xBEEF;
        forward_table.apply();
    }
}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control CC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Dep(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#;

/// The paper's Fig. 1b example (Ethernet checksum validation).
pub const FIG1B: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> err; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control VC(inout headers_t hdr, inout meta_t meta) {
    apply {
        verify_checksum(hdr.eth.isValid(), { hdr.eth.dst, hdr.eth.src },
                        hdr.eth.etherType, HashAlgorithm.csum16);
    }
}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    apply { if (sm.checksum_error == 1) { mark_to_drop(sm); } }
}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control CC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Dep(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#;

/// Shared protocol headers for the larger v1model programs.
const NET_HEADERS: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header vlan_t { bit<3> pcp; bit<1> dei; bit<12> vid; bit<16> etherType; }
header ipv4_t {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
    bit<16> id; bit<3> flags; bit<13> fragOffset;
    bit<8> ttl; bit<8> protocol; bit<16> checksum;
    bit<32> src; bit<32> dst;
}
header tcp_t {
    bit<16> srcPort; bit<16> dstPort; bit<32> seq; bit<32> ack;
    bit<4> dataOffset; bit<4> res; bit<8> flags; bit<16> window;
    bit<16> checksum; bit<16> urgentPtr;
}
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> len; bit<16> checksum; }
"#;

/// Middleblock analogue: L2/L3/ACL pipeline with P4-constraints.
pub static MIDDLEBLOCK_SIM: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
struct headers_t {{ ethernet_t eth; vlan_t vlan; ipv4_t ipv4; tcp_t tcp; udp_t udp; }}
struct meta_t {{
    bit<12> vid;
    bit<16> l4_sport;
    bit<16> l4_dport;
    bit<1>  ipv4_ok;
    bit<9>  nexthop_port;
    bit<48> nexthop_mac;
}}

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x8100: parse_vlan;
            0x0800: parse_ipv4;
            default: accept;
        }}
    }}
    state parse_vlan {{
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.etherType) {{
            0x0800: parse_ipv4;
            default: accept;
        }}
    }}
    state parse_ipv4 {{
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {{
            8w6: parse_tcp;
            8w17: parse_udp;
            default: accept;
        }}
    }}
    state parse_tcp {{ pkt.extract(hdr.tcp); transition accept; }}
    state parse_udp {{ pkt.extract(hdr.udp); transition accept; }}
}}

control VC(inout headers_t hdr, inout meta_t meta) {{
    apply {{
        verify_checksum(hdr.ipv4.isValid(),
            {{ hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.tos, hdr.ipv4.totalLen,
              hdr.ipv4.id, hdr.ipv4.flags, hdr.ipv4.fragOffset,
              hdr.ipv4.ttl, hdr.ipv4.protocol, hdr.ipv4.src, hdr.ipv4.dst }},
            hdr.ipv4.checksum, HashAlgorithm.csum16);
    }}
}}

control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action drop_it() {{ mark_to_drop(sm); }}
    action permit() {{ }}
    action mirror(bit<32> session) {{ clone(CloneType.I2E, session); }}
    action set_vid(bit<12> vid) {{ meta.vid = vid; }}
    action l2_fwd(bit<9> port) {{ sm.egress_spec = port; }}
    action set_nexthop(bit<9> port, bit<48> dmac) {{
        meta.nexthop_port = port;
        meta.nexthop_mac = dmac;
        sm.egress_spec = port;
        hdr.eth.dst = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }}

    table vlan_table {{
        key = {{ hdr.vlan.vid: exact @name("vid"); }}
        actions = {{ set_vid; drop_it; }}
        default_action = set_vid(1);
    }}

    @entry_restriction("dst_port != 0 && dst_port < 32768")
    table acl {{
        key = {{
            hdr.ipv4.src: ternary @name("src_addr");
            hdr.ipv4.dst: ternary @name("dst_addr");
            meta.l4_dport: range @name("dst_port");
        }}
        actions = {{ drop_it; permit; mirror; }}
        default_action = permit();
    }}

    table l3_routes {{
        key = {{ hdr.ipv4.dst: lpm @name("dst"); }}
        actions = {{ set_nexthop; drop_it; }}
        default_action = drop_it();
    }}

    table l2_table {{
        key = {{ hdr.eth.dst: exact @name("dmac"); }}
        actions = {{ l2_fwd; drop_it; }}
        default_action = drop_it();
    }}

    apply {{
        if (hdr.vlan.isValid()) {{
            vlan_table.apply();
        }}
        if (hdr.ipv4.isValid()) {{
            if (sm.checksum_error == 1) {{
                mark_to_drop(sm);
            }} else {{
                if (hdr.tcp.isValid()) {{
                    meta.l4_sport = hdr.tcp.srcPort;
                    meta.l4_dport = hdr.tcp.dstPort;
                }}
                if (hdr.udp.isValid()) {{
                    meta.l4_sport = hdr.udp.srcPort;
                    meta.l4_dport = hdr.udp.dstPort;
                }}
                acl.apply();
                if (sm.egress_spec != 511) {{
                    if (hdr.ipv4.ttl == 0) {{
                        mark_to_drop(sm);
                    }} else {{
                        l3_routes.apply();
                    }}
                }}
            }}
        }} else {{
            l2_table.apply();
        }}
    }}
}}

control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    apply {{ }}
}}

control CC(inout headers_t hdr, inout meta_t meta) {{
    apply {{
        update_checksum(hdr.ipv4.isValid(),
            {{ hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.tos, hdr.ipv4.totalLen,
              hdr.ipv4.id, hdr.ipv4.flags, hdr.ipv4.fragOffset,
              hdr.ipv4.ttl, hdr.ipv4.protocol, hdr.ipv4.src, hdr.ipv4.dst }},
            hdr.ipv4.checksum, HashAlgorithm.csum16);
    }}
}}

control Dep(packet_out pkt, in headers_t hdr) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
    }}
}}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// UP4 analogue: 5G UPF data plane with GTP-U decap and PDR/FAR tables.
pub static UP4_SIM: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
header gtpu_t {{
    bit<3> version; bit<1> pt; bit<1> spare; bit<1> ex; bit<1> seq_flag; bit<1> npdu;
    bit<8> msgtype; bit<16> msglen; bit<32> teid;
}}
struct headers_t {{ ethernet_t eth; ipv4_t outer_ipv4; udp_t outer_udp; gtpu_t gtpu; ipv4_t ipv4; udp_t udp; }}
struct meta_t {{
    bit<32> teid;
    bit<32> far_id;
    bit<1>  needs_decap;
    bit<1>  needs_encap;
    bit<8>  meter_color;
}}

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x0800: parse_outer;
            default: accept;
        }}
    }}
    state parse_outer {{
        pkt.extract(hdr.outer_ipv4);
        transition select(hdr.outer_ipv4.protocol) {{
            8w17: parse_outer_udp;
            default: accept;
        }}
    }}
    state parse_outer_udp {{
        pkt.extract(hdr.outer_udp);
        transition select(hdr.outer_udp.dstPort) {{
            16w2152: parse_gtpu;
            default: accept;
        }}
    }}
    state parse_gtpu {{
        pkt.extract(hdr.gtpu);
        pkt.extract(hdr.ipv4);
        transition accept;
    }}
}}

control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}

control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    meter(1024, MeterType.packets) flow_meter;
    action drop_it() {{ mark_to_drop(sm); }}
    action set_pdr(bit<32> far_id, bit<1> decap) {{
        meta.far_id = far_id;
        meta.needs_decap = decap;
    }}
    action far_forward(bit<9> port) {{ sm.egress_spec = port; }}
    action far_tunnel(bit<9> port, bit<32> teid, bit<32> tunnel_dst) {{
        sm.egress_spec = port;
        meta.needs_encap = 1;
        meta.teid = teid;
        hdr.outer_ipv4.dst = tunnel_dst;
    }}

    table pdr_table {{
        key = {{
            hdr.gtpu.teid: exact @name("teid");
            hdr.ipv4.dst: exact @name("ue_addr");
        }}
        actions = {{ set_pdr; drop_it; }}
        default_action = drop_it();
    }}

    table far_table {{
        key = {{ meta.far_id: exact @name("far_id"); }}
        actions = {{ far_forward; far_tunnel; drop_it; }}
        default_action = drop_it();
    }}

    apply {{
        if (hdr.gtpu.isValid()) {{
            pdr_table.apply();
            if (sm.egress_spec != 511) {{
                flow_meter.execute_meter(meta.far_id, meta.meter_color);
                if (meta.meter_color == 2) {{
                    mark_to_drop(sm);
                }} else {{
                    far_table.apply();
                    if (meta.needs_decap == 1) {{
                        hdr.outer_ipv4.setInvalid();
                        hdr.outer_udp.setInvalid();
                        hdr.gtpu.setInvalid();
                    }}
                }}
            }}
        }} else {{
            drop_it();
        }}
    }}
}}

control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.outer_ipv4);
        pkt.emit(hdr.outer_udp);
        pkt.emit(hdr.gtpu);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
    }}
}}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// switch.p4 analogue for TNA: multi-stage ingress + egress rewrite.
pub static SWITCH_SIM_TNA: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"
header tofino_md_t {{ bit<64> pad; }}
{NET_HEADERS}
header ipv6_t {{
    bit<4> version; bit<8> trafficClass; bit<20> flowLabel;
    bit<16> payloadLen; bit<8> nextHdr; bit<8> hopLimit;
    bit<64> srcHi; bit<64> srcLo; bit<64> dstHi; bit<64> dstLo;
}}
struct headers_t {{ tofino_md_t tofino_md; ethernet_t eth; vlan_t vlan; ipv4_t ipv4; ipv6_t ipv6; tcp_t tcp; udp_t udp; }}
struct meta_t {{
    bit<16> bd;
    bit<16> nexthop;
    bit<12> vid;
    bit<1>  routed;
    bit<1>  acl_deny;
    bit<16> ecmp_group;
    bit<16> l4_dport;
}}

parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {{
    state start {{
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x8100: parse_vlan;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }}
    }}
    state parse_vlan {{
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.etherType) {{
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }}
    }}
    state parse_ipv4 {{
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {{
            8w6: parse_tcp;
            8w17: parse_udp;
            default: accept;
        }}
    }}
    state parse_ipv6 {{
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.nextHdr) {{
            8w6: parse_tcp;
            8w17: parse_udp;
            default: accept;
        }}
    }}
    state parse_tcp {{ pkt.extract(hdr.tcp); transition accept; }}
    state parse_udp {{ pkt.extract(hdr.udp); transition accept; }}
}}

control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {{
    action drop_it() {{ ig_dprsr_md.drop_ctl = 1; }}
    action set_bd(bit<16> bd) {{ meta.bd = bd; }}
    action l2_hit(bit<9> port) {{ ig_tm_md.ucast_egress_port = port; }}
    action route(bit<16> nexthop) {{ meta.nexthop = nexthop; meta.routed = 1; }}
    action nexthop_set(bit<9> port, bit<48> dmac) {{
        ig_tm_md.ucast_egress_port = port;
        hdr.eth.dst = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }}
    action acl_deny_a() {{ meta.acl_deny = 1; }}
    action acl_permit() {{ }}

    table port_vlan {{
        key = {{
            ig_intr_md.ingress_port: exact @name("port");
            hdr.vlan.vid: ternary @name("vid");
        }}
        actions = {{ set_bd; drop_it; }}
        default_action = set_bd(0);
    }}
    table l2_fwd {{
        key = {{
            meta.bd: exact @name("bd");
            hdr.eth.dst: exact @name("dmac");
        }}
        actions = {{ l2_hit; drop_it; }}
        default_action = drop_it();
    }}
    table l3_route {{
        key = {{ hdr.ipv4.dst: lpm @name("dst"); }}
        actions = {{ route; drop_it; }}
        default_action = drop_it();
    }}
    table nexthop_table {{
        key = {{ meta.nexthop: exact @name("nexthop"); }}
        actions = {{ nexthop_set; drop_it; }}
        default_action = drop_it();
    }}
    table acl {{
        key = {{
            hdr.ipv4.src: ternary @name("src");
            meta.l4_dport: range @name("dport");
        }}
        actions = {{ acl_deny_a; acl_permit; }}
        default_action = acl_permit();
    }}
    action set_ecmp(bit<16> group) {{ meta.ecmp_group = group; }}
    action no_ecmp() {{ }}
    table ecmp {{
        key = {{ meta.nexthop: exact @name("nexthop"); }}
        actions = {{ set_ecmp; no_ecmp; }}
        default_action = no_ecmp();
    }}
    action v6_route(bit<16> nexthop) {{ meta.nexthop = nexthop; meta.routed = 1; }}
    table l3_route_v6 {{
        key = {{ hdr.ipv6.dstHi: exact @name("dst_hi"); }}
        actions = {{ v6_route; drop_it; }}
        default_action = drop_it();
    }}

    apply {{
        port_vlan.apply();
        if (hdr.tcp.isValid()) {{
            meta.l4_dport = hdr.tcp.dstPort;
        }}
        if (hdr.udp.isValid()) {{
            meta.l4_dport = hdr.udp.dstPort;
        }}
        if (hdr.ipv4.isValid()) {{
            if (hdr.ipv4.ttl == 0) {{
                drop_it();
            }} else {{
                l3_route.apply();
                if (meta.routed == 1) {{
                    ecmp.apply();
                    nexthop_table.apply();
                }}
                acl.apply();
                if (meta.acl_deny == 1) {{
                    drop_it();
                }}
            }}
        }} else {{
            if (hdr.ipv6.isValid()) {{
                if (hdr.ipv6.hopLimit == 0) {{
                    drop_it();
                }} else {{
                    l3_route_v6.apply();
                    if (meta.routed == 1) {{
                        ecmp.apply();
                        nexthop_table.apply();
                    }}
                }}
            }} else {{
                l2_fwd.apply();
            }}
        }}
    }}
}}

control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ipv6);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
    }}
}}

parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {{
    state start {{
        pkt.extract(hdr.eth);
        transition accept;
    }}
}}

control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {{
    action rewrite_smac(bit<48> smac) {{ hdr.eth.src = smac; }}
    action keep() {{ }}
    table egress_rewrite {{
        key = {{ eg_intr_md.egress_port: exact @name("port"); }}
        actions = {{ rewrite_smac; keep; }}
        default_action = keep();
    }}
    apply {{
        egress_rewrite.apply();
    }}
}}

control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {{
    apply {{ pkt.emit(hdr.eth); }}
}}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#
    )
});

/// Header-stack feature program (triggers the stack-class faults).
pub static STACK_PROG: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
struct headers_t {{ ethernet_t eth; vlan_t[2] vlans; }}
struct meta_t {{ bit<12> inner_vid; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x8100: parse_vlan;
            default: accept;
        }}
    }}
    state parse_vlan {{
        pkt.extract(hdr.vlans.next);
        transition select(hdr.vlans.last.etherType) {{
            0x8100: parse_vlan;
            default: accept;
        }}
    }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    apply {{
        if (hdr.vlans[0].isValid()) {{
            meta.inner_vid = hdr.vlans[0].vid;
            sm.egress_spec = 2;
        }} else {{
            sm.egress_spec = 1;
        }}
    }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.vlans[0]);
        pkt.emit(hdr.vlans[1]);
    }}
}}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// Varbit feature program (IPv4 options; triggers varbit faults).
pub static VARBIT_PROG: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
header ipv4_options_t {{ varbit<320> options; }}
struct headers_t {{ ethernet_t eth; ipv4_t ipv4; ipv4_options_t opts; }}
struct meta_t {{ bit<8> x; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x0800: parse_ipv4;
            default: accept;
        }}
    }}
    state parse_ipv4 {{
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.ihl) {{
            4w5: accept;
            4w6: parse_options;
            default: accept;
        }}
    }}
    state parse_options {{
        pkt.extract(hdr.opts, 32);
        transition accept;
    }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    apply {{ sm.egress_spec = 3; }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.opts);
    }}
}}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// Switch-statement feature program (triggers the swallowed-apply fault).
pub static SWITCH_STMT_PROG: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
struct headers_t {{ ethernet_t eth; }}
struct meta_t {{ bit<8> class; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action classify_low() {{ meta.class = 1; sm.egress_spec = 1; }}
    action classify_high() {{ meta.class = 2; sm.egress_spec = 2; }}
    table classifier {{
        key = {{ hdr.eth.etherType: exact @name("type"); }}
        actions = {{ classify_low; classify_high; }}
        default_action = classify_low();
    }}
    apply {{
        switch (classifier.apply().action_run) {{
            classify_low: {{ hdr.eth.src = 48w0x0A0A0A0A0A0A; }}
            classify_high: {{ hdr.eth.src = 48w0x0B0B0B0B0B0B; }}
        }}
    }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.eth); }} }}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// Register feature program (triggers the register-class faults).
pub static REGISTER_PROG: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
struct headers_t {{ ethernet_t eth; }}
struct meta_t {{ bit<32> count; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    register<bit<32>>(64) counters;
    apply {{
        counters.read(meta.count, 32w63);
        meta.count = meta.count + 1;
        counters.write(32w63, meta.count);
        sm.egress_spec = 1;
    }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.eth); }} }}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});


/// BMv2 quirks program: triggers the stack/emit/key-name fault classes
/// (P4C-1, P4C-4, P4C-5, P4C-6, P4C-8).
pub static BMV2_QUIRKS: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"{NET_HEADERS}
header tag_t {{ bit<16> a; bit<16> b; }}
struct headers_t {{ ethernet_t eth; vlan_t[2] vlans; tag_t tag; }}
struct meta_t {{ bit<12> v; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x8100: parse_vlan;
            default: accept;
        }}
    }}
    state parse_vlan {{
        pkt.extract(hdr.vlans.next);
        transition select(hdr.vlans.last.etherType) {{
            0x8100: parse_vlan;
            default: accept;
        }}
    }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action set_port(bit<9> p) {{ sm.egress_spec = p; }}
    action keep() {{ }}
    table stack_key {{
        key = {{ hdr.vlans[0].vid: exact; }}
        actions = {{ set_port; keep; }}
        default_action = keep();
    }}
    table dup_keys {{
        key = {{
            hdr.eth.src: exact @name("mac");
            hdr.eth.dst: exact @name("mac");
        }}
        actions = {{ set_port; keep; }}
        default_action = keep();
    }}
    apply {{
        if (hdr.vlans[0].isValid()) {{
            stack_key.apply();
            hdr.vlans.pop_front(1);
        }} else {{
            dup_keys.apply();
        }}
        hdr.tag.setValid();
        hdr.tag.a = 0xAAAA;
    }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{
    apply {{
        pkt.emit(hdr.eth);
        pkt.emit(hdr.vlans[0]);
        pkt.emit(hdr.vlans[1]);
        pkt.emit(hdr.tag);
    }}
}}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
});

/// Tofino quirks program: triggers the register/hash/bypass/priority/
/// lookahead fault classes (TOF-7/8/11/12/13/14).
pub static TOFINO_QUIRKS: LazyLock<String> = LazyLock::new(|| {
    format!(
        r#"
header tofino_md_t {{ bit<64> pad; }}
{NET_HEADERS}
struct headers_t {{ tofino_md_t tofino_md; ethernet_t eth; }}
struct meta_t {{ bit<32> rv; bit<32> hv; bit<48> peek; }}
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {{
    state start {{
        meta.peek = pkt.lookahead<bit<48>>();
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        transition accept;
    }}
}}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {{
    Register<bit<32>, bit<32>>(16) reg;
    Hash<bit<32>>(HashAlgorithm_t.CRC32) hasher;
    action fwd(bit<9> p) {{ ig_tm_md.ucast_egress_port = p; }}
    action fwd_bypass(bit<9> p) {{
        ig_tm_md.ucast_egress_port = p;
        ig_tm_md.bypass_egress = 1;
    }}
    table seltab {{
        key = {{ hdr.eth.etherType: exact @name("type"); }}
        actions = {{ fwd; fwd_bypass; }}
        const entries = {{
            @priority(10) 0x1111: fwd(9w1);
            @priority(1) 0x1111: fwd_bypass(9w2);
        }}
        default_action = fwd(9w7);
    }}
    apply {{
        meta.rv = reg.read(32w15);
        reg.write(32w15, meta.rv + 1);
        meta.hv = hasher.get({{ hdr.eth.dst, hdr.eth.src }});
        hdr.eth.src = meta.hv ++ meta.hv[15:0];
        seltab.apply();
    }}
}}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {{
    apply {{ pkt.emit(hdr.eth); }}
}}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {{
    apply {{ hdr.eth.dst = 48w0xEEEEEEEEEEEE; }}
}}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {{
    apply {{ pkt.emit(hdr.eth); }}
}}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#
    )
});

/// Generate a synthetic v1model program with `n_tables` chained tables of
/// `n_actions` actions each: the number of feasible paths grows roughly as
/// `(n_actions + 1)^n_tables`, the scaling the paper observes on switch.p4.
pub fn generate_synthetic(n_tables: u32, n_actions: u32) -> String {
    let mut actions = String::new();
    let mut tables = String::new();
    let mut applies = String::new();
    for t in 0..n_tables {
        let mut action_list = String::new();
        for a in 0..n_actions {
            actions.push_str(&format!(
                "    action t{t}_a{a}(bit<8> v) {{ meta.acc = meta.acc ^ v; }}\n"
            ));
            action_list.push_str(&format!("t{t}_a{a}; "));
        }
        tables.push_str(&format!(
            r#"    table t{t} {{
        key = {{ hdr.data.f{}: exact @name("f{}"); }}
        actions = {{ {action_list}nop; }}
        default_action = nop();
    }}
"#,
            t % 4,
            t % 4
        ));
        applies.push_str(&format!("        t{t}.apply();\n"));
    }
    format!(
        r#"
header data_t {{ bit<8> f0; bit<8> f1; bit<8> f2; bit<8> f3; }}
struct headers_t {{ data_t data; }}
struct meta_t {{ bit<8> acc; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{ pkt.extract(hdr.data); transition accept; }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action nop() {{ }}
{actions}
{tables}
    apply {{
        sm.egress_spec = 1;
{applies}
        hdr.data.f3 = meta.acc;
    }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.data); }} }}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
}

/// Generate a parser "narrowing chain" that stresses the DFS spine: the
/// first select pins the key (`key == K0`) down a trunk of `depth` further
/// selects, each offering `fanout` case constants that contradict the pinned
/// value before falling through to the next state. Every case fork is an
/// infeasible feasibility check whose fork trail shares a long prefix with
/// its siblings — exactly the shape the incremental spine solver is built
/// for. Fresh-per-check re-blasts the whole prefix on each of the roughly
/// `depth * fanout` checks (quadratic total work in `depth`); the warm core
/// blasts each trail constraint once and retires the siblings by assumption.
/// All case constants are globally distinct so the feasibility memo cannot
/// collapse checks across levels.
pub fn generate_parser_deep(depth: u32, fanout: u32) -> String {
    let mut states = String::new();
    for i in 1..=depth {
        let next = if i == depth { "accept".to_string() } else { format!("s{}", i + 1) };
        let mut cases = String::new();
        for j in 0..fanout {
            // Distinct per (level, case) and never equal to the pinned
            // trunk value 0xA0000000.
            let c = 0x0001_0000u64 * u64::from(i) + u64::from(j) + 1;
            cases.push_str(&format!("            32w0x{c:08X}: accept;\n"));
        }
        states.push_str(&format!(
            r#"    state s{i} {{
        transition select(hdr.data.key) {{
{cases}            default: {next};
        }}
    }}
"#
        ));
    }
    format!(
        r#"
header data_t {{ bit<32> key; bit<32> pad; }}
struct headers_t {{ data_t data; }}
struct meta_t {{ bit<8> acc; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.data);
        transition select(hdr.data.key) {{
            32w0xA0000000: s1;
            default: accept;
        }}
    }}
{states}}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    apply {{ sm.egress_spec = 1; }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.data); }} }}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
    )
}

/// The architectures the target-intersection programs cover.
pub const INTERSECTION_TARGETS: &[&str] = &["v1model", "tna", "ebpf_model"];

/// A program in the *target-intersection subset*: the same forwarding
/// logic — parse Ethernet, exact-match on the destination MAC, forward or
/// rewrite-and-drop — expressed in each architecture's packaging. The
/// differential harness (`p4testgen diff --cross`) runs the variants on
/// identical inputs and control planes and compares outcomes through the
/// documented quirk list (`p4t_targets::quirks`), so every behavioral
/// difference is either explained or a soundness finding.
///
/// The table carries the same `@name("flow")` control-plane name in every
/// variant, and actions keep identical names and parameter widths, so one
/// `TestSpec`'s entries install unchanged on all three.
pub fn generate_intersection(target: &str) -> String {
    let eth = "header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }";
    match target {
        "tna" | "t2na" => format!(
            r#"// arch: tna
header tofino_md_t {{ bit<64> pad; }}
{eth}
struct headers_t {{ tofino_md_t tofino_md; ethernet_t eth; }}
struct meta_t {{ bit<8> unused; }}
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {{
    state start {{
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        transition accept;
    }}
}}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {{
    action to_port(bit<9> port) {{ ig_tm_md.ucast_egress_port = port; }}
    action reject() {{ hdr.eth.etherType = 0xDEAD; ig_dprsr_md.drop_ctl = 1; }}
    @name("flow")
    table flow {{
        key = {{ hdr.eth.dst: exact @name("dst"); }}
        actions = {{ to_port; reject; }}
        default_action = reject();
    }}
    apply {{ flow.apply(); }}
}}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {{
    apply {{ pkt.emit(hdr.eth); }}
}}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {{
    apply {{ }}
}}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {{
    apply {{ pkt.emit(hdr.eth); }}
}}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#
        ),
        "ebpf_model" => format!(
            r#"// arch: ebpf_model
{eth}
struct headers_t {{ ethernet_t eth; }}
parser prs(packet_in pkt, out headers_t hdr) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control pipe(inout headers_t hdr, out bool pass) {{
    action to_port(bit<9> port) {{ pass = true; }}
    action reject() {{ hdr.eth.etherType = 0xDEAD; pass = false; }}
    @name("flow")
    table flow {{
        key = {{ hdr.eth.dst: exact @name("dst"); }}
        actions = {{ to_port; reject; }}
        default_action = reject();
    }}
    apply {{ pass = false; flow.apply(); }}
}}
ebpfFilter(prs(), pipe()) main;
"#
        ),
        _ => format!(
            r#"{eth}
struct headers_t {{ ethernet_t eth; }}
struct meta_t {{ bit<8> unused; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{ pkt.extract(hdr.eth); transition accept; }}
}}
control VC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action to_port(bit<9> port) {{ sm.egress_spec = port; }}
    action reject() {{ hdr.eth.etherType = 0xDEAD; mark_to_drop(sm); }}
    @name("flow")
    table flow {{
        key = {{ hdr.eth.dst: exact @name("dst"); }}
        actions = {{ to_port; reject; }}
        default_action = reject();
    }}
    apply {{ flow.apply(); }}
}}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{ apply {{ }} }}
control CC(inout headers_t hdr, inout meta_t meta) {{ apply {{ }} }}
control Dep(packet_out pkt, in headers_t hdr) {{ apply {{ pkt.emit(hdr.eth); }} }}
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#
        ),
    }
}

/// Every named corpus program with its target architecture.
pub fn all_programs() -> Vec<(&'static str, String, &'static str)> {
    vec![
        ("fig1a", FIG1A.to_string(), "v1model"),
        ("fig1b", FIG1B.to_string(), "v1model"),
        ("middleblock_sim", MIDDLEBLOCK_SIM.clone(), "v1model"),
        ("up4_sim", UP4_SIM.clone(), "v1model"),
        ("switch_sim", SWITCH_SIM_TNA.clone(), "tna"),
        ("stack_prog", STACK_PROG.clone(), "v1model"),
        ("varbit_prog", VARBIT_PROG.clone(), "v1model"),
        ("switch_stmt_prog", SWITCH_STMT_PROG.clone(), "v1model"),
        ("register_prog", REGISTER_PROG.clone(), "v1model"),
        ("bmv2_quirks", BMV2_QUIRKS.clone(), "v1model"),
        ("tofino_quirks", TOFINO_QUIRKS.clone(), "tna"),
        ("parser_deep_6x4", generate_parser_deep(6, 4), "v1model"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_variants_typecheck_under_their_preludes() {
        for target in INTERSECTION_TARGETS {
            let src = generate_intersection(target);
            let full = format!("{}{}", fuzz::prelude_for(target), src);
            let checked = p4t_frontend::frontend(&full);
            assert!(checked.is_ok(), "{target}: {:?}", checked.err());
        }
    }

    #[test]
    fn intersection_variants_declare_the_shared_flow_table() {
        for target in INTERSECTION_TARGETS {
            let src = generate_intersection(target);
            assert!(src.contains(r#"@name("dst")"#), "{target}");
            assert!(src.contains("table flow"), "{target}");
            assert!(src.contains("action to_port(bit<9> port)"), "{target}");
        }
    }
}
