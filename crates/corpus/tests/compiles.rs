//! Every corpus program must pass the full frontend with its target prelude.

use p4t_corpus::all_programs;

// The preludes live in p4t-targets; to avoid a dependency cycle in dev-deps
// we duplicate the lookup here via the dev-dependency.
fn prelude_for(arch: &str) -> &'static str {
    match arch {
        "v1model" => p4t_targets::v1model::V1MODEL_PRELUDE,
        "tna" | "t2na" => p4t_targets::tofino::TNA_PRELUDE,
        "ebpf_model" => p4t_targets::ebpf::EBPF_PRELUDE,
        other => panic!("unknown arch {other}"),
    }
}

#[test]
fn all_corpus_programs_compile() {
    for (name, src, arch) in all_programs() {
        let full = format!("{}\n{}", prelude_for(arch), src);
        match p4t_ir::compile(&full) {
            Ok(prog) => {
                assert!(prog.num_statements() > 0, "{name}: no statements");
                assert!(!prog.package_args.is_empty(), "{name}: no package");
            }
            Err(e) => panic!("{name} failed to compile: {e:?}"),
        }
    }
}

#[test]
fn synthetic_generator_scales() {
    for (t, a) in [(1, 1), (2, 2), (4, 3)] {
        let src = p4t_corpus::generate_synthetic(t, a);
        let full = format!("{}\n{}", prelude_for("v1model"), src);
        let prog = p4t_ir::compile(&full)
            .unwrap_or_else(|e| panic!("synthetic({t},{a}) failed: {e:?}"));
        let tables: Vec<_> = prog.all_tables().collect();
        assert_eq!(tables.len(), t as usize);
    }
}

#[test]
fn middleblock_has_entry_restriction() {
    let full = format!(
        "{}\n{}",
        prelude_for("v1model"),
        p4t_corpus::MIDDLEBLOCK_SIM.as_str()
    );
    let prog = p4t_ir::compile(&full).unwrap();
    let acl = prog.all_tables().find(|t| t.name == "acl").expect("acl table");
    assert!(acl.entry_restriction.is_some(), "P4-constraints annotation survives");
    assert_eq!(acl.keys.len(), 3);
}
