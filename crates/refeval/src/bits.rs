//! A deliberately naive bit-vector: `Vec<bool>` with index 0 = least
//! significant bit, and schoolbook algorithms throughout (ripple-carry
//! addition, shift-and-add multiplication, restoring division).
//!
//! This module intentionally shares nothing with `p4t_smt::BitVec`. It is
//! the arithmetic half of the reference evaluator's independence: a bug in
//! the optimized bit-vector library cannot be self-consistent with a bug
//! here. The *semantics* match the SMT-LIB conventions both evaluators
//! target: division by zero yields all-ones, remainder by zero yields the
//! dividend, shifts by amounts at or beyond the width saturate (arithmetic
//! right shift fills with the sign bit), and casts truncate low bits or
//! zero-extend.

/// A fixed-width bit string. `bits[0]` is the least significant bit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bits {
    bits: Vec<bool>,
}

impl Bits {
    pub fn empty() -> Bits {
        Bits { bits: Vec::new() }
    }

    pub fn zeros(width: usize) -> Bits {
        Bits { bits: vec![false; width] }
    }

    pub fn ones(width: usize) -> Bits {
        Bits { bits: vec![true; width] }
    }

    pub fn from_bool(b: bool) -> Bits {
        Bits { bits: vec![b] }
    }

    pub fn from_u128(width: usize, v: u128) -> Bits {
        let mut bits = vec![false; width];
        for (i, b) in bits.iter_mut().enumerate() {
            if i < 128 {
                *b = (v >> i) & 1 == 1;
            }
        }
        Bits { bits }
    }

    pub fn from_u64(width: usize, v: u64) -> Bits {
        Bits::from_u128(width, v as u128)
    }

    /// Big-endian bytes; the result is `8 * bytes.len()` wide.
    pub fn from_bytes_be(bytes: &[u8]) -> Bits {
        let w = bytes.len() * 8;
        let mut bits = vec![false; w];
        for (byte_i, byte) in bytes.iter().enumerate() {
            for bit_in_byte in 0..8 {
                // First byte holds the most significant bits.
                let pos = w - 1 - (byte_i * 8 + (7 - bit_in_byte));
                bits[pos] = (byte >> bit_in_byte) & 1 == 1;
            }
        }
        Bits { bits }
    }

    pub fn width(&self) -> usize {
        self.bits.len()
    }

    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|b| !b)
    }

    pub fn bit(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    pub fn set_bit(&mut self, i: usize, v: bool) {
        if i < self.bits.len() {
            self.bits[i] = v;
        }
    }

    fn sign(&self) -> bool {
        self.bits.last().copied().unwrap_or(false)
    }

    /// `Some(v)` iff the value fits in a `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.iter().skip(64).any(|b| *b) {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().take(64).enumerate() {
            if *b {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// Big-endian bytes, zero-padding the high end to a byte boundary.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let w = self.width();
        let nbytes = w.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for i in 0..w {
            if self.bits[i] {
                // Bit i (LSB-based) lives in byte (from the right) i / 8.
                let byte_from_right = i / 8;
                out[nbytes - 1 - byte_from_right] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Truncate to the low `width` bits or zero-extend.
    pub fn cast(&self, width: usize) -> Bits {
        let mut bits = self.bits.clone();
        bits.resize(width, false);
        Bits { bits }
    }

    pub fn zext(&self, width: usize) -> Bits {
        self.cast(width)
    }

    /// Sign-extend (or truncate when narrowing).
    pub fn sext(&self, width: usize) -> Bits {
        let mut bits = self.bits.clone();
        let s = self.sign();
        bits.resize(width, s);
        Bits { bits }
    }

    /// Inclusive bit range `[lo, hi]`.
    pub fn extract(&self, hi: usize, lo: usize) -> Bits {
        let mut bits = Vec::with_capacity(hi.saturating_sub(lo) + 1);
        for i in lo..=hi {
            bits.push(self.bit(i));
        }
        Bits { bits }
    }

    /// `self` supplies the high bits, `low` the low bits.
    pub fn concat(&self, low: &Bits) -> Bits {
        let mut bits = low.bits.clone();
        bits.extend_from_slice(&self.bits);
        Bits { bits }
    }

    pub fn not(&self) -> Bits {
        Bits { bits: self.bits.iter().map(|b| !b).collect() }
    }

    fn zip_with(&self, other: &Bits, f: impl Fn(bool, bool) -> bool) -> Bits {
        let w = self.width().max(other.width());
        let mut bits = Vec::with_capacity(w);
        for i in 0..w {
            bits.push(f(self.bit(i), other.bit(i)));
        }
        Bits { bits }
    }

    pub fn and(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a && b)
    }

    pub fn or(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a || b)
    }

    pub fn xor(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a != b)
    }

    /// Ripple-carry addition, wrapping at the width of `self`.
    pub fn add(&self, other: &Bits) -> Bits {
        let w = self.width();
        let mut bits = vec![false; w];
        let mut carry = false;
        for (i, out) in bits.iter_mut().enumerate() {
            let a = self.bit(i);
            let b = other.bit(i);
            *out = a ^ b ^ carry;
            carry = (a && b) || ((a || b) && carry);
        }
        Bits { bits }
    }

    pub fn negate(&self) -> Bits {
        Bits::zeros(self.width()).sub(self)
    }

    /// `self - other` via two's complement: `self + !other + 1`.
    pub fn sub(&self, other: &Bits) -> Bits {
        let w = self.width();
        let mut bits = vec![false; w];
        let mut carry = true;
        for (i, out) in bits.iter_mut().enumerate() {
            let a = self.bit(i);
            let b = !other.bit(i);
            *out = a ^ b ^ carry;
            carry = (a && b) || ((a || b) && carry);
        }
        Bits { bits }
    }

    /// Shift-and-add multiplication, truncating at the width of `self`.
    pub fn mul(&self, other: &Bits) -> Bits {
        let w = self.width();
        let mut acc = Bits::zeros(w);
        let mut shifted = self.cast(w);
        for i in 0..w {
            if other.bit(i) {
                acc = acc.add(&shifted);
            }
            shifted = shifted.shl_const(1);
        }
        acc
    }

    /// Restoring long division. Division by zero yields all ones (SMT-LIB
    /// `bvudiv`); remainder by zero yields the dividend (`bvurem`).
    fn divmod(&self, other: &Bits) -> (Bits, Bits) {
        let w = self.width();
        if other.is_zero() {
            return (Bits::ones(w), self.clone());
        }
        let mut quotient = Bits::zeros(w);
        let mut remainder = Bits::zeros(w);
        for i in (0..w).rev() {
            // remainder = (remainder << 1) | dividend[i]
            remainder = remainder.shl_const(1);
            remainder.set_bit(0, self.bit(i));
            if !remainder.ult(&other.cast(w)) {
                remainder = remainder.sub(&other.cast(w));
                quotient.set_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    pub fn udiv(&self, other: &Bits) -> Bits {
        self.divmod(other).0
    }

    pub fn urem(&self, other: &Bits) -> Bits {
        self.divmod(other).1
    }

    pub fn shl_const(&self, n: usize) -> Bits {
        let w = self.width();
        let mut bits = vec![false; w];
        for (i, out) in bits.iter_mut().enumerate().skip(n) {
            *out = self.bit(i - n);
        }
        Bits { bits }
    }

    pub fn lshr_const(&self, n: usize) -> Bits {
        let w = self.width();
        let mut bits = vec![false; w];
        for (i, out) in bits.iter_mut().enumerate().take(w.saturating_sub(n)) {
            *out = self.bit(i + n);
        }
        Bits { bits }
    }

    fn ashr_const(&self, n: usize) -> Bits {
        let w = self.width();
        let s = self.sign();
        let mut bits = vec![s; w];
        for (i, out) in bits.iter_mut().enumerate().take(w.saturating_sub(n)) {
            *out = self.bit(i + n);
        }
        Bits { bits }
    }

    fn shift_amount(&self, amount: &Bits) -> usize {
        // Amounts that do not fit a u64 certainly exceed any width.
        match amount.to_u64() {
            Some(n) if (n as usize) < self.width() => n as usize,
            _ => self.width(),
        }
    }

    pub fn shl(&self, amount: &Bits) -> Bits {
        self.shl_const(self.shift_amount(amount))
    }

    pub fn lshr(&self, amount: &Bits) -> Bits {
        self.lshr_const(self.shift_amount(amount))
    }

    pub fn ashr(&self, amount: &Bits) -> Bits {
        self.ashr_const(self.shift_amount(amount))
    }

    /// Unsigned less-than, comparing from the most significant bit down.
    pub fn ult(&self, other: &Bits) -> bool {
        let w = self.width().max(other.width());
        for i in (0..w).rev() {
            let (a, b) = (self.bit(i), other.bit(i));
            if a != b {
                return b;
            }
        }
        false
    }

    pub fn ule(&self, other: &Bits) -> bool {
        !other.ult(self)
    }

    /// Signed less-than on equal-width two's-complement values.
    pub fn slt(&self, other: &Bits) -> bool {
        match (self.sign(), other.sign()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(other),
        }
    }

    pub fn sle(&self, other: &Bits) -> bool {
        !other.slt(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let b = Bits::from_bytes_be(&[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(b.width(), 32);
        assert_eq!(b.to_bytes_be(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(b.to_u64(), Some(0xDEADBEEF));
    }

    #[test]
    fn arithmetic_matches_u64() {
        for (a, b) in [(3u64, 5u64), (250, 7), (0, 9), (255, 255), (128, 2)] {
            let x = Bits::from_u64(8, a);
            let y = Bits::from_u64(8, b);
            assert_eq!(x.add(&y).to_u64(), Some((a + b) & 0xFF), "{a}+{b}");
            assert_eq!(x.sub(&y).to_u64(), Some(a.wrapping_sub(b) & 0xFF), "{a}-{b}");
            assert_eq!(x.mul(&y).to_u64(), Some((a * b) & 0xFF), "{a}*{b}");
            if b != 0 {
                assert_eq!(x.udiv(&y).to_u64(), Some(a / b), "{a}/{b}");
                assert_eq!(x.urem(&y).to_u64(), Some(a % b), "{a}%{b}");
            }
            assert_eq!(x.ult(&y), a < b);
            assert_eq!(x.ule(&y), a <= b);
        }
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        let x = Bits::from_u64(8, 42);
        let z = Bits::zeros(8);
        assert_eq!(x.udiv(&z), Bits::ones(8));
        assert_eq!(x.urem(&z), x);
    }

    #[test]
    fn shifts_saturate_at_width() {
        let x = Bits::from_u64(8, 0x81);
        assert!(x.shl(&Bits::from_u64(8, 8)).is_zero());
        assert!(x.lshr(&Bits::from_u64(8, 9)).is_zero());
        // Arithmetic shift fills with the sign bit.
        assert_eq!(x.ashr(&Bits::from_u64(8, 200)), Bits::ones(8));
        assert_eq!(x.ashr(&Bits::from_u64(8, 1)).to_u64(), Some(0xC0));
        assert_eq!(x.shl(&Bits::from_u64(8, 1)).to_u64(), Some(0x02));
    }

    #[test]
    fn signed_compare() {
        let neg1 = Bits::from_u64(8, 0xFF);
        let one = Bits::from_u64(8, 1);
        assert!(neg1.slt(&one));
        assert!(!one.slt(&neg1));
        assert!(one.ult(&neg1));
    }

    #[test]
    fn concat_slice_extend() {
        let hi = Bits::from_u64(8, 0xAB);
        let lo = Bits::from_u64(8, 0xCD);
        let c = hi.concat(&lo);
        assert_eq!(c.to_u64(), Some(0xABCD));
        assert_eq!(c.extract(15, 8).to_u64(), Some(0xAB));
        assert_eq!(c.extract(7, 0).to_u64(), Some(0xCD));
        assert_eq!(Bits::from_u64(4, 0x9).sext(8).to_u64(), Some(0xF9));
        assert_eq!(Bits::from_u64(4, 0x9).zext(8).to_u64(), Some(0x09));
        assert_eq!(Bits::from_u64(16, 0xABCD).cast(8).to_u64(), Some(0xCD));
    }
}
