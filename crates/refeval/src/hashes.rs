//! Independent reimplementations of the hash/checksum algorithms the
//! pipeline externs use. Kept byte-oriented and table-free on purpose:
//! these must agree with `p4testgen_core::concolic` on every input while
//! sharing no code with it, so a bug in the oracle's implementations is
//! visible as a divergence rather than silently mirrored.
//!
//! Parameterization matches the oracle: the argument list is concatenated
//! into one bit string, left-padded (value-preserving) to a byte boundary,
//! and the algorithm runs over the resulting big-endian bytes.

use crate::bits::Bits;

/// Concatenate arguments and left-pad to a byte boundary.
fn concat_bytes(args: &[Bits]) -> Vec<u8> {
    let mut acc = Bits::empty();
    for a in args {
        acc = acc.concat(a);
    }
    let w = acc.width();
    if !w.is_multiple_of(8) {
        acc = acc.zext(w + (8 - w % 8));
    }
    acc.to_bytes_be()
}

/// RFC 1071 one's-complement 16-bit checksum over big-endian byte pairs.
pub fn csum16(args: &[Bits], out_width: usize) -> Bits {
    let bytes = concat_bytes(args);
    let mut sum: u64 = 0;
    for pair in bytes.chunks(2) {
        let hi = u64::from(pair[0]);
        let lo = pair.get(1).map(|b| u64::from(*b)).unwrap_or(0);
        sum += (hi << 8) | lo;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    Bits::from_u64(out_width, !sum & 0xFFFF)
}

/// CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
/// XOR all-ones.
pub fn crc32(args: &[Bits], out_width: usize) -> Bits {
    let bytes = concat_bytes(args);
    let mut crc: u32 = u32::MAX;
    for b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1 != 0;
            crc >>= 1;
            if lsb {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    Bits::from_u64(out_width, u64::from(!crc))
}

/// CRC-16/ARC: reflected polynomial 0xA001, init zero.
pub fn crc16(args: &[Bits], out_width: usize) -> Bits {
    let bytes = concat_bytes(args);
    let mut crc: u16 = 0;
    for b in bytes {
        crc ^= u16::from(b);
        for _ in 0..8 {
            let lsb = crc & 1 != 0;
            crc >>= 1;
            if lsb {
                crc ^= 0xA001;
            }
        }
    }
    Bits::from_u64(out_width, u64::from(crc))
}

/// XOR-fold of all big-endian 16-bit words.
pub fn xor16(args: &[Bits], out_width: usize) -> Bits {
    let bytes = concat_bytes(args);
    let mut acc: u16 = 0;
    for pair in bytes.chunks(2) {
        let hi = u16::from(pair[0]);
        let lo = pair.get(1).map(|b| u16::from(*b)).unwrap_or(0);
        acc ^= (hi << 8) | lo;
    }
    Bits::from_u64(out_width, u64::from(acc))
}

/// Identity "hash": the concatenated input truncated or zero-extended.
pub fn identity(args: &[Bits], out_width: usize) -> Bits {
    let mut acc = Bits::empty();
    for a in args {
        acc = acc.concat(a);
    }
    acc.cast(out_width)
}

/// Algorithm ids as the v1model `HashAlgorithm` enum (and the oracle's
/// `run_hash`) number them.
pub fn by_id(algo: u64, args: &[Bits], out_width: usize) -> Bits {
    match algo {
        0 => crc32(args, out_width),
        1 => crc16(args, out_width),
        2 => csum16(args, out_width),
        3 => xor16(args, out_width),
        _ => identity(args, out_width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csum16_rfc1071_vector() {
        let data = Bits::from_bytes_be(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        assert_eq!(csum16(&[data], 16).to_u64(), Some(0x220d));
    }

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 check: "123456789" -> 0xCBF43926.
        let data = Bits::from_bytes_be(b"123456789");
        assert_eq!(crc32(&[data], 32).to_u64(), Some(0xCBF43926));
    }

    #[test]
    fn crc16_arc_check_value() {
        // CRC-16/ARC check: "123456789" -> 0xBB3D.
        let data = Bits::from_bytes_be(b"123456789");
        assert_eq!(crc16(&[data], 16).to_u64(), Some(0xBB3D));
    }

    #[test]
    fn odd_width_left_pads() {
        // A 12-bit value pads to 0x0A 0xBC before hashing.
        let v = Bits::from_u64(12, 0xABC);
        assert_eq!(xor16(&[v], 16).to_u64(), Some(0x0ABC));
    }
}
