//! Expression evaluation over the typed AST.
//!
//! Width inference mirrors the surface-language rules the production
//! lowering applies (context widths for unsized literals, operand-width
//! unification for binary operators, sign-aware casts and comparisons) but
//! computes values directly instead of emitting IR.

use p4t_frontend::ast::{BinaryOp, Expr, UnaryOp};
use p4t_frontend::typecheck::const_eval;
use p4t_frontend::types::Type;

use crate::bits::Bits;
use crate::eval::{unsupported, Binding, Ev, EvResult};

impl<'p> Ev<'p> {
    pub(crate) fn width_of(&self, t: &Type) -> Option<usize> {
        t.width(self.tenv).map(|w| w as usize)
    }

    pub(crate) fn static_width(&self, e: &Expr) -> Option<usize> {
        self.type_of(e).and_then(|t| self.width_of(&t))
    }

    pub(crate) fn is_signed(&self, e: &Expr) -> bool {
        matches!(self.type_of(e), Some(Type::Int(_)))
    }

    /// Best-effort static type of an expression, using the evaluator's own
    /// bindings (not the typechecker's scope, which is gone by now).
    pub(crate) fn type_of(&self, e: &Expr) -> Option<Type> {
        match e {
            Expr::Int { width: Some(w), signed, .. } => {
                Some(if *signed { Type::Int(*w) } else { Type::Bit(*w) })
            }
            Expr::Int { width: None, .. } => Some(Type::InfInt),
            Expr::Bool { .. } => Some(Type::Bool),
            Expr::Ident { name, .. } => match self.lookup(name) {
                Some(Binding::Val { ty, .. }) => Some(ty.clone()),
                Some(Binding::Inst { extern_name, type_args, .. }) => Some(Type::Extern {
                    name: extern_name.clone(),
                    type_args: type_args.clone(),
                }),
                Some(Binding::PacketIn) => Some(Type::PacketIn),
                Some(Binding::PacketOut) => Some(Type::PacketOut),
                None => {
                    if let Some((t, _)) = self.tenv.consts.get(name) {
                        return Some(t.clone());
                    }
                    // A table name in the current control.
                    let c = self.current_control()?;
                    c.tables.iter().find(|t| &t.name == name).map(|t| Type::Table(t.name.clone()))
                }
            },
            Expr::Member { base, member, .. } => {
                if let Expr::Ident { name, .. } = base.as_ref() {
                    if name == "error" {
                        return Some(Type::Error);
                    }
                    if self.lookup(name).is_none() {
                        if let Some((_, repr)) = self.tenv.enum_value(name, member) {
                            return Some(Type::Enum { name: name.clone(), repr });
                        }
                    }
                }
                let bt = self.type_of(base)?;
                match bt {
                    Type::Header(tn) | Type::Struct(tn) => self.tenv.field_type(&tn, member),
                    Type::Stack(elem, _) => match member.as_str() {
                        "next" | "last" => Some(*elem),
                        "lastIndex" | "size" => Some(Type::Bit(32)),
                        _ => None,
                    },
                    Type::ApplyResult { .. } => match member.as_str() {
                        "hit" | "miss" => Some(Type::Bool),
                        _ => None,
                    },
                    _ => None,
                }
            }
            Expr::Index { base, .. } => match self.type_of(base)? {
                Type::Stack(elem, _) => Some(*elem),
                _ => None,
            },
            Expr::Slice { hi, lo, .. } => {
                let h = const_eval(self.tenv, hi)?;
                let l = const_eval(self.tenv, lo)?;
                Some(Type::Bit((h - l + 1) as u32))
            }
            Expr::Unary { arg, .. } => self.type_of(arg),
            Expr::Binary { op, lhs, rhs, .. } => {
                use BinaryOp::*;
                match op {
                    Eq | Neq | Lt | Le | Gt | Ge | And | Or => Some(Type::Bool),
                    Concat => {
                        let lw = self.static_width(lhs)?;
                        let rw = self.static_width(rhs)?;
                        Some(Type::Bit((lw + rw) as u32))
                    }
                    Shl | Shr => self.type_of(lhs),
                    _ => {
                        let lt = self.type_of(lhs)?;
                        if self.width_of(&lt).is_some() {
                            Some(lt)
                        } else {
                            self.type_of(rhs)
                        }
                    }
                }
            }
            Expr::Ternary { then_e, else_e, .. } => {
                let t = self.type_of(then_e)?;
                if self.width_of(&t).is_some() {
                    Some(t)
                } else {
                    self.type_of(else_e)
                }
            }
            Expr::Cast { ty, arg, .. } => self.tenv.resolve(ty, arg.span()).ok(),
            Expr::Call { callee, type_args, .. } => {
                if let Expr::Member { base, member, .. } = callee.as_ref() {
                    match member.as_str() {
                        "isValid" => return Some(Type::Bool),
                        "lookahead" => {
                            let tr = type_args.first()?;
                            return self.tenv.resolve(tr, callee.span()).ok();
                        }
                        "length" => return Some(Type::Bit(32)),
                        "apply" => {
                            if let Some(Type::Table(t)) = self.type_of(base) {
                                return Some(Type::ApplyResult { table: t });
                            }
                            return None;
                        }
                        _ => {}
                    }
                    if let Some(Type::Extern { name, type_args: targs }) = self.type_of(base) {
                        let sig = self.tenv.extern_method(&name, &targs, member)?;
                        return self.tenv.resolve(&sig.ret, sig.span).ok();
                    }
                    return None;
                }
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    let sig = self.tenv.extern_fns.get(name)?;
                    return self.tenv.resolve(&sig.ret, sig.span).ok();
                }
                None
            }
            _ => None,
        }
    }

    /// Resolve an assignable expression to its environment path and type.
    pub(crate) fn lvalue(&self, e: &Expr) -> EvResult<(String, Type)> {
        match e {
            Expr::Ident { name, .. } => match self.lookup(name) {
                Some(Binding::Val { path, ty }) => Ok((path.clone(), ty.clone())),
                _ => unsupported(format!("unknown variable '{name}'")),
            },
            Expr::Member { base, member, .. } => {
                let (bp, bt) = self.lvalue(base)?;
                match bt {
                    Type::Header(tn) | Type::Struct(tn) => {
                        match self.tenv.field_type(&tn, member) {
                            Some(ft) => Ok((format!("{bp}.{member}"), ft)),
                            None => unsupported(format!("unknown field '{member}' of '{tn}'")),
                        }
                    }
                    Type::Stack(..) => {
                        unsupported(format!("stack pseudo-member '.{member}' is not an lvalue"))
                    }
                    _ => unsupported(format!("member '.{member}' on non-aggregate")),
                }
            }
            Expr::Index { base, index, .. } => {
                let (bp, bt) = self.lvalue(base)?;
                let Type::Stack(elem, _) = bt else {
                    return unsupported("index on non-stack");
                };
                let Some(i) = const_eval(self.tenv, index) else {
                    return unsupported("dynamic stack index in lvalue");
                };
                Ok((format!("{bp}[{i}]"), *elem))
            }
            _ => unsupported("unsupported lvalue"),
        }
    }

    pub(crate) fn eval_expr(&mut self, e: &Expr, ctx: Option<usize>) -> EvResult<Bits> {
        match e {
            Expr::Int { value, width, .. } => {
                let Some(w) = width.map(|w| w as usize).or(ctx) else {
                    return unsupported("cannot infer width of integer literal");
                };
                Ok(Bits::from_u128(w, *value))
            }
            Expr::Bool { value, .. } => Ok(Bits::from_bool(*value)),
            Expr::Ident { name, .. } => {
                if let Some(Binding::Val { path, ty }) = self.lookup(name) {
                    let (path, ty) = (path.clone(), ty.clone());
                    let Some(w) = self.width_of(&ty) else {
                        return unsupported(format!("'{name}' has no scalar width"));
                    };
                    return Ok(self.read_env(&path, w));
                }
                if let Some((t, v)) = self.tenv.consts.get(name) {
                    let w = self.width_of(t).or(ctx).unwrap_or(32);
                    return Ok(Bits::from_u128(w, *v));
                }
                unsupported(format!("unknown name '{name}'"))
            }
            Expr::Member { base, member, .. } => self.eval_member(e, base, member, ctx),
            Expr::Index { base, index, .. } => {
                let (bp, bt) = self.lvalue(base)?;
                let Type::Stack(elem, n) = bt else {
                    return unsupported("index on non-stack");
                };
                let Some(ew) = self.width_of(&elem) else {
                    return unsupported("stack element has no width");
                };
                if let Some(i) = const_eval(self.tenv, index) {
                    return Ok(self.read_env(&format!("{bp}[{i}]"), ew));
                }
                let idx = self.eval_expr(index, Some(32))?;
                match idx.to_u64() {
                    Some(i) if i < u64::from(n) => Ok(self.read_env(&format!("{bp}[{i}]"), ew)),
                    _ => Ok(Bits::zeros(ew)),
                }
            }
            Expr::Slice { base, hi, lo, .. } => {
                let (Some(h), Some(l)) =
                    (const_eval(self.tenv, hi), const_eval(self.tenv, lo))
                else {
                    return unsupported("slice bounds must be constant");
                };
                let b = self.eval_expr(base, None)?;
                Ok(b.extract(h as usize, l as usize))
            }
            Expr::Unary { op, arg, .. } => {
                let a = self.eval_expr(arg, ctx)?;
                Ok(match op {
                    UnaryOp::Not | UnaryOp::BitNot => a.not(),
                    UnaryOp::Neg => a.negate(),
                })
            }
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs, ctx),
            Expr::Ternary { cond, then_e, else_e, .. } => {
                let c = self.eval_expr(cond, Some(1))?;
                let w = ctx.or_else(|| self.static_width(then_e));
                if !c.is_zero() {
                    self.eval_expr(then_e, w)
                } else {
                    self.eval_expr(else_e, w)
                }
            }
            Expr::Cast { ty, arg, .. } => {
                let t = self
                    .tenv
                    .resolve(ty, e.span())
                    .map_err(|err| crate::RefError::Unsupported(format!("cast type: {err}")))?;
                let Some(tw) = self.width_of(&t) else {
                    return unsupported("cast to widthless type");
                };
                let a = self.eval_expr(arg, Some(tw))?;
                if a.width() == tw {
                    Ok(a)
                } else if self.is_signed(arg) && tw > a.width() {
                    Ok(a.sext(tw))
                } else {
                    Ok(a.cast(tw))
                }
            }
            Expr::Call { .. } => self.eval_call(e, ctx),
            Expr::List { .. } => unsupported("list expression outside extern argument"),
            Expr::Mask { .. } | Expr::Range { .. } | Expr::Dontcare { .. } => {
                unsupported("keyset expression outside keyset context")
            }
            Expr::Str { .. } => unsupported("string expression"),
        }
    }

    fn eval_member(
        &mut self,
        whole: &Expr,
        base: &Expr,
        member: &str,
        ctx: Option<usize>,
    ) -> EvResult<Bits> {
        if let Expr::Ident { name, .. } = base {
            if name == "error" {
                let code = self.tenv.error_code(member).unwrap_or(0);
                return Ok(Bits::from_u64(16, u64::from(code)));
            }
            if self.lookup(name).is_none() {
                if let Some((v, repr)) = self.tenv.enum_value(name, member) {
                    return Ok(Bits::from_u128(repr as usize, v));
                }
            }
        }
        // t.apply().hit / t.apply().miss — applying the table is a side
        // effect of evaluating the condition.
        if let Expr::Call { callee, .. } = base {
            if let Expr::Member { base: tb, member: m2, .. } = callee.as_ref() {
                if m2 == "apply" && (member == "hit" || member == "miss") {
                    let (tkey, _) = self.apply_table_expr(tb)?;
                    let hit = self.read_env(&format!("{tkey}.$hit"), 1);
                    return Ok(if member == "miss" { hit.not() } else { hit });
                }
            }
        }
        if let Some(Type::Stack(_, n)) = self.type_of(base) {
            match member {
                "lastIndex" => {
                    let (sp, _) = self.lvalue(base)?;
                    let next = self.read_env(&format!("{sp}.$next"), 32);
                    return Ok(next.sub(&Bits::from_u64(32, 1)));
                }
                "size" => {
                    return Ok(Bits::from_u64(ctx.unwrap_or(32), u64::from(n)));
                }
                "next" | "last" => return unsupported("whole-header stack access"),
                _ => {}
            }
        }
        // stack.last.field / stack.next.field
        if let Expr::Member { base: sb, member: sm, .. } = base {
            if (sm == "last" || sm == "next")
                && matches!(self.type_of(sb), Some(Type::Stack(..)))
            {
                return self.stack_field_read(sb, sm == "last", member);
            }
        }
        let (path, ty) = self.lvalue(whole)?;
        let Some(w) = self.width_of(&ty) else {
            return unsupported("member has no scalar width");
        };
        Ok(self.read_env(&path, w))
    }

    /// `stack.last.f` / `stack.next.f`: the element selected by the current
    /// next-index ($next - 1 for `last`, $next for `next`); out of range
    /// reads as zero, matching the lowered mux chain's default arm.
    fn stack_field_read(&mut self, stack: &Expr, last: bool, field: &str) -> EvResult<Bits> {
        let (sp, sty) = self.lvalue(stack)?;
        let Type::Stack(elem, n) = sty else {
            return unsupported("stack member on non-stack");
        };
        let Type::Header(hn) = *elem else {
            return unsupported("stack of non-headers");
        };
        let Some(ft) = self.tenv.field_type(&hn, field) else {
            return unsupported(format!("unknown field '{field}' of '{hn}'"));
        };
        let Some(w) = self.width_of(&ft) else {
            return unsupported("stack field has no width");
        };
        let next = self.read_env(&format!("{sp}.$next"), 32).to_u64().unwrap_or(u64::MAX);
        let target = if last { next.checked_sub(1) } else { Some(next) };
        match target {
            Some(i) if i < u64::from(n) => Ok(self.read_env(&format!("{sp}[{i}].{field}"), w)),
            _ => Ok(Bits::zeros(w)),
        }
    }

    fn eval_call(&mut self, e: &Expr, ctx: Option<usize>) -> EvResult<Bits> {
        let Expr::Call { callee, type_args, args, .. } = e else { unreachable!() };
        if let Expr::Member { base, member, .. } = callee.as_ref() {
            match member.as_str() {
                "isValid" => {
                    let (p, _) = self.lvalue(base)?;
                    let v = self
                        .env_raw(&format!("{p}.$valid"))
                        .map(|v| !v.is_zero())
                        .unwrap_or(false);
                    return Ok(Bits::from_bool(v));
                }
                "lookahead" => {
                    let Some(tr) = type_args.first() else {
                        return unsupported("lookahead without type argument");
                    };
                    let t = self
                        .tenv
                        .resolve(tr, e.span())
                        .map_err(|err| crate::RefError::Unsupported(format!("{err}")))?;
                    let Some(w) = self.width_of(&t) else {
                        return unsupported("lookahead type has no width");
                    };
                    return Ok(match self.pkt.peek(w) {
                        Some(v) => v,
                        None => self.garbage(w),
                    });
                }
                "length" => {
                    if matches!(self.type_of(base), Some(Type::PacketIn)) {
                        return Ok(self.read_env("$packet_length", 32));
                    }
                }
                "apply" => {
                    let (tkey, _) = self.apply_table_expr(base)?;
                    return Ok(self.read_env(&format!("{tkey}.$applied"), 1));
                }
                _ => {}
            }
            if let Some(Type::Extern { name: en, type_args: targs }) = self.type_of(base) {
                let Some(sig) = self.tenv.extern_method(&en, &targs, member) else {
                    return unsupported(format!("unknown method '{member}' of '{en}'"));
                };
                let ret = self.tenv.resolve(&sig.ret, sig.span).ok();
                let Some(w) = ret.as_ref().and_then(|t| self.width_of(t)) else {
                    return unsupported(format!("method '{member}' has no return width"));
                };
                let inst = match base.as_ref() {
                    Expr::Ident { name, .. } => match self.lookup(name) {
                        Some(Binding::Inst { path, .. }) => Some(path.clone()),
                        _ => None,
                    },
                    _ => None,
                };
                return self.exec_extern_value(member, inst.as_deref(), &sig, args, w);
            }
            return unsupported("unsupported call in expression");
        }
        if let Expr::Ident { name, .. } = callee.as_ref() {
            if let Some(sig) = self.tenv.extern_fns.get(name).cloned() {
                let ret = self.tenv.resolve(&sig.ret, sig.span).ok();
                let w = ret
                    .as_ref()
                    .and_then(|t| self.width_of(t))
                    .or(ctx)
                    .unwrap_or(32);
                return self.exec_extern_value(name, None, &sig, args, w);
            }
        }
        unsupported("unsupported call in expression")
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        ctx: Option<usize>,
    ) -> EvResult<Bits> {
        use BinaryOp::*;
        match op {
            Concat => {
                let a = self.eval_expr(lhs, None)?;
                let b = self.eval_expr(rhs, None)?;
                Ok(a.concat(&b))
            }
            Shl | Shr => {
                let a = self.eval_expr(lhs, ctx)?;
                let mut b = self.eval_expr(rhs, Some(a.width()))?;
                if b.width() != a.width() {
                    b = b.cast(a.width());
                }
                let signed = self.is_signed(lhs);
                Ok(match op {
                    Shl => a.shl(&b),
                    _ if signed => a.ashr(&b),
                    _ => a.lshr(&b),
                })
            }
            _ => {
                let ow = self
                    .static_width(lhs)
                    .or_else(|| self.static_width(rhs))
                    .or(if matches!(op, And | Or) { Some(1) } else { ctx });
                let a = self.eval_expr(lhs, ow)?;
                let b = self.eval_expr(rhs, Some(a.width()))?;
                if a.width() != b.width() {
                    return unsupported("operand width mismatch");
                }
                let signed = self.is_signed(lhs) || self.is_signed(rhs);
                Ok(match op {
                    Add => a.add(&b),
                    Sub => a.sub(&b),
                    Mul => a.mul(&b),
                    Div => a.udiv(&b),
                    Mod => a.urem(&b),
                    BitAnd | And => a.and(&b),
                    BitOr | Or => a.or(&b),
                    BitXor => a.xor(&b),
                    Eq => Bits::from_bool(a == b),
                    Neq => Bits::from_bool(a != b),
                    Lt => Bits::from_bool(if signed { a.slt(&b) } else { a.ult(&b) }),
                    Le => Bits::from_bool(if signed { a.sle(&b) } else { a.ule(&b) }),
                    Gt => Bits::from_bool(if signed { b.slt(&a) } else { b.ult(&a) }),
                    Ge => Bits::from_bool(if signed { b.sle(&a) } else { b.ule(&a) }),
                    Shl | Shr | Concat => unreachable!(),
                })
            }
        }
    }

    // ---- keysets (select cases and const table entries) ------------------

    pub(crate) fn select_case_matches(
        &mut self,
        keys: &[Bits],
        case_keys: &[Expr],
    ) -> EvResult<bool> {
        // A lone `_` matches regardless of arity.
        if case_keys.len() == 1 && matches!(case_keys[0], Expr::Dontcare { .. }) {
            return Ok(true);
        }
        for (k, ks) in keys.iter().zip(case_keys) {
            if !self.keyset_matches(k, ks)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    pub(crate) fn keyset_matches(&mut self, key: &Bits, ks: &Expr) -> EvResult<bool> {
        let kw = key.width();
        match ks {
            Expr::Dontcare { .. } => Ok(true),
            Expr::Mask { value, mask, .. } => {
                let v = self.eval_expr(value, Some(kw))?.cast(kw);
                let m = self.eval_expr(mask, Some(kw))?.cast(kw);
                Ok(key.and(&m) == v.and(&m))
            }
            Expr::Range { lo, hi, .. } => {
                let l = self.eval_expr(lo, Some(kw))?.cast(kw);
                let h = self.eval_expr(hi, Some(kw))?.cast(kw);
                Ok(l.ule(key) && key.ule(&h))
            }
            other => {
                let v = self.eval_expr(other, Some(kw))?.cast(kw);
                Ok(*key == v)
            }
        }
    }
}
