//! Evaluator state and pipeline drivers.
//!
//! The reference evaluator walks the typed AST directly. Its environment is
//! a flat `path -> Bits` map using the same canonical path grammar as the
//! production pipeline (`hdr.eth.dst`, `stack[2].$valid`, `Ctl::local`,
//! `Ctl::act::param`) because control-plane names and register instances
//! are part of the observable contract. Internal scratch behavior (garbage
//! pattern, temp names) is deliberately *different* so shared bugs cannot
//! hide.

use std::collections::HashMap;

use p4t_frontend::ast::{ControlDecl, Direction, Expr, Param, ParserDecl, Stmt, Transition};
use p4t_frontend::typecheck::CheckedProgram;
use p4t_frontend::types::{Type, TypeEnv};

use crate::bits::Bits;
use crate::{RefArch, RefError, RefInput, RefKey, RefRun};

/// The v1model drop port.
pub(crate) const DROP_PORT: u64 = 511;

/// The reference evaluator's own garbage byte pattern. The production
/// interpreter uses `0xA5` with a `%3` stride; we intentionally use a
/// different pattern so that any test whose outcome leaks uninitialized
/// bits past the spec's don't-care masks shows up as a divergence instead
/// of being silently self-consistent.
const REF_GARBAGE: u8 = 0x5C;

pub(crate) type EvResult<T> = Result<T, RefError>;

pub(crate) fn unsupported<T>(msg: impl Into<String>) -> EvResult<T> {
    Err(RefError::Unsupported(msg.into()))
}

pub(crate) fn trap<T>(msg: impl Into<String>) -> EvResult<T> {
    Err(RefError::Trap(msg.into()))
}

/// A cursor over the wire bit string, consuming from the MSB end.
pub(crate) struct Pkt {
    bits: Bits,
    pos: usize,
}

impl Pkt {
    pub(crate) fn new(bits: Bits) -> Pkt {
        Pkt { bits, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bits.width() - self.pos
    }

    pub(crate) fn read(&mut self, n: usize) -> Option<Bits> {
        if self.remaining() < n {
            return None;
        }
        if n == 0 {
            return Some(Bits::empty());
        }
        let w = self.bits.width();
        let v = self.bits.extract(w - self.pos - 1, w - self.pos - n);
        self.pos += n;
        Some(v)
    }

    pub(crate) fn peek(&self, n: usize) -> Option<Bits> {
        if self.remaining() < n || n == 0 {
            return if n == 0 { Some(Bits::empty()) } else { None };
        }
        let w = self.bits.width();
        Some(self.bits.extract(w - self.pos - 1, w - self.pos - n))
    }

    pub(crate) fn rest(&self) -> Bits {
        let rem = self.remaining();
        if rem == 0 {
            Bits::empty()
        } else {
            self.bits.extract(rem - 1, 0)
        }
    }
}

/// What a name in scope refers to.
#[derive(Clone, Debug)]
pub(crate) enum Binding {
    /// A data value (parameter root, local, action parameter) at an
    /// environment path.
    Val { path: String, ty: Type },
    PacketIn,
    PacketOut,
    /// An extern object instance (register, counter, meter, checksum unit).
    Inst { extern_name: String, type_args: Vec<Type>, path: String },
}

/// An installed control-plane table entry after decoding.
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub keys: Vec<RefKey>,
    pub action: String,
    pub args: Vec<Bits>,
    pub priority: u32,
}

pub(crate) struct Ev<'p> {
    pub prog: &'p p4t_frontend::ast::Program,
    pub tenv: &'p TypeEnv,
    pub arch: RefArch,
    pub env: HashMap<String, Bits>,
    pub frames: Vec<HashMap<String, Binding>>,
    /// Names of the enclosing blocks, innermost last (used to resolve
    /// actions/tables and to prefix local paths).
    pub block_stack: Vec<&'p ControlDecl>,
    pub block_names: Vec<String>,
    pub pkt: Pkt,
    pub emit_buf: Vec<Bits>,
    pub outputs: Vec<(u32, Vec<u8>)>,
    pub registers: HashMap<String, HashMap<u64, Bits>>,
    pub tables: HashMap<String, Vec<Entry>>,
    pub clone_sessions: HashMap<u64, u64>,
    pub parser_error: u64,
    pub dropped: bool,
    pub exited: bool,
    pub flags: HashMap<String, u64>,
    pub trace: Vec<String>,
    garbage_counter: u8,
    parser_loop_bound: u32,
    reads_parser_err_cache: Option<bool>,
}

impl<'p> Ev<'p> {
    pub(crate) fn new(
        checked: &'p CheckedProgram,
        arch: RefArch,
        _input: &RefInput,
        parser_loop_bound: u32,
    ) -> Ev<'p> {
        Ev {
            prog: &checked.program,
            tenv: &checked.env,
            arch,
            env: HashMap::new(),
            frames: Vec::new(),
            block_stack: Vec::new(),
            block_names: Vec::new(),
            pkt: Pkt::new(Bits::empty()),
            emit_buf: Vec::new(),
            outputs: Vec::new(),
            registers: HashMap::new(),
            tables: HashMap::new(),
            clone_sessions: HashMap::new(),
            parser_error: 0,
            dropped: false,
            exited: false,
            flags: HashMap::new(),
            trace: Vec::new(),
            garbage_counter: 0,
            parser_loop_bound,
            reads_parser_err_cache: None,
        }
    }

    // ---- control plane ---------------------------------------------------

    pub(crate) fn install(&mut self, input: &RefInput) -> EvResult<()> {
        for e in &input.entries {
            if e.table == "$clone_session" {
                let session = match e.keys.first() {
                    Some(RefKey::Exact { value }) => {
                        Bits::from_bytes_be(value).to_u64().unwrap_or(0)
                    }
                    _ => 0,
                };
                let port = e
                    .action_args
                    .first()
                    .map(|v| Bits::from_bytes_be(v).to_u64().unwrap_or(0))
                    .unwrap_or(0);
                self.clone_sessions.insert(session, port);
                continue;
            }
            let action = e.action.rsplit('.').next().unwrap_or(&e.action).to_string();
            let args = e.action_args.iter().map(|v| Bits::from_bytes_be(v)).collect();
            self.tables.entry(e.table.clone()).or_default().push(Entry {
                keys: e.keys.clone(),
                action,
                args,
                priority: e.priority,
            });
        }
        for r in &input.register_init {
            self.registers
                .entry(r.instance.clone())
                .or_default()
                .insert(r.index, Bits::from_bytes_be(&r.value));
        }
        Ok(())
    }

    // ---- environment -----------------------------------------------------

    pub(crate) fn garbage(&mut self, w: usize) -> Bits {
        self.garbage_counter = self.garbage_counter.wrapping_add(1);
        let mut v = Bits::zeros(w);
        for i in 0..w {
            if !(i + self.garbage_counter as usize).is_multiple_of(5) {
                v.set_bit(i, (REF_GARBAGE >> (i % 8)) & 1 == 1);
            }
        }
        v
    }

    /// Read a slot, applying the target's uninitialized-read policy:
    /// fields of an invalid header read as zero (v1model) or garbage
    /// (other targets) without being memoized; plain missing slots read
    /// as zero on zero-initializing targets and garbage elsewhere, and
    /// the first read sticks.
    pub(crate) fn read_env(&mut self, path: &str, w: usize) -> Bits {
        if let Some((parent, leaf)) = path.rsplit_once('.') {
            if !leaf.starts_with('$') {
                if let Some(v) = self.env.get(&format!("{parent}.$valid")) {
                    if v.is_zero() {
                        return if self.arch == RefArch::V1Model {
                            Bits::zeros(w)
                        } else {
                            self.garbage(w)
                        };
                    }
                }
            }
        }
        if let Some(v) = self.env.get(path) {
            return if v.width() == w { v.clone() } else { v.cast(w) };
        }
        let zeroed = self.arch == RefArch::V1Model
            || (matches!(self.arch, RefArch::Tna | RefArch::T2na)
                && (path.starts_with("meta.") || path.starts_with("emeta.")));
        let v = if zeroed { Bits::zeros(w) } else { self.garbage(w) };
        self.env.insert(path.to_string(), v.clone());
        v
    }

    pub(crate) fn write_env(&mut self, path: impl Into<String>, v: Bits) {
        self.env.insert(path.into(), v);
    }

    /// Raw environment read (no uninit policy, no memoization).
    pub(crate) fn env_raw(&self, path: &str) -> Option<&Bits> {
        self.env.get(path)
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<&Binding> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    pub(crate) fn declare(&mut self, name: &str, b: Binding) {
        if let Some(f) = self.frames.last_mut() {
            f.insert(name.to_string(), b);
        }
    }

    /// Innermost enclosing block name (for local path prefixes).
    pub(crate) fn block_name(&self) -> String {
        self.block_names.last().cloned().unwrap_or_default()
    }

    /// Innermost enclosing control, if any.
    pub(crate) fn current_control(&self) -> Option<&'p ControlDecl> {
        self.block_stack.last().copied()
    }

    // ---- frames and invalidation ----------------------------------------

    fn enter_frame(&mut self, params: &'p [Param], roots: &[&str]) -> EvResult<()> {
        let mut frame = HashMap::new();
        let mut it = roots.iter();
        let mut invalidations: Vec<(Type, String)> = Vec::new();
        for p in params {
            let ty = self
                .tenv
                .resolve(&p.ty, p.span)
                .map_err(|e| RefError::Unsupported(format!("parameter type: {e}")))?;
            match ty {
                Type::PacketIn => {
                    frame.insert(p.name.clone(), Binding::PacketIn);
                }
                Type::PacketOut => {
                    frame.insert(p.name.clone(), Binding::PacketOut);
                }
                _ => {
                    let Some(root) = it.next() else { continue };
                    if p.direction == Direction::Out {
                        invalidations.push((ty.clone(), root.to_string()));
                    }
                    frame.insert(
                        p.name.clone(),
                        Binding::Val { path: root.to_string(), ty },
                    );
                }
            }
        }
        self.frames.push(frame);
        for (ty, path) in invalidations {
            self.invalidate(&ty, &path);
        }
        Ok(())
    }

    pub(crate) fn invalidate(&mut self, ty: &Type, path: &str) {
        match ty {
            Type::Header(_) => {
                self.env.insert(format!("{path}.$valid"), Bits::zeros(1));
            }
            Type::Struct(sn) => {
                if let Some(fields) = self.tenv.fields_of(sn) {
                    let fields = fields.to_vec();
                    for f in fields {
                        self.invalidate(&f.ty, &format!("{path}.{}", f.name));
                    }
                }
            }
            Type::Stack(elem, n) => {
                if matches!(elem.as_ref(), Type::Header(_)) {
                    self.env.insert(format!("{path}.$next"), Bits::zeros(32));
                    for i in 0..*n {
                        self.env.insert(format!("{path}[{i}].$valid"), Bits::zeros(1));
                    }
                }
            }
            _ => {}
        }
    }

    // ---- top-level dispatch ----------------------------------------------

    pub(crate) fn run(&mut self, input: &RefInput) -> EvResult<()> {
        let Some(main) = self.prog.main_instantiation() else {
            return trap("program has no main instantiation");
        };
        let blocks: Vec<String> = main
            .args
            .iter()
            .map(|a| match a {
                Expr::Call { callee, .. } => match callee.as_ref() {
                    Expr::Ident { name, .. } => Ok(name.clone()),
                    _ => unsupported("malformed package argument"),
                },
                Expr::Ident { name, .. } => Ok(name.clone()),
                _ => unsupported("malformed package argument"),
            })
            .collect::<EvResult<_>>()?;
        self.write_env("$input_port", Bits::from_u64(9, u64::from(input.input_port)));
        match self.arch {
            RefArch::V1Model => self.run_v1model(&blocks, input),
            RefArch::Tna | RefArch::T2na => self.run_tofino(&blocks, input),
            RefArch::Ebpf => self.run_ebpf(&blocks, input),
        }
    }

    fn run_v1model(&mut self, blocks: &[String], input: &RefInput) -> EvResult<()> {
        if blocks.len() != 6 {
            return trap("V1Switch needs 6 blocks");
        }
        for (k, w) in [
            ("sm.ingress_port", 9),
            ("sm.egress_spec", 9),
            ("sm.egress_port", 9),
            ("sm.mcast_grp", 16),
            ("sm.checksum_error", 1),
            ("sm.parser_error", 16),
        ] {
            self.write_env(k, Bits::zeros(w));
        }
        self.write_env("sm.ingress_port", Bits::from_u64(9, u64::from(input.input_port)));
        self.pkt = Pkt::new(Bits::from_bytes_be(&input.input_packet));
        let mut rounds = 0u32;
        loop {
            self.run_parser_block(&blocks[0], &["hdr", "meta", "sm"])?;
            self.run_control_block(&blocks[1], &["hdr", "meta"])?;
            self.run_control_block(&blocks[2], &["hdr", "meta", "sm"])?;
            if self.flags.get("resubmit").copied().unwrap_or(0) == 1 && rounds < 2 {
                self.flags.insert("resubmit".into(), 0);
                rounds += 1;
                self.pkt = Pkt::new(Bits::from_bytes_be(&input.input_packet));
                self.emit_buf.clear();
                self.write_env("sm.egress_spec", Bits::zeros(9));
                self.trace.push("resubmitting".into());
                continue;
            }
            let spec = self
                .env_raw("sm.egress_spec")
                .cloned()
                .unwrap_or_else(|| Bits::zeros(9));
            if spec.to_u64() == Some(DROP_PORT) {
                self.dropped = true;
                self.trace.push("traffic manager: drop".into());
                return Ok(());
            }
            self.write_env("sm.egress_port", spec);
            self.run_control_block(&blocks[3], &["hdr", "meta", "sm"])?;
            self.run_control_block(&blocks[4], &["hdr", "meta"])?;
            self.run_control_block(&blocks[5], &["hdr"])?;
            let mut out = Bits::empty();
            for e in self.emit_buf.drain(..) {
                out = out.concat(&e);
            }
            out = out.concat(&self.pkt.rest());
            let trunc = self.flags.get("truncate_bytes").copied().unwrap_or(0) as usize;
            if trunc > 0 && trunc * 8 < out.width() {
                let w = out.width();
                out = out.extract(w - 1, w - trunc * 8);
            }
            if self.flags.get("recirculate").copied().unwrap_or(0) == 1 && rounds < 2 {
                self.flags.insert("recirculate".into(), 0);
                rounds += 1;
                self.pkt = Pkt::new(out);
                self.write_env("sm.egress_spec", Bits::zeros(9));
                self.trace.push("recirculating".into());
                continue;
            }
            let port = self
                .env_raw("sm.egress_port")
                .and_then(|v| v.to_u64())
                .unwrap_or(0);
            self.push_output(port, &out);
            if self.flags.get("clone_pending").copied().unwrap_or(0) == 1 {
                let session = self.flags.get("clone_session").copied().unwrap_or(0);
                let cport = self.clone_sessions.get(&session).copied().unwrap_or(0);
                self.push_output(cport, &out);
            }
            return Ok(());
        }
    }

    fn run_tofino(&mut self, blocks: &[String], input: &RefInput) -> EvResult<()> {
        if blocks.len() != 6 && blocks.len() != 7 {
            return trap("Pipeline needs 6 or 7 blocks");
        }
        let meta_bits = if self.arch == RefArch::T2na { 128 } else { 64 };
        if input.input_packet.len() < 64 {
            self.trace.push("packet below 64B minimum: dropped".into());
            return Ok(());
        }
        let pre = self.garbage(meta_bits);
        let fcs = self.garbage(32);
        let wire = pre.concat(&Bits::from_bytes_be(&input.input_packet)).concat(&fcs);
        self.pkt = Pkt::new(wire);
        let in_port = self.env_raw("$input_port").cloned().unwrap_or_else(|| Bits::zeros(9));
        self.write_env("ig_intr_md.ingress_port", in_port);
        for (k, w) in [
            ("ig_dprsr_md.drop_ctl", 3),
            ("eg_dprsr_md.drop_ctl", 3),
            ("ig_tm_md.bypass_egress", 1),
            ("ig_prsr_md.parser_err", 16),
            ("eg_prsr_md.parser_err", 16),
        ] {
            self.write_env(k, Bits::zeros(w));
        }
        self.flags.insert("in_ingress".into(), 1);
        self.run_parser_block(&blocks[0], &["hdr", "meta", "ig_intr_md"])?;
        if self.dropped {
            return Ok(());
        }
        self.run_control_block(
            &blocks[1],
            &["hdr", "meta", "ig_intr_md", "ig_prsr_md", "ig_dprsr_md", "ig_tm_md"],
        )?;
        self.run_control_block(&blocks[2], &["hdr", "meta", "ig_dprsr_md"])?;
        let mut tm_packet = Bits::empty();
        for e in self.emit_buf.drain(..) {
            tm_packet = tm_packet.concat(&e);
        }
        tm_packet = tm_packet.concat(&self.pkt.rest());
        if self.env_raw("ig_dprsr_md.drop_ctl").map(|v| !v.is_zero()).unwrap_or(false) {
            self.dropped = true;
            self.trace.push("TM: drop_ctl".into());
            return Ok(());
        }
        if !self.env.contains_key("ig_tm_md.ucast_egress_port") {
            self.dropped = true;
            self.trace.push("TM: no egress port".into());
            return Ok(());
        }
        let port = self
            .env_raw("ig_tm_md.ucast_egress_port")
            .and_then(|v| v.to_u64())
            .unwrap_or(0);
        let bypass = self
            .env_raw("ig_tm_md.bypass_egress")
            .map(|v| !v.is_zero())
            .unwrap_or(false);
        self.flags.insert("in_ingress".into(), 0);
        self.pkt = Pkt::new(tm_packet);
        if bypass {
            let rest = self.pkt.rest();
            self.push_output(port, &rest);
            return Ok(());
        }
        self.run_parser_block(&blocks[3], &["hdr", "emeta", "eg_intr_md"])?;
        if self.dropped {
            return Ok(());
        }
        self.write_env("eg_intr_md.egress_port", Bits::from_u64(9, port));
        self.run_control_block(
            &blocks[4],
            &["hdr", "emeta", "eg_intr_md", "eg_prsr_md", "eg_dprsr_md", "eg_oport_md"],
        )?;
        self.run_control_block(&blocks[5], &["hdr", "emeta", "eg_dprsr_md"])?;
        if self.env_raw("eg_dprsr_md.drop_ctl").map(|v| !v.is_zero()).unwrap_or(false) {
            self.dropped = true;
            return Ok(());
        }
        let mut out = Bits::empty();
        for e in self.emit_buf.drain(..) {
            out = out.concat(&e);
        }
        out = out.concat(&self.pkt.rest());
        self.push_output(port, &out);
        Ok(())
    }

    fn run_ebpf(&mut self, blocks: &[String], input: &RefInput) -> EvResult<()> {
        if blocks.len() != 2 {
            return trap("ebpfFilter needs 2 blocks");
        }
        self.pkt = Pkt::new(Bits::from_bytes_be(&input.input_packet));
        self.write_env("accept", Bits::zeros(1));
        self.run_parser_block(&blocks[0], &["hdr"])?;
        if self.dropped {
            return Ok(());
        }
        self.run_control_block(&blocks[1], &["hdr", "accept"])?;
        if !self.env_raw("accept").map(|v| !v.is_zero()).unwrap_or(false) {
            self.dropped = true;
            return Ok(());
        }
        // The ebpf model deparses by re-emitting every valid header of the
        // parsed header struct, in declaration order.
        let parser = self
            .prog
            .find_parser(&blocks[0])
            .ok_or_else(|| RefError::Trap(format!("unknown block '{}'", blocks[0])))?;
        let mut header_ty: Option<String> = None;
        for p in &parser.params {
            if let Ok(Type::Struct(sn)) = self.tenv.resolve(&p.ty, p.span) {
                header_ty = Some(sn);
                break;
            }
        }
        let mut out = Bits::empty();
        if let Some(sn) = header_ty {
            out = self.concat_valid_headers(&sn, "hdr", out);
        }
        out = out.concat(&self.pkt.rest());
        self.push_output(0, &out);
        Ok(())
    }

    fn concat_valid_headers(&mut self, struct_name: &str, base: &str, mut acc: Bits) -> Bits {
        let Some(fields) = self.tenv.fields_of(struct_name) else { return acc };
        let fields = fields.to_vec();
        for f in fields {
            let fp = format!("{base}.{}", f.name);
            match &f.ty {
                Type::Header(hn) => {
                    let valid = self
                        .env_raw(&format!("{fp}.$valid"))
                        .map(|v| !v.is_zero())
                        .unwrap_or(false);
                    if valid {
                        acc = self.concat_header_fields(hn, &fp, acc);
                    }
                }
                Type::Struct(sn) => {
                    acc = self.concat_valid_headers(sn, &fp, acc);
                }
                _ => {}
            }
        }
        acc
    }

    fn concat_header_fields(&mut self, header_name: &str, base: &str, mut acc: Bits) -> Bits {
        let Some(fields) = self.tenv.fields_of(header_name) else { return acc };
        let fields = fields.to_vec();
        for f in fields {
            let w = f.ty.width(self.tenv).unwrap_or(0) as usize;
            if w == 0 {
                continue;
            }
            let v = self.read_env(&format!("{base}.{}", f.name), w);
            acc = acc.concat(&v);
        }
        acc
    }

    pub(crate) fn push_output(&mut self, port: u64, bits: &Bits) {
        let w = bits.width();
        let padded = if !w.is_multiple_of(8) { bits.concat(&Bits::zeros(8 - w % 8)) } else { bits.clone() };
        self.outputs.push((port as u32, padded.to_bytes_be()));
    }

    // ---- block runners ---------------------------------------------------

    fn run_parser_block(&mut self, name: &str, roots: &[&str]) -> EvResult<()> {
        let Some(p) = self.prog.find_parser(name) else {
            return trap(format!("unknown block '{name}'"));
        };
        self.run_parser(p, roots)
    }

    fn run_parser(&mut self, p: &'p ParserDecl, roots: &[&str]) -> EvResult<()> {
        self.enter_frame(&p.params, roots)?;
        self.block_names.push(p.name.clone());
        let result = self.run_parser_body(p);
        self.block_names.pop();
        self.frames.pop();
        let rejected = result?;
        if rejected {
            self.on_parser_reject();
        }
        Ok(())
    }

    fn run_parser_body(&mut self, p: &'p ParserDecl) -> EvResult<bool> {
        let mut state = "start".to_string();
        let mut visits = 0u32;
        while state != "accept" && state != "reject" {
            visits += 1;
            if visits > self.parser_loop_bound {
                return trap("parser loop bound exceeded");
            }
            let Some(st) = p.states.iter().find(|s| s.name == state) else {
                return trap(format!("unknown state '{state}'"));
            };
            let mut rejected = false;
            // Parser locals behave as a prelude of the start state: they
            // re-execute on every visit of `start`, matching the lowering.
            if state == "start" {
                for l in &p.locals {
                    if !self.exec_stmt(l)? {
                        rejected = true;
                        break;
                    }
                }
            }
            if !rejected {
                for s in &st.stmts {
                    if !self.exec_stmt(s)? {
                        rejected = true;
                        break;
                    }
                }
            }
            if rejected {
                state = "reject".to_string();
                break;
            }
            state = match &st.transition {
                Transition::Direct(n) => n.clone(),
                Transition::Select { exprs, cases, .. } => {
                    let mut keys = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        keys.push(self.eval_expr(e, None)?);
                    }
                    let mut next = None;
                    for case in cases {
                        if self.select_case_matches(&keys, &case.keys)? {
                            next = Some(case.next_state.clone());
                            break;
                        }
                    }
                    match next {
                        Some(n) => n,
                        None => {
                            // core.p4 error.NoMatch
                            self.parser_error = 2;
                            "reject".to_string()
                        }
                    }
                }
            };
        }
        Ok(state == "reject")
    }

    fn on_parser_reject(&mut self) {
        match self.arch {
            RefArch::V1Model => {
                let pe = self.parser_error;
                self.write_env("sm.parser_error", Bits::from_u64(16, pe));
                self.trace.push("parser reject: continue to ingress".into());
            }
            RefArch::Tna | RefArch::T2na => {
                let pe = self.parser_error;
                if self.flags.get("in_ingress").copied().unwrap_or(1) == 1 {
                    self.write_env("ig_prsr_md.parser_err", Bits::from_u64(16, pe));
                    if !self.program_reads_parser_err() {
                        self.dropped = true;
                        self.trace.push("tofino: ingress parser reject -> drop".into());
                    }
                } else {
                    self.write_env("eg_prsr_md.parser_err", Bits::from_u64(16, pe));
                }
            }
            RefArch::Ebpf => {
                self.dropped = true;
                self.trace.push("ebpf: parser reject -> drop".into());
            }
        }
    }

    /// Mirror of the production "does any control read parser_err" probe,
    /// deliberately limited to the same statement shapes (assignment
    /// values, if conditions and branches) over control applies and action
    /// bodies.
    fn program_reads_parser_err(&mut self) -> bool {
        if let Some(v) = self.reads_parser_err_cache {
            return v;
        }
        fn expr_reads(e: &Expr) -> bool {
            match e {
                Expr::Ident { name, .. } => name.contains("parser_err"),
                Expr::Member { base, member, .. } => {
                    member.contains("parser_err") || expr_reads(base)
                }
                Expr::Unary { arg, .. } => expr_reads(arg),
                Expr::Binary { lhs, rhs, .. } => expr_reads(lhs) || expr_reads(rhs),
                Expr::Slice { base, .. } => expr_reads(base),
                Expr::Cast { arg, .. } => expr_reads(arg),
                Expr::Ternary { cond, then_e, else_e, .. } => {
                    expr_reads(cond) || expr_reads(then_e) || expr_reads(else_e)
                }
                _ => false,
            }
        }
        fn stmt_reads(s: &Stmt) -> bool {
            match s {
                Stmt::Assign { rhs, .. } => expr_reads(rhs),
                Stmt::VarDecl { init: Some(e), .. } | Stmt::ConstDecl { init: e, .. } => {
                    expr_reads(e)
                }
                Stmt::If { cond, then_s, else_s, .. } => {
                    expr_reads(cond)
                        || stmt_reads(then_s)
                        || else_s.as_deref().map(stmt_reads).unwrap_or(false)
                }
                Stmt::Block { stmts, .. } => stmts.iter().any(stmt_reads),
                _ => false,
            }
        }
        let mut reads = false;
        for c in self.prog.controls() {
            if c.apply.iter().any(stmt_reads)
                || c.actions.iter().any(|a| a.body.iter().any(stmt_reads))
            {
                reads = true;
                break;
            }
        }
        self.reads_parser_err_cache = Some(reads);
        reads
    }

    fn run_control_block(&mut self, name: &str, roots: &[&str]) -> EvResult<()> {
        if self.dropped {
            return Ok(());
        }
        let Some(c) = self.prog.find_control(name) else {
            return trap(format!("unknown block '{name}'"));
        };
        self.enter_frame(&c.params, roots)?;
        // Bind extern object instances declared in this control.
        for inst in &c.instantiations {
            if let Ok(Type::Extern { name: en, type_args }) =
                self.tenv.resolve(&inst.ty, inst.span)
            {
                self.declare(
                    &inst.name,
                    Binding::Inst {
                        extern_name: en,
                        type_args,
                        path: format!("{}::{}", c.name, inst.name),
                    },
                );
            }
        }
        self.block_stack.push(c);
        self.block_names.push(c.name.clone());
        self.exited = false;
        let mut result = Ok(());
        for s in c.locals.iter().chain(c.apply.iter()) {
            match self.exec_stmt(s) {
                Ok(true) => {
                    if self.exited {
                        break;
                    }
                }
                Ok(false) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.exited = false;
        self.block_names.pop();
        self.block_stack.pop();
        self.frames.pop();
        result
    }

    // ---- result ----------------------------------------------------------

    pub(crate) fn into_run(self) -> RefRun {
        let mut register_final = HashMap::new();
        for (inst, cells) in self.registers {
            for (idx, v) in cells {
                let bytes = v.cast(v.width().div_ceil(8) * 8).to_bytes_be();
                register_final.insert((inst.clone(), idx), bytes);
            }
        }
        RefRun { outputs: self.outputs, register_final, trace: self.trace }
    }
}
