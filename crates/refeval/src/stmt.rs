//! Statement execution: assignments, control flow, parser calls, table
//! application, actions, and the extern surface.
//!
//! The statement protocol mirrors the production interpreter: `Ok(false)`
//! signals a parser reject (extract past end, failed `verify`, stack
//! overflow), and the `exited` flag models `exit`/`return` unwinding to the
//! end of the enclosing block.

use std::cmp::Reverse;
use std::collections::HashMap;

use p4t_frontend::ast::{
    find_annotation, ActionDecl, ControlDecl, Direction, Expr, ExternFunction, Stmt, TableDecl,
};
use p4t_frontend::typecheck::const_eval;
use p4t_frontend::types::Type;

use crate::bits::Bits;
use crate::eval::{trap, unsupported, Binding, Ev, EvResult, DROP_PORT};
use crate::hashes;
use crate::RefKey;

/// A classified extern argument. `In` arguments stay lazy so evaluation
/// order (and therefore the garbage counter) follows each extern's own
/// access pattern, as in the production interpreter.
enum ExtArg<'a> {
    Out(String, usize),
    In(&'a Expr),
    InList(&'a [Expr]),
    /// Aggregate passed by reference; the modeled externs never read these.
    Ref,
}

impl<'p> Ev<'p> {
    pub(crate) fn exec_stmt(&mut self, s: &'p Stmt) -> EvResult<bool> {
        if self.exited {
            return Ok(true);
        }
        match s {
            Stmt::VarDecl { ty, name, init, span } => {
                let t = self
                    .tenv
                    .resolve(ty, *span)
                    .map_err(|e| crate::RefError::Unsupported(format!("{e}")))?;
                let path = format!("{}::{}", self.block_name(), name);
                if matches!(t, Type::Struct(_) | Type::Header(_)) {
                    if init.is_some() {
                        return unsupported("aggregate initializers are not supported");
                    }
                    self.decl_aggregate(&t, &path);
                    self.declare(name, Binding::Val { path, ty: t });
                    return Ok(true);
                }
                let Some(w) = self.width_of(&t) else {
                    return unsupported(format!("local '{name}' has no width"));
                };
                let v = match init {
                    Some(e) => self.eval_expr(e, Some(w))?,
                    None => self.decl_value(w),
                };
                self.write_env(path.clone(), v);
                self.declare(name, Binding::Val { path, ty: t });
                Ok(true)
            }
            Stmt::ConstDecl { ty, name, init, span } => {
                let t = self
                    .tenv
                    .resolve(ty, *span)
                    .map_err(|e| crate::RefError::Unsupported(format!("{e}")))?;
                let Some(w) = self.width_of(&t) else {
                    return unsupported("aggregate constants are not supported");
                };
                let path = format!("{}::{}", self.block_name(), name);
                let v = self.eval_expr(init, Some(w))?;
                self.write_env(path.clone(), v);
                self.declare(name, Binding::Val { path, ty: t });
                Ok(true)
            }
            Stmt::Assign { lhs, rhs, .. } => self.exec_assign(lhs, rhs),
            Stmt::Call { call, .. } => self.exec_call(call),
            Stmt::If { cond, then_s, else_s, .. } => {
                let c = self.eval_expr(cond, Some(1))?;
                if !c.is_zero() {
                    self.exec_stmt(then_s)
                } else if let Some(e) = else_s {
                    self.exec_stmt(e)
                } else {
                    Ok(true)
                }
            }
            Stmt::Switch { scrutinee, cases, .. } => {
                let table = switch_table(scrutinee)
                    .ok_or_else(|| crate::RefError::Unsupported(
                        "switch scrutinee must be table.apply().action_run".into(),
                    ))?;
                let (_, action) = self.apply_table_expr(table)?;
                let hit_idx = cases
                    .iter()
                    .position(|c| {
                        c.label
                            .as_deref()
                            .map(|l| l.rsplit('.').next().unwrap_or(l) == action)
                            .unwrap_or(false)
                    })
                    .or_else(|| cases.iter().position(|c| c.label.is_none()));
                if let Some(i) = hit_idx {
                    // Fallthrough labels share the next concrete body.
                    if let Some(body) =
                        cases[i..].iter().find_map(|c| c.body.as_ref())
                    {
                        // Case bodies swallow the parser-reject signal:
                        // switch only appears in controls.
                        let _ = self.exec_stmt(body)?;
                    }
                }
                Ok(true)
            }
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    if !self.exec_stmt(st)? {
                        return Ok(false);
                    }
                    if self.exited {
                        break;
                    }
                }
                Ok(true)
            }
            Stmt::Exit { .. } | Stmt::Return { .. } => {
                self.exited = true;
                Ok(true)
            }
            Stmt::Empty { .. } => Ok(true),
        }
    }

    fn decl_value(&mut self, w: usize) -> Bits {
        if self.arch == crate::RefArch::V1Model {
            Bits::zeros(w)
        } else {
            self.garbage(w)
        }
    }

    fn decl_aggregate(&mut self, t: &Type, path: &str) {
        match t {
            Type::Header(hn) => {
                let hn = hn.clone();
                self.decl_fields(&hn, path);
                self.write_env(format!("{path}.$valid"), Bits::zeros(1));
            }
            Type::Struct(sn) => {
                let sn = sn.clone();
                self.decl_fields(&sn, path);
            }
            _ => {}
        }
    }

    fn decl_fields(&mut self, type_name: &str, base: &str) {
        let tenv = self.tenv;
        let Some(fields) = tenv.fields_of(type_name) else { return };
        for f in fields {
            let fp = format!("{base}.{}", f.name);
            match &f.ty {
                Type::Struct(sn) => self.decl_fields(sn, &fp),
                Type::Header(hn) => {
                    let v = self.decl_value(1);
                    self.write_env(format!("{fp}.$valid"), v);
                    self.decl_fields(hn, &fp);
                }
                Type::Stack(elem, n) => {
                    if let Type::Header(hn) = elem.as_ref() {
                        let v = self.decl_value(32);
                        self.write_env(format!("{fp}.$next"), v);
                        for i in 0..*n {
                            let ep = format!("{fp}[{i}]");
                            let v = self.decl_value(1);
                            self.write_env(format!("{ep}.$valid"), v);
                            self.decl_fields(hn, &ep);
                        }
                    }
                }
                ft => {
                    if let Some(w) = ft.width(tenv) {
                        let v = self.decl_value(w as usize);
                        self.write_env(fp, v);
                    }
                }
            }
        }
    }

    // ---- assignment ------------------------------------------------------

    fn exec_assign(&mut self, lhs: &Expr, rhs: &Expr) -> EvResult<bool> {
        let Some(lt) = self.type_of(lhs) else {
            return unsupported("cannot type assignment target");
        };
        if let Type::Struct(tn) | Type::Header(tn) = &lt {
            let (dst, _) = self.lvalue(lhs)?;
            let (src, _) = self.lvalue(rhs)?;
            for (rel, w) in self.leaves_rel(tn)? {
                let v = self.read_env(&format!("{src}.{rel}"), w);
                self.write_env(format!("{dst}.{rel}"), v);
            }
            if matches!(lt, Type::Header(_)) {
                let v = self.read_env(&format!("{src}.$valid"), 1);
                self.write_env(format!("{dst}.$valid"), v);
            }
            return Ok(true);
        }
        let Some(w) = self.width_of(&lt) else {
            return unsupported("assignment target has no width");
        };
        if let Expr::Slice { base, hi, lo, .. } = lhs {
            let (Some(h), Some(l)) =
                (const_eval(self.tenv, hi), const_eval(self.tenv, lo))
            else {
                return unsupported("slice bounds must be constant");
            };
            let (h, l) = (h as usize, l as usize);
            let Some(bt) = self.type_of(base) else {
                return unsupported("cannot type slice base");
            };
            let Some(bw) = self.width_of(&bt) else {
                return unsupported("slice base has no width");
            };
            let (path, _) = self.lvalue(base)?;
            // Parts evaluate high-to-low, matching the lowered
            // read-modify-write's runtime order.
            let mut parts: Vec<Bits> = Vec::new();
            if h + 1 < bw {
                parts.push(self.read_env(&path, bw).extract(bw - 1, h + 1));
            }
            parts.push(self.eval_expr(rhs, Some(h - l + 1))?);
            if l > 0 {
                parts.push(self.read_env(&path, bw).extract(l - 1, 0));
            }
            let mut combined = Bits::empty();
            for p in parts {
                combined = combined.concat(&p);
            }
            self.write_env(path, combined);
            return Ok(true);
        }
        let v = self.eval_expr(rhs, Some(w))?;
        let (path, _) = self.lvalue(lhs)?;
        self.write_env(path, v);
        Ok(true)
    }

    fn leaves_rel(&self, type_name: &str) -> EvResult<Vec<(String, usize)>> {
        let mut out = Vec::new();
        self.collect_leaves_rel(type_name, "", &mut out)?;
        Ok(out)
    }

    fn collect_leaves_rel(
        &self,
        type_name: &str,
        base: &str,
        out: &mut Vec<(String, usize)>,
    ) -> EvResult<()> {
        let Some(fields) = self.tenv.fields_of(type_name) else {
            return unsupported(format!("unknown aggregate '{type_name}'"));
        };
        for f in fields {
            let fp = if base.is_empty() {
                f.name.clone()
            } else {
                format!("{base}.{}", f.name)
            };
            match &f.ty {
                Type::Struct(sn) => self.collect_leaves_rel(sn, &fp, out)?,
                Type::Header(hn) => {
                    out.push((format!("{fp}.$valid"), 1));
                    self.collect_leaves_rel(hn, &fp, out)?;
                }
                Type::Stack(elem, n) => {
                    if let Type::Header(hn) = elem.as_ref() {
                        out.push((format!("{fp}.$next"), 32));
                        for i in 0..*n {
                            let ep = format!("{fp}[{i}]");
                            out.push((format!("{ep}.$valid"), 1));
                            self.collect_leaves_rel(hn, &ep, out)?;
                        }
                    }
                }
                ft => {
                    let Some(w) = ft.width(self.tenv) else {
                        return unsupported(format!("field '{fp}' has no width"));
                    };
                    out.push((fp, w as usize));
                }
            }
        }
        Ok(())
    }

    // ---- calls -----------------------------------------------------------

    fn exec_call(&mut self, call: &Expr) -> EvResult<bool> {
        let Expr::Call { callee, args, .. } = call else {
            return unsupported("malformed call statement");
        };
        if let Expr::Member { base, member, .. } = callee.as_ref() {
            match member.as_str() {
                "extract" if matches!(self.type_of(base), Some(Type::PacketIn)) => {
                    return self.exec_extract(args);
                }
                "advance" if matches!(self.type_of(base), Some(Type::PacketIn)) => {
                    let n = self.eval_expr(&args[0], Some(32))?.to_u64().unwrap_or(0);
                    return match self.pkt.read(n as usize) {
                        Some(_) => Ok(true),
                        None => {
                            // core.p4 error.PacketTooShort
                            self.parser_error = 1;
                            Ok(false)
                        }
                    };
                }
                "emit" if matches!(self.type_of(base), Some(Type::PacketOut)) => {
                    self.exec_emit_arg(&args[0])?;
                    return Ok(true);
                }
                "setValid" | "setInvalid" => {
                    let (p, _) = self.lvalue(base)?;
                    self.write_env(
                        format!("{p}.$valid"),
                        Bits::from_bool(member == "setValid"),
                    );
                    return Ok(true);
                }
                "apply" if matches!(self.type_of(base), Some(Type::Table(_))) => {
                    self.apply_table_expr(base)?;
                    return Ok(true);
                }
                "push_front" | "pop_front"
                    if matches!(self.type_of(base), Some(Type::Stack(..))) =>
                {
                    let count = args
                        .first()
                        .and_then(|a| const_eval(self.tenv, a))
                        .unwrap_or(1) as usize;
                    return self.exec_stack_op(base, member == "push_front", count);
                }
                _ => {}
            }
            if let Some(Type::Extern { name: en, type_args }) = self.type_of(base) {
                let Some(sig) = self.tenv.extern_method(&en, &type_args, member) else {
                    return trap(format!("unimplemented extern '{member}'"));
                };
                let inst = match base.as_ref() {
                    Expr::Ident { name, .. } => match self.lookup(name) {
                        Some(Binding::Inst { path, .. }) => path.clone(),
                        _ => name.clone(),
                    },
                    _ => String::new(),
                };
                let cargs = self.classify_args(&sig, args)?;
                self.exec_extern_arm(member, Some(&inst), &cargs)?;
                return Ok(true);
            }
            return unsupported("unsupported method call");
        }
        if let Expr::Ident { name, .. } = callee.as_ref() {
            if name == "verify" && args.len() == 2 {
                let cond = self.eval_expr(&args[0], Some(1))?;
                let code = const_eval(self.tenv, &args[1]).unwrap_or(0);
                if cond.is_zero() {
                    self.parser_error = code as u64;
                    return Ok(false);
                }
                return Ok(true);
            }
            if name == "NoAction" {
                return Ok(true);
            }
            if let Some((c, a)) = self.find_action(name) {
                let mut vals = Vec::with_capacity(args.len());
                let params = a.params.clone();
                for (p, arg) in params.iter().zip(args) {
                    let w = self
                        .tenv
                        .resolve(&p.ty, p.span)
                        .ok()
                        .and_then(|t| self.width_of(&t));
                    vals.push(self.eval_expr(arg, w)?);
                }
                let (cn, an) = (c.name.clone(), a.name.clone());
                self.call_action(&cn, &an, vals)?;
                return Ok(true);
            }
            if let Some(sig) = self.tenv.extern_fns.get(name).cloned() {
                let cargs = self.classify_args(&sig, args)?;
                self.exec_extern_arm(name, None, &cargs)?;
                return Ok(true);
            }
            return unsupported(format!("unknown function '{name}'"));
        }
        unsupported("unsupported call statement")
    }

    // ---- parser packet operations ----------------------------------------

    fn exec_extract(&mut self, args: &[Expr]) -> EvResult<bool> {
        let target = &args[0];
        let vb_len = if args.len() == 2 {
            self.eval_expr(&args[1], Some(32))?.to_u64().unwrap_or(0)
        } else {
            0
        };
        if let Expr::Member { base, member, .. } = target {
            if member == "next" {
                if let Some(Type::Stack(elem, n)) = self.type_of(base) {
                    let Type::Header(hn) = *elem else {
                        return unsupported("stack of non-headers");
                    };
                    let (sp, _) = self.lvalue(base)?;
                    let next =
                        self.read_env(&format!("{sp}.$next"), 32).to_u64().unwrap_or(u64::MAX);
                    if next >= u64::from(n) {
                        self.parser_error =
                            u64::from(self.tenv.error_code("StackOutOfBounds").unwrap_or(3));
                        return Ok(false);
                    }
                    if !self.do_extract(&format!("{sp}[{next}]"), &hn, vb_len)? {
                        return Ok(false);
                    }
                    self.write_env(format!("{sp}.$next"), Bits::from_u64(32, next + 1));
                    return Ok(true);
                }
            }
        }
        let (path, ty) = self.lvalue(target)?;
        let Type::Header(hn) = ty else {
            return unsupported("extract target must be a header");
        };
        self.do_extract(&path, &hn, vb_len)
    }

    fn do_extract(&mut self, path: &str, header: &str, vb_len: u64) -> EvResult<bool> {
        let tenv = self.tenv;
        let Some(fields) = tenv.fields_of(header) else {
            return trap(format!("unknown header '{header}'"));
        };
        let need: usize = fields
            .iter()
            .map(|f| match f.ty {
                Type::Varbit(_) => vb_len as usize,
                _ => f.ty.width(tenv).unwrap_or(0) as usize,
            })
            .sum();
        if self.pkt.remaining() < need {
            // core.p4 error.PacketTooShort — consumes nothing.
            self.parser_error = 1;
            return Ok(false);
        }
        for f in fields {
            match f.ty {
                Type::Varbit(max) => {
                    let v = self.pkt.read(vb_len as usize).unwrap_or_else(Bits::empty);
                    self.write_env(format!("{path}.{}", f.name), v.cast(max as usize));
                    self.write_env(
                        format!("{path}.{}.$len", f.name),
                        Bits::from_u64(32, vb_len),
                    );
                }
                ref ft => {
                    let w = ft.width(tenv).unwrap_or(0) as usize;
                    let v = self.pkt.read(w).unwrap_or_else(Bits::empty);
                    self.write_env(format!("{path}.{}", f.name), v);
                }
            }
        }
        self.write_env(format!("{path}.$valid"), Bits::from_bool(true));
        Ok(true)
    }

    fn exec_emit_arg(&mut self, arg: &Expr) -> EvResult<()> {
        let (path, ty) = self.lvalue(arg)?;
        match ty {
            Type::Header(hn) => self.exec_emit(&path, &hn),
            Type::Struct(sn) => self.emit_struct(&sn, &path),
            Type::Stack(elem, n) => {
                if let Type::Header(hn) = elem.as_ref() {
                    for i in 0..n {
                        self.exec_emit(&format!("{path}[{i}]"), hn)?;
                    }
                }
                Ok(())
            }
            _ => Err(crate::RefError::Unsupported("cannot emit this type".into())),
        }
    }

    fn exec_emit(&mut self, path: &str, header: &str) -> EvResult<()> {
        let valid = self
            .env_raw(&format!("{path}.$valid"))
            .map(|v| !v.is_zero())
            .unwrap_or(false);
        if !valid {
            return Ok(());
        }
        let tenv = self.tenv;
        let Some(fields) = tenv.fields_of(header) else { return Ok(()) };
        let mut acc = Bits::empty();
        for f in fields {
            match f.ty {
                Type::Varbit(max) => {
                    let data = self.read_env(&format!("{path}.{}", f.name), max as usize);
                    let len = self
                        .env_raw(&format!("{path}.{}.$len", f.name))
                        .and_then(|v| v.to_u64())
                        .unwrap_or(0) as usize;
                    if len > 0 {
                        acc = acc.concat(&data.extract(len - 1, 0));
                    }
                }
                ref ft => {
                    let w = ft.width(tenv).unwrap_or(0) as usize;
                    if w == 0 {
                        continue;
                    }
                    let v = self.read_env(&format!("{path}.{}", f.name), w);
                    acc = acc.concat(&v);
                }
            }
        }
        self.emit_buf.push(acc);
        Ok(())
    }

    fn emit_struct(&mut self, struct_name: &str, path: &str) -> EvResult<()> {
        let tenv = self.tenv;
        let Some(fields) = tenv.fields_of(struct_name) else { return Ok(()) };
        for f in fields {
            let fp = format!("{path}.{}", f.name);
            match &f.ty {
                Type::Header(hn) => self.exec_emit(&fp, hn)?,
                Type::Struct(sn) => self.emit_struct(sn, &fp)?,
                Type::Stack(elem, n) => {
                    if let Type::Header(hn) = elem.as_ref() {
                        for i in 0..*n {
                            self.exec_emit(&format!("{fp}[{i}]"), hn)?;
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn exec_stack_op(&mut self, base: &Expr, push: bool, count: usize) -> EvResult<bool> {
        let (sp, _) = self.lvalue(base)?;
        let mut size = 0usize;
        while self.env.contains_key(&format!("{sp}[{size}].$valid")) && size < 64 {
            size += 1;
        }
        if size == 0 {
            return Ok(true);
        }
        let snapshot: Vec<Vec<(String, Bits)>> = (0..size)
            .map(|i| {
                let prefix = format!("{sp}[{i}].");
                self.env
                    .iter()
                    .filter(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, v)| (k[prefix.len()..].to_string(), v.clone()))
                    .collect()
            })
            .collect();
        for i in 0..size {
            let prefix = format!("{sp}[{i}].");
            self.env.retain(|k, _| !k.starts_with(&prefix));
            let from = if push {
                i.checked_sub(count)
            } else {
                i.checked_add(count).filter(|&j| j < size)
            };
            match from {
                Some(src) => {
                    for (suffix, v) in &snapshot[src] {
                        self.env.insert(format!("{prefix}{suffix}"), v.clone());
                    }
                }
                None => {
                    self.env.insert(format!("{sp}[{i}].$valid"), Bits::zeros(1));
                }
            }
        }
        let next = self
            .env_raw(&format!("{sp}.$next"))
            .and_then(|v| v.to_u64())
            .unwrap_or(0);
        let new = if push {
            (next + count as u64).min(size as u64)
        } else {
            next.saturating_sub(count as u64)
        };
        self.write_env(format!("{sp}.$next"), Bits::from_u64(32, new));
        Ok(true)
    }

    // ---- tables and actions ----------------------------------------------

    fn find_table(&self, name: &str) -> Option<(&'p ControlDecl, &'p TableDecl)> {
        if let Some(c) = self.current_control() {
            if let Some(t) = c.tables.iter().find(|t| t.name == name) {
                return Some((c, t));
            }
        }
        for c in self.prog.controls() {
            if let Some(t) = c.tables.iter().find(|t| t.name == name) {
                return Some((c, t));
            }
        }
        None
    }

    fn find_action(&self, name: &str) -> Option<(&'p ControlDecl, &'p ActionDecl)> {
        let bare = name.rsplit('.').next().unwrap_or(name);
        if let Some(c) = self.current_control() {
            if let Some(a) = c.actions.iter().find(|a| a.name == bare) {
                return Some((c, a));
            }
        }
        for c in self.prog.controls() {
            if let Some(a) = c.actions.iter().find(|a| a.name == bare) {
                return Some((c, a));
            }
        }
        None
    }

    /// Apply a table referenced by expression; returns the internal key
    /// (for `$hit`/`$applied` slots) and the chosen action's bare name.
    pub(crate) fn apply_table_expr(&mut self, table: &Expr) -> EvResult<(String, String)> {
        let Expr::Ident { name, .. } = table else {
            return unsupported("table reference must be a name");
        };
        let Some((c, t)) = self.find_table(name) else {
            return trap(format!("unknown table '{name}'"));
        };
        let tkey = format!("{}.{}", c.name, t.name);
        let cp_name = find_annotation(&t.annotations, "name")
            .and_then(|a| a.string_arg())
            .map(str::to_string)
            .unwrap_or_else(|| tkey.clone());
        let mut key_vals = Vec::with_capacity(t.keys.len());
        for k in &t.keys {
            key_vals.push(self.eval_expr(&k.expr, None)?);
        }
        // Constant entries first, highest priority first (stable).
        let mut chosen: Option<(String, Vec<Bits>)> = None;
        let mut refs: Vec<&'p p4t_frontend::ast::TableEntry> = t.entries.iter().collect();
        refs.sort_by_key(|e| {
            Reverse(
                find_annotation(&e.annotations, "priority")
                    .and_then(|a| a.int_arg())
                    .unwrap_or(0),
            )
        });
        for e in refs {
            let mut all = true;
            for (k, ks) in key_vals.iter().zip(&e.keys) {
                if !self.keyset_matches(k, ks)? {
                    all = false;
                    break;
                }
            }
            if all {
                let bare = e.action.rsplit('.').next().unwrap_or(&e.action).to_string();
                let vals = self.eval_action_args(&bare, &e.args)?;
                chosen = Some((bare, vals));
                break;
            }
        }
        // Installed entries next, highest priority first (stable).
        if chosen.is_none() {
            if let Some(entries) = self.tables.get(&cp_name).cloned() {
                let mut entries = entries;
                entries.sort_by_key(|e| Reverse(e.priority));
                for e in entries {
                    let ok = e
                        .keys
                        .iter()
                        .zip(&key_vals)
                        .all(|(spec, key)| key_matches(spec, key));
                    if ok {
                        chosen = Some((e.action, e.args));
                        break;
                    }
                }
            }
        }
        let was_hit = chosen.is_some();
        let (action, vals) = match chosen {
            Some(c) => c,
            None => match &t.default_action {
                Some((name, dargs, _)) => {
                    let bare = name.rsplit('.').next().unwrap_or(name).to_string();
                    let vals = self.eval_action_args(&bare, dargs)?;
                    (bare, vals)
                }
                None => ("NoAction".to_string(), Vec::new()),
            },
        };
        self.write_env(format!("{tkey}.$hit"), Bits::from_bool(was_hit));
        self.write_env(format!("{tkey}.$applied"), Bits::from_bool(true));
        self.trace.push(format!("{} -> {}", t.name, action));
        if action != "NoAction" {
            let Some((ac, ad)) = self.find_action(&action) else {
                return trap(format!("unknown action '{action}'"));
            };
            let (cn, an) = (ac.name.clone(), ad.name.clone());
            self.call_action(&cn, &an, vals)?;
        }
        Ok((tkey, action))
    }

    /// Evaluate an action argument list against the action's parameter
    /// widths (for constant entries and default actions).
    fn eval_action_args(&mut self, action: &str, args: &[Expr]) -> EvResult<Vec<Bits>> {
        let widths: Vec<Option<usize>> = match self.find_action(action) {
            Some((_, a)) => a
                .params
                .iter()
                .map(|p| {
                    self.tenv.resolve(&p.ty, p.span).ok().and_then(|t| self.width_of(&t))
                })
                .collect(),
            None => vec![None; args.len()],
        };
        let mut vals = Vec::with_capacity(args.len());
        for (arg, w) in args.iter().zip(widths.into_iter().chain(std::iter::repeat(None))) {
            vals.push(self.eval_expr(arg, w)?);
        }
        Ok(vals)
    }

    fn call_action(&mut self, control: &str, action: &str, vals: Vec<Bits>) -> EvResult<()> {
        let Some(c) = self.prog.find_control(control) else {
            return trap(format!("unknown action '{action}'"));
        };
        let Some(a) = c.actions.iter().find(|a| a.name == action) else {
            return trap(format!("unknown action '{action}'"));
        };
        let mut frame = HashMap::new();
        for (p, v) in a.params.iter().zip(vals) {
            let ty = self
                .tenv
                .resolve(&p.ty, p.span)
                .map_err(|e| crate::RefError::Unsupported(format!("{e}")))?;
            let Some(pw) = self.width_of(&ty) else {
                return unsupported(format!("action parameter '{}' has no width", p.name));
            };
            let path = format!("{}::{}::{}", c.name, a.name, p.name);
            self.write_env(path.clone(), v.cast(pw));
            frame.insert(p.name.clone(), Binding::Val { path, ty });
        }
        self.frames.push(frame);
        let mut result = Ok(());
        for s in &a.body {
            match self.exec_stmt(s) {
                Ok(true) => {
                    if self.exited {
                        break;
                    }
                }
                Ok(false) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.exited = false;
        self.frames.pop();
        result
    }

    // ---- externs ---------------------------------------------------------

    fn classify_args<'a>(
        &self,
        sig: &ExternFunction,
        args: &'a [Expr],
    ) -> EvResult<Vec<ExtArg<'a>>> {
        let mut out = Vec::new();
        for (p, a) in sig.params.iter().zip(args) {
            let pty = self.tenv.resolve(&p.ty, p.span).ok();
            match p.direction {
                Direction::Out | Direction::InOut => {
                    if matches!(pty, Some(Type::Struct(_)) | Some(Type::Header(_)))
                        || matches!(
                            self.type_of(a),
                            Some(Type::Struct(_)) | Some(Type::Header(_))
                        )
                    {
                        out.push(ExtArg::Ref);
                    } else {
                        let (path, lty) = self.lvalue(a)?;
                        let w = pty
                            .as_ref()
                            .and_then(|t| self.width_of(t))
                            .or_else(|| self.width_of(&lty))
                            .unwrap_or(32);
                        out.push(ExtArg::Out(path, w));
                    }
                }
                _ => match a {
                    Expr::List { items, .. } => out.push(ExtArg::InList(items)),
                    _ => {
                        if matches!(
                            self.type_of(a),
                            Some(Type::Struct(_)) | Some(Type::Header(_))
                        ) {
                            out.push(ExtArg::Ref);
                        } else {
                            out.push(ExtArg::In(a));
                        }
                    }
                },
            }
        }
        Ok(out)
    }

    fn eval_ext(&mut self, a: &ExtArg<'_>) -> EvResult<Bits> {
        match a {
            ExtArg::In(e) => self.eval_expr(e, None),
            _ => trap("expected input argument"),
        }
    }

    fn eval_ext_list(&mut self, a: &ExtArg<'_>) -> EvResult<Vec<Bits>> {
        match a {
            ExtArg::In(e) => Ok(vec![self.eval_expr(e, None)?]),
            ExtArg::InList(es) => es.iter().map(|e| self.eval_expr(e, None)).collect(),
            _ => trap("expected input arguments"),
        }
    }

    /// Run a value-returning extern by appending a synthetic out slot,
    /// matching the hoisted-temporary shape the lowering produces.
    pub(crate) fn exec_extern_value(
        &mut self,
        name: &str,
        instance: Option<&str>,
        sig: &ExternFunction,
        args: &[Expr],
        ret_width: usize,
    ) -> EvResult<Bits> {
        let mut cargs = self.classify_args(sig, args)?;
        cargs.push(ExtArg::Out("$ref.tmp".to_string(), ret_width));
        let inst = instance.map(|s| s.to_string());
        self.exec_extern_arm(name, inst.as_deref(), &cargs)?;
        Ok(self.read_env("$ref.tmp", ret_width))
    }

    fn exec_extern_arm(
        &mut self,
        name: &str,
        instance: Option<&str>,
        args: &[ExtArg<'_>],
    ) -> EvResult<()> {
        match name {
            "mark_to_drop" => {
                self.write_env("sm.egress_spec", Bits::from_u64(9, DROP_PORT));
                self.write_env("sm.mcast_grp", Bits::zeros(16));
            }
            "verify_checksum" | "verify_checksum_with_payload" => {
                let cond = !self.eval_ext(&args[0])?.is_zero();
                if cond {
                    let mut data = self.eval_ext_list(&args[1])?;
                    if name.ends_with("_with_payload") {
                        data.push(self.pkt.rest());
                    }
                    let given = self.eval_ext(&args[2])?;
                    let algo = self.eval_ext(&args[3])?.to_u64().unwrap_or(2);
                    let computed = hashes::by_id(algo, &data, given.width());
                    if computed != given {
                        self.write_env("sm.checksum_error", Bits::from_bool(true));
                    }
                }
            }
            "update_checksum" | "update_checksum_with_payload" => {
                let cond = !self.eval_ext(&args[0])?.is_zero();
                if cond {
                    let mut data = self.eval_ext_list(&args[1])?;
                    if name.ends_with("_with_payload") {
                        data.push(self.pkt.rest());
                    }
                    if let ExtArg::Out(p, w) = &args[2] {
                        let (p, w) = (p.clone(), *w);
                        let algo = self.eval_ext(&args[3])?.to_u64().unwrap_or(2);
                        let v = hashes::by_id(algo, &data, w);
                        self.write_env(p, v);
                    }
                }
            }
            "hash" => {
                if let ExtArg::Out(p, w) = &args[0] {
                    let (p, w) = (p.clone(), *w);
                    let algo = self.eval_ext(&args[1])?.to_u64().unwrap_or(0);
                    let base = self.eval_ext(&args[2])?;
                    let data = self.eval_ext_list(&args[3])?;
                    let max = self.eval_ext(&args[4])?;
                    let h = hashes::by_id(algo, &data, w);
                    let maxc = max.cast(w);
                    let v = if maxc.is_zero() {
                        base.cast(w)
                    } else {
                        base.cast(w).add(&h.urem(&maxc))
                    };
                    self.write_env(p, v);
                }
            }
            "random" => {
                if let ExtArg::Out(p, w) = &args[0] {
                    let (p, w) = (p.clone(), *w);
                    let v = self.garbage(w);
                    self.write_env(p, v);
                }
            }
            "read" if instance.is_some() => {
                let (out, idx) = match (&args[0], args.last()) {
                    (ExtArg::Out(p, w), _) => {
                        (Some((p.clone(), *w)), self.eval_ext(&args[1])?)
                    }
                    (_, Some(ExtArg::Out(p, w))) => {
                        (Some((p.clone(), *w)), self.eval_ext(&args[0])?)
                    }
                    _ => (None, Bits::zeros(32)),
                };
                if let Some((p, w)) = out {
                    let inst = instance.unwrap_or_default();
                    let i = idx.to_u64().unwrap_or(0);
                    let v = self
                        .registers
                        .get(inst)
                        .and_then(|r| r.get(&i))
                        .cloned()
                        .unwrap_or_else(|| Bits::zeros(w));
                    self.write_env(p, v.cast(w));
                }
            }
            "write" if instance.is_some() => {
                let idx = self.eval_ext(&args[0])?.to_u64().unwrap_or(0);
                let val = self.eval_ext(&args[1])?;
                self.registers
                    .entry(instance.unwrap_or_default().to_string())
                    .or_default()
                    .insert(idx, val);
            }
            "get" if instance.is_some() => {
                if let Some(ExtArg::Out(p, w)) = args.last() {
                    let (p, w) = (p.clone(), *w);
                    if args.len() >= 2 {
                        let data = self.eval_ext_list(&args[0])?;
                        let v = hashes::by_id(0, &data, w);
                        self.write_env(p, v);
                    } else {
                        let v = self.garbage(w);
                        self.write_env(p, v);
                    }
                }
            }
            "execute" | "execute_meter" | "read_meter" => {
                let out = args.iter().find_map(|a| match a {
                    ExtArg::Out(p, w) => Some((p.clone(), *w)),
                    _ => None,
                });
                if let Some((p, w)) = out {
                    let idx = match args.first() {
                        Some(a @ ExtArg::In(_)) => self.eval_ext(a)?.to_u64().unwrap_or(0),
                        _ => 0,
                    };
                    let inst = instance.unwrap_or("meter");
                    let v = self
                        .registers
                        .get(inst)
                        .and_then(|r| r.get(&idx))
                        .cloned()
                        .unwrap_or_else(|| Bits::zeros(w));
                    self.write_env(p, v.cast(w));
                }
            }
            "add" | "subtract" if instance.is_some() => {
                let inst = instance.unwrap_or_default().to_string();
                let n = *self.flags.entry(format!("csum_n_{inst}")).or_insert(0) + 1;
                self.flags.insert(format!("csum_n_{inst}"), n);
                let data = self.eval_ext_list(&args[0])?;
                for (i, v) in data.into_iter().enumerate() {
                    self.write_env(format!("$csum.{inst}.{n:04}.{i:04}"), v);
                }
            }
            "verify" if instance.is_some() => {
                if let Some(ExtArg::Out(p, _)) = args.last() {
                    let p = p.clone();
                    let inst = instance.unwrap_or_default();
                    let prefix = format!("$csum.{inst}.");
                    let mut items: Vec<(String, Bits)> = self
                        .env
                        .iter()
                        .filter(|(k, _)| k.starts_with(&prefix))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    items.sort_by(|a, b| a.0.cmp(&b.0));
                    let data: Vec<Bits> = items.into_iter().map(|(_, v)| v).collect();
                    let c = hashes::csum16(&data, 16);
                    self.write_env(p, Bits::from_bool(c.is_zero()));
                }
            }
            "truncate" => {
                let len = self.eval_ext(&args[0])?.to_u64().unwrap_or(0);
                self.flags.insert("truncate_bytes".into(), len);
            }
            "resubmit_preserving_field_list" => {
                self.flags.insert("resubmit".into(), 1);
            }
            "recirculate_preserving_field_list" => {
                self.flags.insert("recirculate".into(), 1);
            }
            "clone" | "clone_preserving_field_list" => {
                let session = self.eval_ext(&args[1])?.to_u64().unwrap_or(0);
                self.flags.insert("clone_pending".into(), 1);
                self.flags.insert("clone_session".into(), session);
            }
            "assert" | "assume" => {
                let c = self.eval_ext(&args[0])?;
                if c.is_zero() {
                    return trap("assert/assume failed at runtime");
                }
            }
            "count" | "digest" | "log_msg" | "pack" | "emit" | "increment" => {}
            other => {
                return trap(format!("unimplemented extern '{other}'"));
            }
        }
        Ok(())
    }
}

/// Match `t.apply().action_run` and return the table expression.
fn switch_table(scrutinee: &Expr) -> Option<&Expr> {
    let Expr::Member { base, member, .. } = scrutinee else { return None };
    if member != "action_run" {
        return None;
    }
    let Expr::Call { callee, .. } = base.as_ref() else { return None };
    let Expr::Member { base: tb, member: m2, .. } = callee.as_ref() else { return None };
    if m2 != "apply" {
        return None;
    }
    Some(tb)
}

fn key_matches(spec: &RefKey, key: &Bits) -> bool {
    let w = key.width();
    let fit = |bytes: &[u8]| Bits::from_bytes_be(bytes).cast(w);
    match spec {
        RefKey::Exact { value } => *key == fit(value),
        RefKey::Ternary { value, mask } => {
            let m = fit(mask);
            key.and(&m) == fit(value).and(&m)
        }
        RefKey::Lpm { value, prefix_len } => {
            if *prefix_len == 0 {
                return true;
            }
            let plen = (*prefix_len as usize).min(w);
            let mask = Bits::ones(w).shl_const(w - plen);
            key.and(&mask) == fit(value).and(&mask)
        }
        RefKey::Range { lo, hi } => fit(lo).ule(key) && key.ule(&fit(hi)),
        RefKey::Optional { value } => match value {
            None => true,
            Some(v) => *key == fit(v),
        },
    }
}
