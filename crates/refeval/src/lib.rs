//! A deliberately simple reference evaluator for differential testing.
//!
//! `p4t-refeval` executes a test input against the **typed frontend AST**
//! directly: no IR, no lowering passes, no optimization, and naive
//! `Vec<bool>` bit-vector arithmetic. It shares only the frontend (parser,
//! typechecker, type environment) with the production pipeline, so a bug in
//! IR lowering or the IR interpreter cannot be self-consistent with it —
//! the two oracles have to agree *by computing the same thing twice in
//! different ways*, which is the whole point.
//!
//! The evaluator intentionally mirrors the target semantics the symbolic
//! oracle models (v1model / tna / t2na / ebpf pipelines, parser-reject
//! policies, checksum and hash externs) but uses its **own** deterministic
//! garbage pattern for undefined reads. Emitted test specs never depend on
//! undefined bits — the symbolic executor taints them and drops tainted
//! tests — so any divergence on garbage-derived bits is absorbed by the
//! spec's don't-care masks, while divergences on *defined* bits are real.
//!
//! Anything outside the modeled subset reports [`RefError::Unsupported`]
//! (mapped to the `ref-unsupported` divergence class by the harness) rather
//! than guessing.

pub mod bits;
mod eval;
mod expr;
pub mod hashes;
mod stmt;

use std::collections::HashMap;

pub use bits::Bits;

/// Architectures the reference evaluator models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefArch {
    V1Model,
    Tna,
    T2na,
    Ebpf,
}

impl RefArch {
    /// Map a target name (as the `targets` crate spells them) to an arch.
    pub fn from_target_name(name: &str) -> Option<RefArch> {
        match name {
            "v1model" => Some(RefArch::V1Model),
            "tna" => Some(RefArch::Tna),
            "t2na" => Some(RefArch::T2na),
            "ebpf_model" | "ebpf" => Some(RefArch::Ebpf),
            _ => None,
        }
    }
}

/// Why a reference evaluation could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefError {
    /// The program uses a construct outside the evaluator's subset. This is
    /// an honest "I don't know", not a divergence.
    Unsupported(String),
    /// The evaluated program trapped (exception semantics): parser runaway,
    /// failed assert/assume, unknown action, malformed package.
    Trap(String),
}

impl RefError {
    pub fn message(&self) -> &str {
        match self {
            RefError::Unsupported(m) | RefError::Trap(m) => m,
        }
    }
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefError::Unsupported(m) => write!(f, "unsupported: {m}"),
            RefError::Trap(m) => write!(f, "trap: {m}"),
        }
    }
}

/// One table-key match value of an installed entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefKey {
    Exact { value: Vec<u8> },
    Ternary { value: Vec<u8>, mask: Vec<u8> },
    Lpm { value: Vec<u8>, prefix_len: u32 },
    Range { lo: Vec<u8>, hi: Vec<u8> },
    Optional { value: Option<Vec<u8>> },
}

/// One control-plane table entry to install before execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefEntry {
    /// Control-plane table name (`@name` or `Control.table`).
    pub table: String,
    pub keys: Vec<RefKey>,
    /// Action name; a qualified `Control.action` is reduced to the bare name.
    pub action: String,
    /// Big-endian action argument bytes, in declaration order.
    pub action_args: Vec<Vec<u8>>,
    pub priority: u32,
}

/// An initial or expected register cell value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefRegister {
    pub instance: String,
    pub index: u64,
    pub value: Vec<u8>,
}

/// Everything the evaluator needs to run one test.
#[derive(Clone, Debug, Default)]
pub struct RefInput {
    pub input_port: u32,
    pub input_packet: Vec<u8>,
    pub entries: Vec<RefEntry>,
    pub register_init: Vec<RefRegister>,
}

impl RefInput {
    pub fn new(input_port: u32, input_packet: Vec<u8>) -> Self {
        RefInput { input_port, input_packet, entries: Vec::new(), register_init: Vec::new() }
    }
}

/// The observable outcome of one reference evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefRun {
    /// `(port, packet bytes)` in emission order.
    pub outputs: Vec<(u32, Vec<u8>)>,
    /// Final register state, keyed `(instance, index)`, byte-padded values.
    pub register_final: HashMap<(String, u64), Vec<u8>>,
    /// Human-readable execution trace (free-form; not part of the contract).
    pub trace: Vec<String>,
}

/// One expected output packet with an optional per-byte don't-care mask
/// (a mask bit of 1 means "this bit must match").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefExpectedOutput {
    pub port: u32,
    pub data: Vec<u8>,
    pub mask: Option<Vec<u8>>,
}

impl RefExpectedOutput {
    /// Masked comparison: lengths equal and every cared-about bit equal.
    pub fn matches(&self, actual: &[u8]) -> bool {
        if self.data.len() != actual.len() {
            return false;
        }
        match &self.mask {
            None => self.data == actual,
            Some(m) => self
                .data
                .iter()
                .zip(actual)
                .enumerate()
                .all(|(i, (d, a))| {
                    let mk = m.get(i).copied().unwrap_or(0xFF);
                    d & mk == a & mk
                }),
        }
    }
}

/// What the test spec expects; mirrors the interpreter-side verdict inputs.
#[derive(Clone, Debug, Default)]
pub struct RefExpect {
    /// True when the spec expects the packet to be dropped (no outputs).
    pub expects_drop: bool,
    pub outputs: Vec<RefExpectedOutput>,
    pub registers: Vec<RefRegister>,
}

/// Classification of a reference run against the expectation. This is an
/// *independent reimplementation* of the interpreter's verdict logic —
/// deliberately not shared code, so a verdict bug is visible as a
/// divergence too.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefVerdict {
    Pass,
    WrongOutput(String),
    Trap(String),
    Unsupported(String),
}

impl RefVerdict {
    pub fn kind(&self) -> &'static str {
        match self {
            RefVerdict::Pass => "pass",
            RefVerdict::WrongOutput(_) => "wrong-output",
            RefVerdict::Trap(_) => "exception",
            RefVerdict::Unsupported(_) => "unsupported",
        }
    }
}

/// Check a reference outcome against the expectation, mirroring the
/// interpreter verdict classification (drop expectation, port-sorted
/// pairwise packet compare, register expectations).
pub fn check(expect: &RefExpect, outcome: &Result<RefRun, RefError>) -> RefVerdict {
    let run = match outcome {
        Err(RefError::Unsupported(m)) => return RefVerdict::Unsupported(m.clone()),
        Err(RefError::Trap(m)) => return RefVerdict::Trap(m.clone()),
        Ok(r) => r,
    };
    if expect.expects_drop {
        if !run.outputs.is_empty() {
            return RefVerdict::WrongOutput(format!(
                "expected drop, got {} output packet(s)",
                run.outputs.len()
            ));
        }
    } else {
        if run.outputs.len() != expect.outputs.len() {
            return RefVerdict::WrongOutput(format!(
                "expected {} output(s), got {}",
                expect.outputs.len(),
                run.outputs.len()
            ));
        }
        let mut want: Vec<&RefExpectedOutput> = expect.outputs.iter().collect();
        want.sort_by_key(|e| e.port);
        let mut got: Vec<&(u32, Vec<u8>)> = run.outputs.iter().collect();
        got.sort_by_key(|(p, _)| *p);
        for (e, (port, data)) in want.iter().zip(&got) {
            if e.port != *port {
                return RefVerdict::WrongOutput(format!(
                    "expected port {}, got {}",
                    e.port, port
                ));
            }
            if !e.matches(data) {
                return RefVerdict::WrongOutput(format!(
                    "packet mismatch on port {port}: expected {} bytes",
                    e.data.len()
                ));
            }
        }
    }
    for r in &expect.registers {
        match run.register_final.get(&(r.instance.clone(), r.index)) {
            Some(v) => {
                if *v != r.value {
                    return RefVerdict::WrongOutput(format!(
                        "register {}[{}]: expected {:02x?}, got {:02x?}",
                        r.instance, r.index, r.value, v
                    ));
                }
            }
            None => {
                return RefVerdict::WrongOutput(format!(
                    "register {}[{}] never written",
                    r.instance, r.index
                ))
            }
        }
    }
    RefVerdict::Pass
}

/// Execute a checked program on one input under the given architecture.
///
/// `parser_loop_bound` mirrors the interpreter's runaway guard (64 by
/// default there); the same bound must be passed for trap parity.
pub fn evaluate(
    checked: &p4t_frontend::typecheck::CheckedProgram,
    arch: RefArch,
    input: &RefInput,
    parser_loop_bound: u32,
) -> Result<RefRun, RefError> {
    let mut ev = eval::Ev::new(checked, arch, input, parser_loop_bound);
    ev.install(input)?;
    ev.run(input)?;
    Ok(ev.into_run())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal v1model-style prelude: the real pipeline prepends the
    /// target's architecture prelude before the frontend runs, so the
    /// tests do the same with just the pieces they use.
    const TEST_PRELUDE: &str = r#"
        struct standard_metadata_t {
            bit<9> ingress_port; bit<9> egress_spec; bit<9> egress_port;
            bit<16> mcast_grp; bit<1> checksum_error; error parser_error;
        }
        extern void mark_to_drop(inout standard_metadata_t standard_metadata);
        extern register<T> {
            register(bit<32> size);
            void read(out T result, in bit<32> index);
            void write(in bit<32> index, in T value);
        }
    "#;

    fn run_v1(source: &str, input: RefInput) -> Result<RefRun, RefError> {
        let source = format!("{TEST_PRELUDE}{source}");
        let checked = p4t_frontend::frontend(&source).expect("frontend");
        evaluate(&checked, RefArch::V1Model, &input, 64)
    }

    const PASSTHROUGH: &str = r#"
        header eth_t { bit<48> dst; bit<48> src; bit<16> ty; }
        struct headers { eth_t eth; }
        struct meta_t { }
        parser P(packet_in pkt, out headers hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
            state start { pkt.extract(hdr.eth); transition accept; }
        }
        control VC(inout headers hdr, inout meta_t meta) { apply { } }
        control I(inout headers hdr, inout meta_t meta,
                  inout standard_metadata_t sm) {
            apply { sm.egress_spec = 9w1; }
        }
        control E(inout headers hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }
        control CC(inout headers hdr, inout meta_t meta) { apply { } }
        control D(packet_out pkt, in headers hdr) {
            apply { pkt.emit(hdr.eth); }
        }
        V1Switch(P(), VC(), I(), E(), CC(), D()) main;
    "#;

    #[test]
    fn passthrough_forwards_packet() {
        let pkt: Vec<u8> = (0u8..20).collect();
        let run = run_v1(PASSTHROUGH, RefInput::new(0, pkt.clone())).expect("run");
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0].0, 1);
        assert_eq!(run.outputs[0].1, pkt);
    }

    #[test]
    fn short_packet_rejects_but_continues_to_ingress() {
        // 8 bytes < 14-byte ethernet header: extract rejects, v1model
        // continues to ingress with parser_error set; the header is
        // invalid so nothing is emitted and the payload passes through.
        let pkt: Vec<u8> = (0u8..8).collect();
        let run = run_v1(PASSTHROUGH, RefInput::new(0, pkt.clone())).expect("run");
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0].1, pkt);
    }

    #[test]
    fn drop_port_drops() {
        const DROPPER: &str = r#"
            header eth_t { bit<48> dst; bit<48> src; bit<16> ty; }
            struct headers { eth_t eth; }
            struct meta_t { }
            parser P(packet_in pkt, out headers hdr, inout meta_t meta,
                     inout standard_metadata_t sm) {
                state start { pkt.extract(hdr.eth); transition accept; }
            }
            control VC(inout headers hdr, inout meta_t meta) { apply { } }
            control I(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) {
                apply { mark_to_drop(sm); }
            }
            control E(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) { apply { } }
            control CC(inout headers hdr, inout meta_t meta) { apply { } }
            control D(packet_out pkt, in headers hdr) {
                apply { pkt.emit(hdr.eth); }
            }
            V1Switch(P(), VC(), I(), E(), CC(), D()) main;
        "#;
        let pkt: Vec<u8> = (0u8..20).collect();
        let run = run_v1(DROPPER, RefInput::new(0, pkt)).expect("run");
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn table_entry_selects_action() {
        const TABLED: &str = r#"
            header eth_t { bit<48> dst; bit<48> src; bit<16> ty; }
            struct headers { eth_t eth; }
            struct meta_t { }
            parser P(packet_in pkt, out headers hdr, inout meta_t meta,
                     inout standard_metadata_t sm) {
                state start { pkt.extract(hdr.eth); transition accept; }
            }
            control VC(inout headers hdr, inout meta_t meta) { apply { } }
            control I(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) {
                action fwd(bit<9> port) { sm.egress_spec = port; }
                action drop() { mark_to_drop(sm); }
                table t {
                    key = { hdr.eth.dst : exact; }
                    actions = { fwd; drop; }
                    default_action = drop();
                }
                apply { t.apply(); }
            }
            control E(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) { apply { } }
            control CC(inout headers hdr, inout meta_t meta) { apply { } }
            control D(packet_out pkt, in headers hdr) {
                apply { pkt.emit(hdr.eth); }
            }
            V1Switch(P(), VC(), I(), E(), CC(), D()) main;
        "#;
        let mut pkt = vec![0u8; 20];
        pkt[..6].copy_from_slice(&[1, 2, 3, 4, 5, 6]);
        let mut input = RefInput::new(0, pkt.clone());
        input.entries.push(RefEntry {
            table: "I.t".into(),
            keys: vec![RefKey::Exact { value: vec![1, 2, 3, 4, 5, 6] }],
            action: "fwd".into(),
            action_args: vec![vec![0, 7]],
            priority: 0,
        });
        let run = run_v1(TABLED, input).expect("run");
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0].0, 7);

        // A non-matching destination falls to the drop default.
        let run = run_v1(TABLED, RefInput::new(0, pkt)).expect("run");
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn register_write_persists() {
        const REG: &str = r#"
            header eth_t { bit<48> dst; bit<48> src; bit<16> ty; }
            struct headers { eth_t eth; }
            struct meta_t { }
            parser P(packet_in pkt, out headers hdr, inout meta_t meta,
                     inout standard_metadata_t sm) {
                state start { pkt.extract(hdr.eth); transition accept; }
            }
            control VC(inout headers hdr, inout meta_t meta) { apply { } }
            control I(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) {
                register<bit<16>>(16) r;
                apply {
                    r.write(32w3, hdr.eth.ty);
                    sm.egress_spec = 9w2;
                }
            }
            control E(inout headers hdr, inout meta_t meta,
                      inout standard_metadata_t sm) { apply { } }
            control CC(inout headers hdr, inout meta_t meta) { apply { } }
            control D(packet_out pkt, in headers hdr) {
                apply { pkt.emit(hdr.eth); }
            }
            V1Switch(P(), VC(), I(), E(), CC(), D()) main;
        "#;
        let mut pkt = vec![0u8; 20];
        pkt[12] = 0xAB;
        pkt[13] = 0xCD;
        let run = run_v1(REG, RefInput::new(0, pkt)).expect("run");
        assert_eq!(
            run.register_final.get(&("I::r".to_string(), 3)),
            Some(&vec![0xAB, 0xCD])
        );
    }

    #[test]
    fn verdict_check_classifies() {
        let mut run = RefRun::default();
        run.outputs.push((1, vec![0xAA, 0xBB]));
        let ok: Result<RefRun, RefError> = Ok(run);
        let expect = RefExpect {
            expects_drop: false,
            outputs: vec![RefExpectedOutput { port: 1, data: vec![0xAA, 0xBB], mask: None }],
            registers: Vec::new(),
        };
        assert_eq!(check(&expect, &ok), RefVerdict::Pass);

        let expect_drop =
            RefExpect { expects_drop: true, outputs: Vec::new(), registers: Vec::new() };
        assert!(matches!(check(&expect_drop, &ok), RefVerdict::WrongOutput(_)));

        // Mask absorbs a mismatching bit.
        let expect_masked = RefExpect {
            expects_drop: false,
            outputs: vec![RefExpectedOutput {
                port: 1,
                data: vec![0xAA, 0x00],
                mask: Some(vec![0xFF, 0x00]),
            }],
            registers: Vec::new(),
        };
        assert_eq!(check(&expect_masked, &ok), RefVerdict::Pass);

        let trapped: Result<RefRun, RefError> = Err(RefError::Trap("boom".into()));
        assert!(matches!(check(&expect, &trapped), RefVerdict::Trap(_)));
    }
}
