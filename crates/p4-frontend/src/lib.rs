//! # p4t-frontend — a P4-16 frontend
//!
//! The paper builds P4Testgen on top of P4C's frontend and IR. No mature P4
//! frontend exists in Rust, so this crate provides one for a substantial
//! P4-16 subset:
//!
//! * [`lexer`] — preprocessor (comments, `#include` dropping, object-like
//!   `#define`) and tokenizer, including width-prefixed literals (`8w0xFF`).
//! * [`parser`] — recursive-descent parser producing the [`ast`] types:
//!   headers, structs, header stacks, enums, typedefs, constants, errors,
//!   match kinds, extern functions and objects, parsers with `select`,
//!   controls with actions/tables (exact/ternary/lpm/range/optional match
//!   kinds, const entries, annotations), and package instantiations.
//! * [`mod@typecheck`] — builds a [`types::TypeEnv`] and checks the program;
//!   the resulting [`typecheck::CheckedProgram`] feeds IR lowering.
//!
//! Every stage is **total**: it returns `Result<_, Vec<Diagnostic>>` rather
//! than panicking or stopping at the first problem. The parser recovers at
//! `;` / `}` / declaration boundaries, the typechecker poisons failed types
//! to suppress cascading errors, and a recursion-depth guard plus a per-file
//! diagnostic cap bound work on adversarial inputs. See DESIGN.md for the
//! diagnostic architecture.
//!
//! Out of scope (documented in DESIGN.md): header unions, tuples beyond
//! `select` arguments, nested control instantiation, function declarations,
//! and `value_set`s. Architecture preludes (v1model, tna, ...) are supplied
//! as source strings by the target extensions and parsed with this grammar.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typecheck;
pub mod types;

pub use ast::Program;
pub use diag::SourceMap;
pub use error::{codes, Diagnostic, FrontendError, Phase, Severity};
pub use parser::{parse, parse_expression};
pub use typecheck::{typecheck, CheckedProgram};
pub use types::{Type, TypeEnv};

/// Parse and typecheck a source string in one step.
///
/// On failure, the returned diagnostics contain every problem found (up to
/// the per-file cap), ordered by phase then source position. Warnings from a
/// clean run are carried on the [`CheckedProgram`].
pub fn frontend(source: &str) -> Result<CheckedProgram, Vec<Diagnostic>> {
    let (prog, parse_diags) = parser::parse_all(source);
    if parse_diags.iter().any(Diagnostic::is_error) {
        return Err(parse_diags);
    }
    match typecheck(prog) {
        Ok(mut checked) => {
            if !parse_diags.is_empty() {
                let mut warnings = parse_diags;
                warnings.append(&mut checked.warnings);
                checked.warnings = warnings;
            }
            Ok(checked)
        }
        Err(type_diags) => {
            let mut all = parse_diags;
            all.extend(type_diags);
            Err(all)
        }
    }
}
