//! # p4t-frontend — a P4-16 frontend
//!
//! The paper builds P4Testgen on top of P4C's frontend and IR. No mature P4
//! frontend exists in Rust, so this crate provides one for a substantial
//! P4-16 subset:
//!
//! * [`lexer`] — preprocessor (comments, `#include` dropping, object-like
//!   `#define`) and tokenizer, including width-prefixed literals (`8w0xFF`).
//! * [`parser`] — recursive-descent parser producing the [`ast`] types:
//!   headers, structs, header stacks, enums, typedefs, constants, errors,
//!   match kinds, extern functions and objects, parsers with `select`,
//!   controls with actions/tables (exact/ternary/lpm/range/optional match
//!   kinds, const entries, annotations), and package instantiations.
//! * [`mod@typecheck`] — builds a [`types::TypeEnv`] and checks the program;
//!   the resulting [`typecheck::CheckedProgram`] feeds IR lowering.
//!
//! Out of scope (documented in DESIGN.md): header unions, tuples beyond
//! `select` arguments, nested control instantiation, function declarations,
//! and `value_set`s. Architecture preludes (v1model, tna, ...) are supplied
//! as source strings by the target extensions and parsed with this grammar.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typecheck;
pub mod types;

pub use ast::Program;
pub use error::FrontendError;
pub use parser::{parse, parse_expression};
pub use typecheck::{typecheck, CheckedProgram};
pub use types::{Type, TypeEnv};

/// Parse and typecheck a source string in one step.
pub fn frontend(source: &str) -> Result<CheckedProgram, FrontendError> {
    typecheck(parse(source)?)
}
