//! Source-mapped diagnostic rendering.
//!
//! [`SourceMap`] indexes a source string by line so diagnostics can be
//! rendered compiler-style: a `file:line:col` header, the offending source
//! line, and a caret marking the span. Spans carry byte offsets into the
//! *preprocessed* source; preprocessing preserves line structure (comments
//! and directives are blanked in place), so line numbers always refer to the
//! original file. Columns on lines rewritten by `#define` substitution are
//! relative to the substituted text and may drift from the original — the
//! rendered line text still comes from the original source, which keeps the
//! context readable even when the caret is approximate.

use crate::error::{Diagnostic, Severity};
use crate::token::Span;
use std::fmt::Write as _;

/// A line-indexed view of a source file for diagnostic rendering.
#[derive(Debug)]
pub struct SourceMap {
    /// Display name for the file (path or synthetic name).
    name: String,
    /// Byte offset at which each line starts.
    line_starts: Vec<usize>,
    source: String,
}

impl SourceMap {
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        let source = source.into();
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap { name: name.into(), line_starts, source }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of lines in the source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The text of a 1-based line, without its trailing newline.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = (line as usize).checked_sub(1)?;
        let start = *self.line_starts.get(idx)?;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.source.len());
        self.source.get(start..end.max(start))
    }

    /// 1-based (line, col) for a byte offset into the source.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let col = offset - self.line_starts[line] + 1;
        (line as u32 + 1, col as u32)
    }

    /// Render one diagnostic with source context:
    ///
    /// ```text
    /// prog.p4:3:14: error[P0001]: expected ';'
    ///     bit<8> x
    ///              ^
    /// ```
    ///
    /// `line_offset` is subtracted from the diagnostic's line number before
    /// rendering — callers that prepend synthetic source (an architecture
    /// prelude) use it to report positions in the user's file. Diagnostics
    /// that land inside the synthetic region (adjusted line < 1) are rendered
    /// without source context and marked as such.
    pub fn render(&self, d: &Diagnostic, line_offset: u32) -> String {
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let line = d.span.start.line;
        let col = d.span.start.col;
        let mut out = String::new();
        if line <= line_offset {
            let _ = write!(
                out,
                "{}:{}:{}: {sev}[{}]: {} (in architecture prelude)",
                self.name, line, col, d.code, d.message
            );
            return out;
        }
        let user_line = line - line_offset;
        let _ =
            write!(out, "{}:{}:{}: {sev}[{}]: {}", self.name, user_line, col, d.code, d.message);
        if let Some(text) = self.line_text(user_line) {
            let _ = write!(out, "\n    {text}");
            let caret_col = (col as usize).saturating_sub(1).min(text.len());
            let pad: String = text
                .chars()
                .take(caret_col)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let width = span_width(&d.span).max(1).min(text.len().saturating_sub(caret_col).max(1));
            let _ = write!(out, "\n    {pad}{}", "^".repeat(width));
        }
        out
    }

    /// Render a batch of diagnostics, one block per diagnostic.
    pub fn render_all(&self, diags: &[Diagnostic], line_offset: u32) -> String {
        let mut out = String::new();
        for d in diags {
            out.push_str(&self.render(d, line_offset));
            out.push('\n');
        }
        out
    }
}

/// Width in bytes of a span confined to one line (else 1).
fn span_width(span: &Span) -> usize {
    if span.start.line == span.end.line && span.end.offset > span.start.offset {
        span.end.offset - span.start.offset
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Diagnostic;
    use crate::token::{Pos, Span};

    fn diag_at(line: u32, col: u32, offset: usize) -> Diagnostic {
        let pos = Pos { offset, line, col };
        Diagnostic::parse(Span { start: pos, end: pos }, "boom")
    }

    #[test]
    fn line_text_and_line_col() {
        let sm = SourceMap::new("f.p4", "abc\ndef\n");
        assert_eq!(sm.line_text(1), Some("abc"));
        assert_eq!(sm.line_text(2), Some("def"));
        assert_eq!(sm.line_col(0), (1, 1));
        assert_eq!(sm.line_col(5), (2, 2));
    }

    #[test]
    fn render_has_caret() {
        let sm = SourceMap::new("f.p4", "abc\ndef\n");
        let r = sm.render(&diag_at(2, 2, 5), 0);
        assert!(r.contains("f.p4:2:2: error[P0001]: boom"), "{r}");
        assert!(r.contains("def"), "{r}");
        assert!(r.ends_with("     ^"), "{r:?}");
    }

    #[test]
    fn prelude_offset_adjusts_lines() {
        let sm = SourceMap::new("f.p4", "user line\n");
        let r = sm.render(&diag_at(11, 3, 0), 10);
        assert!(r.contains("f.p4:1:3"), "{r}");
        let inside = sm.render(&diag_at(4, 1, 0), 10);
        assert!(inside.contains("architecture prelude"), "{inside}");
    }
}
