//! Recursive-descent parser for the P4-16 subset, with error recovery.
//!
//! Grammar notes:
//! * `>>` is lexed as two `>` tokens; the parser fuses adjacent `>`s into a
//!   shift only in expression position, keeping `Register<bit<32>>` valid.
//! * Casts are recognized for built-in types `(bit<8>)e` and for the pattern
//!   `(TypeName) e` where the parenthesized identifier is followed by a token
//!   that can begin an expression.
//! * Architecture preludes (v1model definitions etc.) are plain P4 source
//!   parsed with the same grammar; `#include` lines are dropped by the lexer.
//!
//! Error recovery: parsing is **total**. Individual productions return
//! `Result` and abort locally, but the declaration / statement / field /
//! table-property loops catch those errors, record them, and synchronize at
//! `;`, `}`, or the next top-level declaration keyword before continuing, so
//! one file yields many diagnostics. A recursion-depth guard bounds stack
//! use on adversarial nesting and the per-file diagnostic cap bounds total
//! work (see [`crate::error::MAX_DIAGNOSTICS`]).

use crate::ast::*;
use crate::error::{codes, DiagSink, Diagnostic};
use crate::lexer::lex_all;
use crate::token::{IntLit, Keyword, Span, Tok, Token};

/// Maximum nesting depth for expressions, statements, and types. Each level
/// costs a bounded number of stack frames — and the expression ladder is
/// ~14 frames per level, several KiB each in unoptimized builds — so the
/// budget must fit a 2 MiB thread stack with headroom (48 levels measured
/// safe under a debug-profile test runner). Real P4 programs nest
/// expressions ~10 deep; anything near this limit is adversarial input
/// (`((((…))))`, `if(c) if(c) …`).
const MAX_DEPTH: u32 = 48;

/// Parse a full program from source.
///
/// Returns `Err` when any error was found; the vector carries every
/// diagnostic (lexical and syntactic) discovered up to the per-file cap.
pub fn parse(source: &str) -> Result<Program, Vec<Diagnostic>> {
    let (prog, diags) = parse_all(source);
    if diags.iter().any(Diagnostic::is_error) {
        Err(diags)
    } else {
        Ok(prog)
    }
}

/// Total variant of [`parse`]: always returns the best-effort program (with
/// declarations that failed to parse dropped) alongside all diagnostics.
pub fn parse_all(source: &str) -> (Program, Vec<Diagnostic>) {
    let (tokens, lex_diags) = lex_all(source);
    let mut p = Parser::new(tokens);
    p.diags.extend(lex_diags);
    let prog = p.program();
    (prog, p.diags.into_vec())
}

/// Parse a single expression (used by the P4-constraints sub-language).
pub fn parse_expression(source: &str) -> Result<Expr, Vec<Diagnostic>> {
    let (tokens, lex_diags) = lex_all(source);
    if lex_diags.iter().any(Diagnostic::is_error) {
        return Err(lex_diags);
    }
    let mut p = Parser::new(tokens);
    match p.expr().and_then(|e| {
        p.expect(Tok::Eof)?;
        Ok(e)
    }) {
        Ok(e) => Ok(e),
        Err(d) => Err(vec![d]),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
    diags: DiagSink,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn new(mut tokens: Vec<Token>) -> Self {
        // The lexer guarantees a trailing Eof; enforce it anyway so the
        // indexing in peek()/bump() below is provably in bounds.
        if !matches!(tokens.last().map(|t| &t.tok), Some(Tok::Eof)) {
            let span = tokens.last().map(|t| t.span).unwrap_or_default();
            tokens.push(Token { tok: Tok::Eof, span });
        }
        Parser { tokens, pos: 0, depth: 0, diags: DiagSink::new() }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<Span> {
        if *self.peek() == t {
            Ok(self.bump().span)
        } else {
            let code = if *self.peek() == Tok::Eof {
                codes::PARSE_UNEXPECTED_EOF
            } else {
                codes::PARSE_GENERIC
            };
            Err(Diagnostic::parse(self.span(), format!("expected {t}, found {}", self.peek()))
                .with_code(code))
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            // Some keywords double as identifiers in member positions.
            Tok::Kw(Keyword::Apply) => {
                let sp = self.bump().span;
                Ok(("apply".into(), sp))
            }
            Tok::Kw(Keyword::Key) => {
                let sp = self.bump().span;
                Ok(("key".into(), sp))
            }
            Tok::Kw(Keyword::Size) => {
                let sp = self.bump().span;
                Ok(("size".into(), sp))
            }
            other => Err(Diagnostic::parse(
                self.span(),
                format!("expected identifier, found {other}"),
            )
            .with_code(codes::PARSE_EXPECTED_IDENT)),
        }
    }

    fn expect_int(&mut self) -> PResult<(u128, Span)> {
        match self.peek().clone() {
            Tok::Int(i) => {
                let sp = self.bump().span;
                Ok((i.value, sp))
            }
            other => Err(Diagnostic::parse(self.span(), format!("expected integer, found {other}"))
                .with_code(codes::PARSE_EXPECTED_INT)),
        }
    }

    // ---- recovery --------------------------------------------------------

    /// Guard against runaway recursion. Called on entry to every recursive
    /// production; the caller pairs it with a decrement.
    fn enter(&mut self) -> PResult<()> {
        if self.depth >= MAX_DEPTH {
            return Err(Diagnostic::parse(
                self.span(),
                format!("nesting exceeds the maximum depth of {MAX_DEPTH}"),
            )
            .with_code(codes::PARSE_RECURSION_LIMIT));
        }
        self.depth += 1;
        Ok(())
    }

    /// Could `t` begin a top-level declaration?
    fn is_decl_start(t: &Tok) -> bool {
        matches!(
            t,
            Tok::Kw(
                Keyword::Const
                    | Keyword::Typedef
                    | Keyword::Header
                    | Keyword::Struct
                    | Keyword::Enum
                    | Keyword::MatchKind
                    | Keyword::Parser
                    | Keyword::Control
                    | Keyword::Extern
                    | Keyword::Action
                    | Keyword::Package
            )
        )
    }

    /// After a failed top-level declaration: skip to a `;` (consumed), a
    /// closing `}` (consumed, balancing any braces opened while skipping), or
    /// the next declaration keyword. Guarantees progress past `start`.
    fn sync_decl(&mut self, start: usize) {
        if self.pos == start && *self.peek() != Tok::Eof {
            self.bump();
        }
        let mut depth = 0i32;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                t if depth == 0 && Self::is_decl_start(t) => return,
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// After a failed statement or body item: skip to a `;` (consumed), a
    /// balanced `{...}` block (consumed), or the enclosing `}` / end of input
    /// (left in place for the caller's loop). Guarantees progress past
    /// `start`.
    fn sync_stmt(&mut self, start: usize) {
        if self.pos == start && !matches!(self.peek(), Tok::Eof | Tok::RBrace) {
            self.bump();
        }
        let mut depth = 0i32;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                Tok::RBrace if depth == 0 => return,
                Tok::LBrace | Tok::LParen | Tok::LBracket => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                Tok::RParen | Tok::RBracket => {
                    if depth > 0 {
                        depth -= 1;
                    }
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- annotations -----------------------------------------------------

    fn annotations(&mut self) -> PResult<Vec<Annotation>> {
        let mut anns = Vec::new();
        while let Tok::At(name) = self.peek().clone() {
            let span = self.bump().span;
            let mut args = Vec::new();
            if self.eat(Tok::LParen) {
                while *self.peek() != Tok::RParen {
                    match self.peek().clone() {
                        Tok::Str(s) => {
                            self.bump();
                            args.push(AnnotationArg::Str(s));
                        }
                        Tok::Int(i) => {
                            self.bump();
                            args.push(AnnotationArg::Int(i.value));
                        }
                        Tok::Ident(s) => {
                            self.bump();
                            args.push(AnnotationArg::Ident(s));
                        }
                        other => {
                            return Err(Diagnostic::parse(
                                self.span(),
                                format!("unsupported annotation argument {other}"),
                            ))
                        }
                    }
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
            anns.push(Annotation { name, args, span });
        }
        Ok(anns)
    }

    // ---- types -------------------------------------------------------------

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Keyword::Bit | Keyword::Int | Keyword::Bool | Keyword::Varbit | Keyword::Error | Keyword::Void)
        )
    }

    fn type_ref(&mut self) -> PResult<TypeRef> {
        self.enter()?;
        let r = self.type_ref_inner();
        self.depth -= 1;
        r
    }

    fn type_ref_inner(&mut self) -> PResult<TypeRef> {
        let base = match self.peek().clone() {
            Tok::Kw(Keyword::Bool) => {
                self.bump();
                TypeRef::Bool
            }
            Tok::Kw(Keyword::Error) => {
                self.bump();
                TypeRef::Error
            }
            Tok::Kw(Keyword::Void) => {
                self.bump();
                TypeRef::Void
            }
            Tok::Kw(Keyword::Bit) => {
                self.bump();
                if self.eat(Tok::Lt) {
                    let (w, _) = self.expect_int()?;
                    self.close_angle()?;
                    TypeRef::Bit(w as u32)
                } else {
                    TypeRef::Bit(1)
                }
            }
            Tok::Kw(Keyword::Int) => {
                self.bump();
                self.expect(Tok::Lt)?;
                let (w, _) = self.expect_int()?;
                self.close_angle()?;
                TypeRef::Int(w as u32)
            }
            Tok::Kw(Keyword::Varbit) => {
                self.bump();
                self.expect(Tok::Lt)?;
                let (w, _) = self.expect_int()?;
                self.close_angle()?;
                TypeRef::Varbit(w as u32)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::Lt {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        if self.eat(Tok::Ident("_".into())) {
                            args.push(TypeRef::Dontcare);
                        } else {
                            args.push(self.type_ref()?);
                        }
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.close_angle()?;
                    TypeRef::Generic(name, args)
                } else {
                    TypeRef::Named(name)
                }
            }
            other => {
                return Err(Diagnostic::parse(self.span(), format!("expected type, found {other}"))
                    .with_code(codes::PARSE_EXPECTED_TYPE))
            }
        };
        // Header stacks: `T[N]`.
        if *self.peek() == Tok::LBracket {
            self.bump();
            let (n, _) = self.expect_int()?;
            self.expect(Tok::RBracket)?;
            return Ok(TypeRef::Stack(Box::new(base), n as u32));
        }
        Ok(base)
    }

    /// Closing `>` of a generic; plain since `>>` is two tokens.
    fn close_angle(&mut self) -> PResult<()> {
        self.expect(Tok::Gt)?;
        Ok(())
    }

    // ---- program ----------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut decls = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.declaration() {
                Ok(d) => decls.push(d),
                Err(e) => {
                    self.diags.push(e);
                    self.sync_decl(start);
                }
            }
        }
        Program { decls }
    }

    fn declaration(&mut self) -> PResult<Decl> {
        let annotations = self.annotations()?;
        let span = self.span();
        match self.peek().clone() {
            Tok::Kw(Keyword::Const) => {
                self.bump();
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Decl::Const { ty, name, value, span })
            }
            Tok::Kw(Keyword::Typedef) => {
                self.bump();
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                Ok(Decl::Typedef { ty, name, span })
            }
            Tok::Kw(Keyword::Header) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                let fields = self.field_list()?;
                Ok(Decl::Header { name, fields, annotations, span })
            }
            Tok::Kw(Keyword::Struct) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                let fields = self.field_list()?;
                Ok(Decl::Struct { name, fields, annotations, span })
            }
            Tok::Kw(Keyword::Enum) => {
                self.bump();
                let underlying = if matches!(self.peek(), Tok::Kw(Keyword::Bit | Keyword::Int)) {
                    Some(self.type_ref()?)
                } else {
                    None
                };
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::LBrace)?;
                let mut members = Vec::new();
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let (m, _) = self.expect_ident()?;
                    let v = if self.eat(Tok::Assign) { Some(self.expr()?) } else { None };
                    members.push((m, v));
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Decl::Enum { name, underlying, members, span })
            }
            Tok::Kw(Keyword::Error) => {
                self.bump();
                self.expect(Tok::LBrace)?;
                let mut members = Vec::new();
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let (m, _) = self.expect_ident()?;
                    members.push(m);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Decl::ErrorDecl { members, span })
            }
            Tok::Kw(Keyword::MatchKind) => {
                self.bump();
                self.expect(Tok::LBrace)?;
                let mut members = Vec::new();
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let (m, _) = self.expect_ident()?;
                    members.push(m);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Decl::MatchKindDecl { members, span })
            }
            Tok::Kw(Keyword::Parser) => self.parser_decl(annotations, span),
            Tok::Kw(Keyword::Control) => self.control_decl(annotations, span),
            Tok::Kw(Keyword::Extern) => self.extern_decl(span),
            Tok::Kw(Keyword::Action) => Ok(Decl::Action(self.action_decl(annotations)?)),
            Tok::Kw(Keyword::Package) => {
                // `package Name<...>(params);` — record the name, skip body.
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.skip_to_semi()?;
                Ok(Decl::Package { name, span })
            }
            Tok::Ident(_) => {
                // Top-level instantiation: `V1Switch(Parser(), ...) main;`
                let ty = self.type_ref()?;
                self.expect(Tok::LParen)?;
                let args = self.expr_list(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                Ok(Decl::Instantiation(Instantiation { ty, args, name, annotations, span }))
            }
            other => Err(Diagnostic::parse(
                span,
                format!("expected a declaration, found {other}"),
            )
            .with_code(codes::PARSE_EXPECTED_DECL)),
        }
    }

    fn skip_to_semi(&mut self) -> PResult<()> {
        let mut depth = 0i32;
        loop {
            match self.peek() {
                Tok::Eof => {
                    return Err(Diagnostic::parse(self.span(), "unexpected end of input")
                        .with_code(codes::PARSE_UNEXPECTED_EOF))
                }
                Tok::Semi if depth == 0 => {
                    self.bump();
                    return Ok(());
                }
                Tok::LParen | Tok::LBrace | Tok::LBracket => {
                    depth += 1;
                    self.bump();
                }
                Tok::RParen | Tok::RBrace | Tok::RBracket => {
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn field_list(&mut self) -> PResult<Vec<Field>> {
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.field_item() {
                Ok(f) => fields.push(f),
                Err(e) => {
                    self.diags.push(e);
                    self.sync_stmt(start);
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(fields)
    }

    fn field_item(&mut self) -> PResult<Field> {
        let annotations = self.annotations()?;
        let span = self.span();
        let ty = self.type_ref()?;
        let (name, _) = self.expect_ident()?;
        self.expect(Tok::Semi)?;
        Ok(Field { ty, name, annotations, span })
    }

    fn param_list(&mut self) -> PResult<Vec<Param>> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
            let _anns = self.annotations()?;
            let span = self.span();
            let direction = match self.peek() {
                Tok::Kw(Keyword::In) => {
                    self.bump();
                    Direction::In
                }
                Tok::Kw(Keyword::Out) => {
                    self.bump();
                    Direction::Out
                }
                Tok::Kw(Keyword::InOut) => {
                    self.bump();
                    Direction::InOut
                }
                _ => Direction::None,
            };
            let ty = self.type_ref()?;
            let (name, _) = self.expect_ident()?;
            // Default values on parameters are skipped.
            if self.eat(Tok::Assign) {
                self.expr()?;
            }
            params.push(Param { direction, ty, name, span });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(params)
    }

    // ---- extern declarations -----------------------------------------------

    fn extern_decl(&mut self, span: Span) -> PResult<Decl> {
        self.expect(Tok::Kw(Keyword::Extern))?;
        // Either `extern Ret name<T>(params);` or `extern Name<T> { ... }`.
        // An extern object has `{` after the (possibly generic) name.
        let is_object = {
            // Look ahead: IDENT [< ... >] followed by `{`.
            let mut i = 0;
            let obj;
            loop {
                match self.peek_at(i) {
                    Tok::Ident(_) if i == 0 => i += 1,
                    Tok::Lt if i == 1 => {
                        // scan to matching '>'
                        let mut depth = 1;
                        i += 1;
                        while depth > 0 {
                            match self.peek_at(i) {
                                Tok::Lt => depth += 1,
                                Tok::Gt => depth -= 1,
                                Tok::Eof => break,
                                _ => {}
                            }
                            i += 1;
                        }
                        obj = *self.peek_at(i) == Tok::LBrace;
                        break;
                    }
                    Tok::LBrace if i == 1 => {
                        obj = true;
                        break;
                    }
                    _ => {
                        obj = false;
                        break;
                    }
                }
            }
            obj
        };
        if is_object {
            let (name, _) = self.expect_ident()?;
            let type_params = self.opt_type_params()?;
            self.expect(Tok::LBrace)?;
            let mut constructors = Vec::new();
            let mut methods = Vec::new();
            while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                let _anns = self.annotations()?;
                let mspan = self.span();
                if *self.peek() == Tok::Ident(name.clone()) && *self.peek_at(1) == Tok::LParen {
                    // constructor
                    self.bump();
                    constructors.push(self.param_list()?);
                    self.expect(Tok::Semi)?;
                } else {
                    let ret = self.type_ref()?;
                    let (mname, _) = self.expect_ident()?;
                    let type_params = self.opt_type_params()?;
                    let params = self.param_list()?;
                    self.expect(Tok::Semi)?;
                    methods.push(ExternFunction { name: mname, type_params, ret, params, span: mspan });
                }
            }
            self.expect(Tok::RBrace)?;
            Ok(Decl::ExternObject(ExternObject { name, type_params, constructors, methods, span }))
        } else {
            let ret = self.type_ref()?;
            let (name, _) = self.expect_ident()?;
            let type_params = self.opt_type_params()?;
            let params = self.param_list()?;
            self.expect(Tok::Semi)?;
            Ok(Decl::ExternFunction(ExternFunction { name, type_params, ret, params, span }))
        }
    }

    fn opt_type_params(&mut self) -> PResult<Vec<String>> {
        let mut out = Vec::new();
        if self.eat(Tok::Lt) {
            loop {
                let (n, _) = self.expect_ident()?;
                out.push(n);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.close_angle()?;
        }
        Ok(out)
    }

    // ---- parsers -------------------------------------------------------------

    fn parser_decl(&mut self, annotations: Vec<Annotation>, span: Span) -> PResult<Decl> {
        self.expect(Tok::Kw(Keyword::Parser))?;
        let (name, _) = self.expect_ident()?;
        let _tp = self.opt_type_params()?;
        let params = self.param_list()?;
        // Parser type declarations end with `;` — record as a package-like decl.
        if self.eat(Tok::Semi) {
            return Ok(Decl::Package { name, span });
        }
        self.expect(Tok::LBrace)?;
        let mut locals = Vec::new();
        let mut states = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.parser_item(&mut locals, &mut states) {
                Ok(()) => {}
                Err(e) => {
                    self.diags.push(e);
                    self.sync_stmt(start);
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Decl::Parser(ParserDecl { name, params, locals, states, annotations, span }))
    }

    fn parser_item(
        &mut self,
        locals: &mut Vec<Stmt>,
        states: &mut Vec<ParserState>,
    ) -> PResult<()> {
        let sanns = self.annotations()?;
        if *self.peek() == Tok::Kw(Keyword::State) {
            let sspan = self.span();
            self.bump();
            let (sname, _) = self.expect_ident()?;
            self.expect(Tok::LBrace)?;
            let mut stmts = Vec::new();
            let mut transition = Transition::Direct("reject".into());
            loop {
                match self.peek() {
                    Tok::RBrace | Tok::Eof => break,
                    Tok::Kw(Keyword::Transition) => {
                        self.bump();
                        transition = self.transition()?;
                        break;
                    }
                    _ => {
                        if self.diags.capped() {
                            break;
                        }
                        let start = self.pos;
                        match self.statement() {
                            Ok(s) => stmts.push(s),
                            Err(e) => {
                                self.diags.push(e);
                                self.sync_stmt(start);
                            }
                        }
                    }
                }
            }
            self.expect(Tok::RBrace)?;
            states.push(ParserState { name: sname, stmts, transition, annotations: sanns, span: sspan });
        } else {
            locals.push(self.statement()?);
        }
        Ok(())
    }

    fn transition(&mut self) -> PResult<Transition> {
        if *self.peek() == Tok::Kw(Keyword::Select) {
            let span = self.span();
            self.bump();
            self.expect(Tok::LParen)?;
            let exprs = self.expr_list(Tok::RParen)?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::LBrace)?;
            let mut cases = Vec::new();
            while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                let cspan = self.span();
                let keys = self.keyset()?;
                self.expect(Tok::Colon)?;
                let (next_state, _) = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                cases.push(SelectCase { keys, next_state, span: cspan });
            }
            self.expect(Tok::RBrace)?;
            Ok(Transition::Select { exprs, cases, span })
        } else {
            let (name, _) = match self.peek() {
                Tok::Kw(Keyword::Default) => {
                    let sp = self.bump().span;
                    ("accept".to_string(), sp)
                }
                _ => self.expect_ident()?,
            };
            self.expect(Tok::Semi)?;
            Ok(Transition::Direct(name))
        }
    }

    /// A keyset: `(k1, k2)` or a single keyset expression. Elements may use
    /// `&&&`, `..`, `default`, `_`.
    fn keyset(&mut self) -> PResult<Vec<Expr>> {
        if *self.peek() == Tok::LParen {
            self.bump();
            let mut keys = Vec::new();
            while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
                keys.push(self.keyset_expr()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
            Ok(keys)
        } else {
            Ok(vec![self.keyset_expr()?])
        }
    }

    fn keyset_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek() {
            Tok::Kw(Keyword::Default) => {
                self.bump();
                return Ok(Expr::Dontcare { span });
            }
            Tok::Ident(s) if s == "_" => {
                self.bump();
                return Ok(Expr::Dontcare { span });
            }
            _ => {}
        }
        let e = self.expr()?;
        if self.eat(Tok::AmpAmpAmp) {
            let mask = self.expr()?;
            let sp = span.merge(self.prev_span());
            return Ok(Expr::Mask { value: Box::new(e), mask: Box::new(mask), span: sp });
        }
        if self.eat(Tok::DotDot) {
            let hi = self.expr()?;
            let sp = span.merge(self.prev_span());
            return Ok(Expr::Range { lo: Box::new(e), hi: Box::new(hi), span: sp });
        }
        Ok(e)
    }

    // ---- controls -------------------------------------------------------------

    fn control_decl(&mut self, annotations: Vec<Annotation>, span: Span) -> PResult<Decl> {
        self.expect(Tok::Kw(Keyword::Control))?;
        let (name, _) = self.expect_ident()?;
        let _tp = self.opt_type_params()?;
        let params = self.param_list()?;
        if self.eat(Tok::Semi) {
            return Ok(Decl::Package { name, span });
        }
        self.expect(Tok::LBrace)?;
        let mut actions = Vec::new();
        let mut tables = Vec::new();
        let mut locals = Vec::new();
        let mut instantiations = Vec::new();
        let mut apply = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.control_item(
                &mut actions,
                &mut tables,
                &mut locals,
                &mut instantiations,
                &mut apply,
            ) {
                Ok(()) => {}
                Err(e) => {
                    self.diags.push(e);
                    self.sync_stmt(start);
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Decl::Control(ControlDecl {
            name,
            params,
            actions,
            tables,
            locals,
            instantiations,
            apply,
            annotations,
            span,
        }))
    }

    #[allow(clippy::too_many_arguments)]
    fn control_item(
        &mut self,
        actions: &mut Vec<ActionDecl>,
        tables: &mut Vec<TableDecl>,
        locals: &mut Vec<Stmt>,
        instantiations: &mut Vec<Instantiation>,
        apply: &mut Vec<Stmt>,
    ) -> PResult<()> {
        let danns = self.annotations()?;
        match self.peek().clone() {
            Tok::Kw(Keyword::Action) => actions.push(self.action_decl(danns)?),
            Tok::Kw(Keyword::Table) => tables.push(self.table_decl(danns)?),
            Tok::Kw(Keyword::Apply) => {
                self.bump();
                let (stmts, _) = self.block_stmts()?;
                *apply = stmts;
            }
            Tok::Ident(_) if self.looks_like_instantiation() => {
                let ispan = self.span();
                let ty = self.type_ref()?;
                self.expect(Tok::LParen)?;
                let args = self.expr_list(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                let (iname, _) = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                instantiations.push(Instantiation {
                    ty,
                    args,
                    name: iname,
                    annotations: danns,
                    span: ispan,
                });
            }
            _ => locals.push(self.statement()?),
        }
        Ok(())
    }

    /// At a control-local position: `Name<...>(...) id;` or `Name(...) id;`.
    fn looks_like_instantiation(&self) -> bool {
        // IDENT followed by `<` (generic instantiation) or by `(`.
        match self.peek_at(1) {
            Tok::Lt => true,
            Tok::LParen => {
                // Distinguish from a call statement `foo(...);` by scanning
                // for an identifier right after the matching `)`.
                let mut i = 2;
                let mut depth = 1;
                while depth > 0 {
                    match self.peek_at(i) {
                        Tok::LParen => depth += 1,
                        Tok::RParen => depth -= 1,
                        Tok::Eof => return false,
                        _ => {}
                    }
                    i += 1;
                }
                matches!(self.peek_at(i), Tok::Ident(_))
            }
            _ => false,
        }
    }

    fn action_decl(&mut self, annotations: Vec<Annotation>) -> PResult<ActionDecl> {
        let span = self.span();
        self.expect(Tok::Kw(Keyword::Action))?;
        let (name, _) = self.expect_ident()?;
        let params = self.param_list()?;
        let (body, _) = self.block_stmts()?;
        Ok(ActionDecl { name, params, body, annotations, span })
    }

    fn table_decl(&mut self, annotations: Vec<Annotation>) -> PResult<TableDecl> {
        let span = self.span();
        self.expect(Tok::Kw(Keyword::Table))?;
        let (name, _) = self.expect_ident()?;
        self.expect(Tok::LBrace)?;
        let mut t = TableDecl {
            name,
            keys: Vec::new(),
            actions: Vec::new(),
            default_action: None,
            entries: Vec::new(),
            size: None,
            annotations,
            span,
        };
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.table_item(&mut t) {
                Ok(()) => {}
                Err(e) => {
                    self.diags.push(e);
                    self.sync_stmt(start);
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(t)
    }

    fn table_item(&mut self, t: &mut TableDecl) -> PResult<()> {
        let is_const = self.eat(Tok::Kw(Keyword::Const));
        match self.peek().clone() {
            Tok::Kw(Keyword::Key) => {
                self.bump();
                self.expect(Tok::Assign)?;
                self.expect(Tok::LBrace)?;
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let kspan = self.span();
                    let expr = self.expr()?;
                    self.expect(Tok::Colon)?;
                    let (mk, _) = self.expect_ident()?;
                    let kanns = self.annotations()?;
                    self.expect(Tok::Semi)?;
                    t.keys.push(TableKey { expr, match_kind: mk, annotations: kanns, span: kspan });
                }
                self.expect(Tok::RBrace)?;
            }
            Tok::Kw(Keyword::Actions) => {
                self.bump();
                self.expect(Tok::Assign)?;
                self.expect(Tok::LBrace)?;
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let aanns = self.annotations()?;
                    let aspan = self.span();
                    let (aname, _) = self.expect_ident()?;
                    let mut args = Vec::new();
                    if *self.peek() == Tok::LParen {
                        self.bump();
                        args = self.expr_list(Tok::RParen)?;
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::Semi)?;
                    t.actions.push(ActionRef { name: aname, args, annotations: aanns, span: aspan });
                }
                self.expect(Tok::RBrace)?;
            }
            Tok::Kw(Keyword::DefaultAction) => {
                self.bump();
                self.expect(Tok::Assign)?;
                let (aname, _) = self.expect_ident()?;
                let mut args = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    args = self.expr_list(Tok::RParen)?;
                    self.expect(Tok::RParen)?;
                }
                self.expect(Tok::Semi)?;
                t.default_action = Some((aname, args, is_const));
            }
            Tok::Kw(Keyword::Entries) => {
                self.bump();
                self.expect(Tok::Assign)?;
                self.expect(Tok::LBrace)?;
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let eanns = self.annotations()?;
                    let espan = self.span();
                    let ekeys = self.keyset()?;
                    self.expect(Tok::Colon)?;
                    let (aname, _) = self.expect_ident()?;
                    let mut args = Vec::new();
                    if *self.peek() == Tok::LParen {
                        self.bump();
                        args = self.expr_list(Tok::RParen)?;
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::Semi)?;
                    t.entries.push(TableEntry {
                        keys: ekeys,
                        action: aname,
                        args,
                        annotations: eanns,
                        span: espan,
                    });
                }
                self.expect(Tok::RBrace)?;
            }
            Tok::Kw(Keyword::Size) => {
                self.bump();
                self.expect(Tok::Assign)?;
                let (n, _) = self.expect_int()?;
                self.expect(Tok::Semi)?;
                t.size = Some(n as u64);
            }
            Tok::Ident(_) => {
                // Unknown table property (implementation, meters, ...): skip.
                self.skip_to_semi()?;
            }
            other => {
                return Err(Diagnostic::parse(
                    self.span(),
                    format!("unexpected token in table body: {other}"),
                ))
            }
        }
        Ok(())
    }

    // ---- statements -----------------------------------------------------------

    fn block(&mut self) -> PResult<Stmt> {
        let (stmts, span) = self.block_stmts()?;
        Ok(Stmt::Block { stmts, span })
    }

    /// A `{ ... }` statement list with per-statement recovery.
    fn block_stmts(&mut self) -> PResult<(Vec<Stmt>, Span)> {
        let span = self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            if self.diags.capped() {
                break;
            }
            let start = self.pos;
            match self.statement() {
                Ok(s) => stmts.push(s),
                Err(e) => {
                    self.diags.push(e);
                    self.sync_stmt(start);
                }
            }
        }
        let end = self.expect(Tok::RBrace)?;
        Ok((stmts, span.merge(end)))
    }

    fn statement(&mut self) -> PResult<Stmt> {
        self.enter()?;
        let r = self.statement_inner();
        self.depth -= 1;
        r
    }

    fn statement_inner(&mut self) -> PResult<Stmt> {
        let _anns = self.annotations()?;
        let span = self.span();
        match self.peek().clone() {
            Tok::LBrace => self.block(),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty { span })
            }
            Tok::Kw(Keyword::If) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_s = Box::new(self.statement()?);
                let else_s = if self.eat(Tok::Kw(Keyword::Else)) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_s, else_s, span })
            }
            Tok::Kw(Keyword::Switch) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut cases = Vec::new();
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    let cspan = self.span();
                    let label = if self.eat(Tok::Kw(Keyword::Default)) {
                        None
                    } else {
                        Some(self.expect_ident()?.0)
                    };
                    self.expect(Tok::Colon)?;
                    let body = if *self.peek() == Tok::LBrace {
                        Some(self.block()?)
                    } else {
                        None // fallthrough label
                    };
                    cases.push(SwitchCase { label, body, span: cspan });
                }
                self.expect(Tok::RBrace)?;
                Ok(Stmt::Switch { scrutinee, cases, span })
            }
            Tok::Kw(Keyword::Exit) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Exit { span })
            }
            Tok::Kw(Keyword::Return) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { span })
            }
            Tok::Kw(Keyword::Const) => {
                self.bump();
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let init = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::ConstDecl { ty, name, init, span })
            }
            Tok::Kw(Keyword::Bit | Keyword::Int | Keyword::Bool | Keyword::Varbit | Keyword::Error) => {
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident()?;
                let init = if self.eat(Tok::Assign) { Some(self.expr()?) } else { None };
                self.expect(Tok::Semi)?;
                Ok(Stmt::VarDecl { ty, name, init, span })
            }
            Tok::Ident(_) if matches!(self.peek_at(1), Tok::Ident(_)) => {
                // `TypeName varname [= init];`
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident()?;
                let init = if self.eat(Tok::Assign) { Some(self.expr()?) } else { None };
                self.expect(Tok::Semi)?;
                Ok(Stmt::VarDecl { ty, name, init, span })
            }
            _ => {
                // Assignment or call statement.
                let e = self.expr()?;
                if self.eat(Tok::Assign) {
                    let rhs = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Assign { lhs: e, rhs, span })
                } else {
                    self.expect(Tok::Semi)?;
                    match &e {
                        Expr::Call { .. } => Ok(Stmt::Call { call: e, span }),
                        _ => Err(Diagnostic::parse(
                            span,
                            "expected assignment or call statement",
                        )
                        .with_code(codes::PARSE_EXPECTED_STMT)),
                    }
                }
            }
        }
    }

    // ---- expressions -----------------------------------------------------------

    fn expr_list(&mut self, terminator: Tok) -> PResult<Vec<Expr>> {
        let mut out = Vec::new();
        while *self.peek() != terminator && *self.peek() != Tok::Eof {
            out.push(self.expr()?);
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    pub(crate) fn expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let r = self.ternary_expr();
        self.depth -= 1;
        r
    }

    fn ternary_expr(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat(Tok::Question) {
            let then_e = self.expr()?;
            self.expect(Tok::Colon)?;
            let else_e = self.expr()?;
            let span = cond.span().merge(else_e.span());
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
                span,
            });
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(Tok::PipePipe) {
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.bitor_expr()?;
        while self.eat(Tok::AmpAmp) {
            let rhs = self.bitor_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat(Tok::Pipe) {
            let rhs = self.bitxor_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::BitOr, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.bitand_expr()?;
        while self.eat(Tok::Caret) {
            let rhs = self.bitand_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::BitXor, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.equality_expr()?;
        while self.eat(Tok::Amp) {
            let rhs = self.equality_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::BitAnd, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinaryOp::Eq,
                Tok::Neq => BinaryOp::Neq,
                _ => break,
            };
            self.bump();
            let rhs = self.relational_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    /// True if the current `Gt` and the following `Gt` are adjacent (`>>`).
    fn gt_gt_adjacent(&self) -> bool {
        *self.peek() == Tok::Gt
            && *self.peek_at(1) == Tok::Gt
            && self
                .tokens
                .get(self.pos + 1)
                .map(|next| self.tokens[self.pos].span.end.offset == next.span.start.offset)
                .unwrap_or(false)
    }

    fn relational_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinaryOp::Lt,
                Tok::Le => BinaryOp::Le,
                Tok::Gt if !self.gt_gt_adjacent() => BinaryOp::Gt,
                Tok::Ge => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.concat_expr()?;
        loop {
            let op = if *self.peek() == Tok::Shl {
                self.bump();
                BinaryOp::Shl
            } else if self.gt_gt_adjacent() {
                self.bump();
                self.bump();
                BinaryOp::Shr
            } else {
                break;
            };
            let rhs = self.concat_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.additive_expr()?;
        while self.eat(Tok::PlusPlus) {
            let rhs = self.additive_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinaryOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                Tok::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let r = self.unary_expr_inner();
        self.depth -= 1;
        r
    }

    fn unary_expr_inner(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek() {
            Tok::Not => {
                self.bump();
                let arg = self.unary_expr()?;
                let sp = span.merge(arg.span());
                Ok(Expr::Unary { op: UnaryOp::Not, arg: Box::new(arg), span: sp })
            }
            Tok::Tilde => {
                self.bump();
                let arg = self.unary_expr()?;
                let sp = span.merge(arg.span());
                Ok(Expr::Unary { op: UnaryOp::BitNot, arg: Box::new(arg), span: sp })
            }
            Tok::Minus => {
                self.bump();
                let arg = self.unary_expr()?;
                let sp = span.merge(arg.span());
                Ok(Expr::Unary { op: UnaryOp::Neg, arg: Box::new(arg), span: sp })
            }
            Tok::Plus => {
                self.bump();
                self.unary_expr()
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    let (member, msp) = self.expect_ident()?;
                    let sp = e.span().merge(msp);
                    e = Expr::Member { base: Box::new(e), member, span: sp };
                }
                Tok::LBracket => {
                    self.bump();
                    let first = self.expr()?;
                    if self.eat(Tok::Colon) {
                        let lo = self.expr()?;
                        let end = self.expect(Tok::RBracket)?;
                        let sp = e.span().merge(end);
                        e = Expr::Slice {
                            base: Box::new(e),
                            hi: Box::new(first),
                            lo: Box::new(lo),
                            span: sp,
                        };
                    } else {
                        let end = self.expect(Tok::RBracket)?;
                        let sp = e.span().merge(end);
                        e = Expr::Index {
                            base: Box::new(e),
                            index: Box::new(first),
                            span: sp,
                        };
                    }
                }
                Tok::Lt if self.is_call_type_args() => {
                    // `lookahead<bit<16>>(...)`.
                    self.bump();
                    let mut type_args = Vec::new();
                    loop {
                        type_args.push(self.type_ref()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.close_angle()?;
                    self.expect(Tok::LParen)?;
                    let args = self.expr_list(Tok::RParen)?;
                    let end = self.expect(Tok::RParen)?;
                    e = Expr::Call {
                        callee: Box::new(e),
                        type_args,
                        args,
                        span: span.merge(end),
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let args = self.expr_list(Tok::RParen)?;
                    let end = self.expect(Tok::RParen)?;
                    let sp = e.span().merge(end);
                    e = Expr::Call {
                        callee: Box::new(e),
                        type_args: Vec::new(),
                        args,
                        span: sp,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Heuristic for `f<T>(...)` call-with-type-args vs `a < b` comparison:
    /// scan for a matching `>` followed by `(` before any `;`/`{`.
    fn is_call_type_args(&self) -> bool {
        let mut i = 1;
        let mut depth = 1;
        while depth > 0 && i < 64 {
            match self.peek_at(i) {
                Tok::Lt => depth += 1,
                Tok::Gt => depth -= 1,
                Tok::Semi | Tok::LBrace | Tok::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        depth == 0 && *self.peek_at(i) == Tok::LParen
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(IntLit { value, width, signed }) => {
                self.bump();
                Ok(Expr::Int { value, width, signed, span })
            }
            Tok::Kw(Keyword::True) => {
                self.bump();
                Ok(Expr::Bool { value: true, span })
            }
            Tok::Kw(Keyword::False) => {
                self.bump();
                Ok(Expr::Bool { value: false, span })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str { value: s, span })
            }
            Tok::Kw(Keyword::Error) => {
                // `error.NoError`
                self.bump();
                self.expect(Tok::Dot)?;
                let (member, msp) = self.expect_ident()?;
                Ok(Expr::Member {
                    base: Box::new(Expr::Ident { name: "error".into(), span }),
                    member,
                    span: span.merge(msp),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Ident { name, span })
            }
            Tok::LBrace => {
                self.bump();
                let items = self.expr_list(Tok::RBrace)?;
                let end = self.expect(Tok::RBrace)?;
                Ok(Expr::List { items, span: span.merge(end) })
            }
            Tok::LParen => {
                self.bump();
                // Cast for built-in types: `(bit<8>) e`.
                if self.is_type_start() {
                    let ty = self.type_ref()?;
                    self.expect(Tok::RParen)?;
                    let arg = self.unary_expr()?;
                    let sp = span.merge(arg.span());
                    return Ok(Expr::Cast { ty, arg: Box::new(arg), span: sp });
                }
                // Cast for named types: `(TypeName) e` — identifier alone in
                // parens followed by an expression-start token.
                if let Tok::Ident(tname) = self.peek().clone() {
                    if *self.peek_at(1) == Tok::RParen
                        && matches!(
                            self.peek_at(2),
                            Tok::Ident(_) | Tok::Int(_) | Tok::LParen | Tok::Kw(Keyword::True | Keyword::False)
                        )
                    {
                        self.bump();
                        self.expect(Tok::RParen)?;
                        let arg = self.unary_expr()?;
                        let sp = span.merge(arg.span());
                        return Ok(Expr::Cast {
                            ty: TypeRef::Named(tname),
                            arg: Box::new(arg),
                            span: sp,
                        });
                    }
                }
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::parse(span, format!("expected expression, found {other}"))
                .with_code(codes::PARSE_EXPECTED_EXPR)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_multiple_errors() {
        let src = "header h_t { bit<8> }\nstruct s_t { h_t h; }\nconst bit<8> C = ;\n";
        let (prog, diags) = parse_all(src);
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(errors.len() >= 2, "expected 2+ errors, got {errors:?}");
        // The struct between the two bad declarations still parses.
        assert!(prog.decls.iter().any(|d| matches!(d, Decl::Struct { name, .. } if name == "s_t")));
    }

    #[test]
    fn statement_recovery_keeps_later_statements() {
        let src = "control c(inout bit<8> x) { apply { x = ; x = 1; } }";
        let (prog, diags) = parse_all(src);
        assert!(diags.iter().any(|d| d.is_error()));
        let Some(Decl::Control(c)) = prog.decls.first() else {
            panic!("control did not survive recovery: {prog:?}")
        };
        assert_eq!(c.apply.len(), 1, "statement after the error should survive");
    }

    #[test]
    fn depth_guard_reports_instead_of_overflowing() {
        let mut src = String::from("const bit<8> C = ");
        for _ in 0..10_000 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..10_000 {
            src.push(')');
        }
        src.push(';');
        let err = parse(&src).unwrap_err();
        assert!(err.iter().any(|d| d.code == codes::PARSE_RECURSION_LIMIT), "{err:?}");
    }

    #[test]
    fn diagnostic_cap_bounds_output() {
        let src = "const bit<8> C = ;\n".repeat(500);
        let err = parse(&src).unwrap_err();
        assert!(err.len() <= crate::error::MAX_DIAGNOSTICS + 1, "got {}", err.len());
        assert!(err.iter().any(|d| d.code == codes::DIAG_CAP));
    }

    #[test]
    fn eof_in_declaration_is_reported() {
        let err = parse("header h_t { bit<8> f;").unwrap_err();
        assert!(err.iter().any(|d| d.code == codes::PARSE_UNEXPECTED_EOF), "{err:?}");
    }
}
