//! Resolved types and the type environment.
//!
//! The [`TypeEnv`] collects every named type of a program (headers, structs,
//! enums, typedefs, extern objects) plus constants, enum member values, error
//! codes, and extern function signatures. It is built by the typechecker and
//! consumed again by IR lowering in `p4t-ir`.

use crate::ast::{self, ExternFunction, ExternObject, TypeRef};
use crate::error::FrontendError;
use crate::token::Span;
use std::collections::HashMap;
use std::fmt;

/// A fully resolved type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    Bool,
    Bit(u32),
    Int(u32),
    Varbit(u32),
    /// The `error` type, represented as `bit<ERROR_WIDTH>` at runtime.
    Error,
    /// An unsized integer literal, adapting to context.
    InfInt,
    Header(String),
    Struct(String),
    /// An enum; `repr` is the bit width used for its runtime representation.
    Enum { name: String, repr: u32 },
    Stack(Box<Type>, u32),
    /// An extern object instance with its (resolved) type arguments.
    Extern { name: String, type_args: Vec<Type> },
    /// Result of `table.apply()`; supports `.hit`, `.miss`, `.action_run`.
    ApplyResult { table: String },
    /// A named table (before `.apply()`).
    Table(String),
    /// An action name (usable only in call position or switch labels).
    Action(String),
    PacketIn,
    PacketOut,
    String,
    Void,
    /// A generic type parameter inside an extern signature.
    TypeVar(String),
    /// Placeholder for a type that failed to resolve. Poison propagates
    /// silently through later checks (it is numeric, equatable, assignable
    /// to and from anything) so one bad declaration produces one diagnostic
    /// instead of a cascade. Poison never reaches IR lowering: it is only
    /// created on paths that also record an error diagnostic, and lowering
    /// runs only on error-free programs.
    Poison,
}

/// Bit width of error values at runtime.
pub const ERROR_WIDTH: u32 = 16;

impl Type {
    /// Width in bits for value types. Headers add a validity bit at the IR
    /// level, not counted here. `None` for non-value types.
    pub fn width(&self, env: &TypeEnv) -> Option<u32> {
        match self {
            Type::Bool => Some(1),
            Type::Bit(w) | Type::Int(w) | Type::Varbit(w) => Some(*w),
            Type::Error => Some(ERROR_WIDTH),
            Type::Enum { repr, .. } => Some(*repr),
            Type::Header(name) | Type::Struct(name) => {
                let fields = env.fields_of(name)?;
                let mut total = 0;
                for f in fields {
                    total += f.ty.width(env)?;
                }
                Some(total)
            }
            Type::Stack(elem, n) => Some(elem.width(env)? * n),
            _ => None,
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Bit(_) | Type::Int(_) | Type::InfInt | Type::Poison)
    }

    /// True when values of this type can be compared with `==`.
    pub fn is_equatable(&self) -> bool {
        matches!(
            self,
            Type::Bool
                | Type::Bit(_)
                | Type::Int(_)
                | Type::InfInt
                | Type::Error
                | Type::Enum { .. }
                | Type::Header(_)
                | Type::Struct(_)
                | Type::Poison
        )
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Bit(w) => write!(f, "bit<{w}>"),
            Type::Int(w) => write!(f, "int<{w}>"),
            Type::Varbit(w) => write!(f, "varbit<{w}>"),
            Type::Error => write!(f, "error"),
            Type::InfInt => write!(f, "int"),
            Type::Header(n) => write!(f, "header {n}"),
            Type::Struct(n) => write!(f, "struct {n}"),
            Type::Enum { name, .. } => write!(f, "enum {name}"),
            Type::Stack(t, n) => write!(f, "{t}[{n}]"),
            Type::Extern { name, .. } => write!(f, "extern {name}"),
            Type::ApplyResult { table } => write!(f, "apply_result<{table}>"),
            Type::Table(n) => write!(f, "table {n}"),
            Type::Action(n) => write!(f, "action {n}"),
            Type::PacketIn => write!(f, "packet_in"),
            Type::PacketOut => write!(f, "packet_out"),
            Type::String => write!(f, "string"),
            Type::Void => write!(f, "void"),
            Type::TypeVar(n) => write!(f, "{n}"),
            Type::Poison => write!(f, "<error>"),
        }
    }
}

/// A resolved field of a header or struct.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedField {
    pub name: String,
    pub ty: Type,
    pub annotations: Vec<ast::Annotation>,
}

/// Definition of a named type.
#[derive(Clone, Debug)]
pub enum TypeDef {
    Header(Vec<ResolvedField>),
    Struct(Vec<ResolvedField>),
    Enum { repr: u32, members: Vec<(String, u128)> },
    Alias(Type),
    ExternObject(ExternObject),
}

/// The type environment.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    pub types: HashMap<String, TypeDef>,
    /// Constants: name → (type, value).
    pub consts: HashMap<String, (Type, u128)>,
    /// Error members, in declaration order (`error.X` has code = index).
    pub errors: Vec<String>,
    /// Declared match kinds.
    pub match_kinds: Vec<String>,
    /// Extern function signatures by name (overloads not supported).
    pub extern_fns: HashMap<String, ExternFunction>,
}

impl TypeEnv {
    pub fn new() -> Self {
        let mut env = TypeEnv::default();
        // Core error members per the P4-16 spec.
        for e in [
            "NoError",
            "PacketTooShort",
            "NoMatch",
            "StackOutOfBounds",
            "HeaderTooShort",
            "ParserTimeout",
            "ParserInvalidArgument",
        ] {
            env.errors.push(e.to_string());
        }
        for mk in ["exact", "ternary", "lpm", "range", "optional", "selector"] {
            env.match_kinds.push(mk.to_string());
        }
        env
    }

    /// Resolve a surface type to a semantic type.
    pub fn resolve(&self, t: &TypeRef, span: Span) -> Result<Type, FrontendError> {
        Ok(match t {
            TypeRef::Bool => Type::Bool,
            TypeRef::Bit(w) => Type::Bit(*w),
            TypeRef::Int(w) => Type::Int(*w),
            TypeRef::Varbit(w) => Type::Varbit(*w),
            TypeRef::Error => Type::Error,
            TypeRef::Void => Type::Void,
            TypeRef::Dontcare => Type::Void,
            TypeRef::Stack(inner, n) => {
                Type::Stack(Box::new(self.resolve(inner, span)?), *n)
            }
            TypeRef::Named(name) => self.resolve_name(name, span)?,
            TypeRef::Generic(name, args) => {
                let targs = args
                    .iter()
                    .map(|a| self.resolve(a, span))
                    .collect::<Result<Vec<_>, _>>()?;
                match self.types.get(name) {
                    Some(TypeDef::ExternObject(_)) => {
                        Type::Extern { name: name.clone(), type_args: targs }
                    }
                    _ => {
                        return Err(FrontendError::typecheck(
                            span,
                            format!("unknown generic type '{name}'"),
                        )
                        .with_code(crate::error::codes::TYPE_UNKNOWN_TYPE))
                    }
                }
            }
        })
    }

    pub fn resolve_name(&self, name: &str, span: Span) -> Result<Type, FrontendError> {
        match name {
            "packet_in" => return Ok(Type::PacketIn),
            "packet_out" => return Ok(Type::PacketOut),
            _ => {}
        }
        match self.types.get(name) {
            Some(TypeDef::Header(_)) => Ok(Type::Header(name.to_string())),
            Some(TypeDef::Struct(_)) => Ok(Type::Struct(name.to_string())),
            Some(TypeDef::Enum { repr, .. }) => {
                Ok(Type::Enum { name: name.to_string(), repr: *repr })
            }
            Some(TypeDef::Alias(t)) => Ok(t.clone()),
            Some(TypeDef::ExternObject(_)) => {
                Ok(Type::Extern { name: name.to_string(), type_args: Vec::new() })
            }
            None => Err(FrontendError::typecheck(span, format!("unknown type '{name}'"))
                .with_code(crate::error::codes::TYPE_UNKNOWN_TYPE)),
        }
    }

    /// Fields of a header or struct by type name.
    pub fn fields_of(&self, name: &str) -> Option<&[ResolvedField]> {
        match self.types.get(name)? {
            TypeDef::Header(f) | TypeDef::Struct(f) => Some(f),
            _ => None,
        }
    }

    pub fn field_type(&self, tyname: &str, field: &str) -> Option<Type> {
        self.fields_of(tyname)?.iter().find(|f| f.name == field).map(|f| f.ty.clone())
    }

    /// Value of an enum member (declared or ordinal).
    pub fn enum_value(&self, enum_name: &str, member: &str) -> Option<(u128, u32)> {
        match self.types.get(enum_name)? {
            TypeDef::Enum { repr, members } => members
                .iter()
                .find(|(m, _)| m == member)
                .map(|(_, v)| (*v, *repr)),
            _ => None,
        }
    }

    /// Code for an `error.X` constant.
    pub fn error_code(&self, member: &str) -> Option<u32> {
        self.errors.iter().position(|e| e == member).map(|i| i as u32)
    }

    /// Whether a match kind has been declared.
    pub fn is_match_kind(&self, name: &str) -> bool {
        self.match_kinds.iter().any(|m| m == name)
    }

    /// Look up a method signature on an extern object, substituting the
    /// object's type arguments for its type parameters.
    pub fn extern_method(
        &self,
        obj: &str,
        type_args: &[Type],
        method: &str,
    ) -> Option<ExternFunction> {
        let TypeDef::ExternObject(decl) = self.types.get(obj)? else {
            return None;
        };
        let m = decl.methods.iter().find(|m| m.name == method)?.clone();
        Some(substitute_signature(&m, &decl.type_params, type_args))
    }
}

/// Substitute extern-object type parameters in a method signature.
/// Type parameters are left as `TypeVar` in the `TypeRef` world, so this
/// returns the signature unchanged structurally and records the bindings; the
/// typechecker resolves `Named(tp)` against the binding list.
fn substitute_signature(
    f: &ExternFunction,
    params: &[String],
    args: &[Type],
) -> ExternFunction {
    let mut out = f.clone();
    let subst = |t: &TypeRef| -> TypeRef {
        if let TypeRef::Named(n) = t {
            if let Some(i) = params.iter().position(|p| p == n) {
                if let Some(arg) = args.get(i) {
                    return type_to_ref(arg);
                }
            }
        }
        t.clone()
    };
    out.ret = subst(&out.ret);
    for p in &mut out.params {
        p.ty = subst(&p.ty);
    }
    out
}

/// Best-effort conversion of a resolved type back to a surface reference
/// (used for generic substitution in extern signatures).
pub fn type_to_ref(t: &Type) -> TypeRef {
    match t {
        Type::Bool => TypeRef::Bool,
        Type::Bit(w) => TypeRef::Bit(*w),
        Type::Int(w) => TypeRef::Int(*w),
        Type::Varbit(w) => TypeRef::Varbit(*w),
        Type::Error => TypeRef::Error,
        Type::Header(n) | Type::Struct(n) => TypeRef::Named(n.clone()),
        Type::Enum { name, .. } => TypeRef::Named(name.clone()),
        Type::Stack(t, n) => TypeRef::Stack(Box::new(type_to_ref(t)), *n),
        Type::Void => TypeRef::Void,
        Type::TypeVar(n) => TypeRef::Named(n.clone()),
        _ => TypeRef::Void,
    }
}
