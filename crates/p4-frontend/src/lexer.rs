//! Lexer (with a small preprocessor) for the P4-16 subset.
//!
//! The preprocessor handles `//` and `/* */` comments and `#`-directives:
//! `#include` lines are dropped (architecture preludes are provided as
//! built-in source by the target extensions), `#define NAME VALUE` performs
//! simple token-free textual substitution of object-like macros, and any
//! other directive is ignored.
//!
//! Both passes are **total**: malformed input produces spanned diagnostics
//! and the lexer recovers (skipping the offending byte, or closing an
//! unterminated literal at end of input) so that a best-effort token stream
//! is always available for parser recovery. The token stream always ends in
//! `Tok::Eof`.

use crate::error::{codes, DiagSink, Diagnostic};
use crate::token::{IntLit, Keyword, Pos, Span, Tok, Token};
use std::collections::HashMap;

/// Lex a complete source string into tokens (ending in `Tok::Eof`).
///
/// Returns `Err` when any lexical error was found; the error vector contains
/// every diagnostic from the preprocessor and tokenizer.
pub fn lex(source: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
    let (tokens, diags) = lex_all(source);
    if diags.iter().any(Diagnostic::is_error) {
        Err(diags)
    } else {
        Ok(tokens)
    }
}

/// Total variant of [`lex`]: always returns the best-effort token stream
/// alongside any diagnostics, so the parser can keep going after lexical
/// errors.
pub fn lex_all(source: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let mut diags = DiagSink::new();
    let pre = preprocess(source, &mut diags);
    let tokens = Lexer::new(&pre).run(&mut diags);
    (tokens, diags.into_vec())
}

/// Strip comments and handle `#` directives, preserving line structure so
/// diagnostic line numbers stay meaningful. Problems (an unterminated block
/// comment) are reported through `diags`.
fn preprocess(src: &str, diags: &mut DiagSink) -> String {
    // Remove block comments first (replace with spaces, keep newlines),
    // tracking positions so an unterminated comment gets a real span.
    let mut no_block = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut offset = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    while let Some(c) = chars.next() {
        if c == '/' && chars.peek() == Some(&'*') {
            let open = Pos { offset, line, col };
            offset += 2;
            col += 2;
            chars.next();
            let mut closed = false;
            while let Some(c) = chars.next() {
                let len = c.len_utf8();
                offset += len;
                if c == '\n' {
                    line += 1;
                    col = 1;
                    no_block.push('\n');
                } else {
                    col += 1;
                }
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    offset += 1;
                    col += 1;
                    no_block.push(' ');
                    closed = true;
                    break;
                }
            }
            if !closed {
                diags.push(
                    Diagnostic::lex(open, "unterminated block comment")
                        .with_code(codes::LEX_UNTERMINATED_COMMENT),
                );
            }
        } else {
            offset += c.len_utf8();
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            no_block.push(c);
        }
    }
    // Line comments, directives, and object-like macro substitution.
    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(no_block.len());
    let mut line_start = 0usize;
    for (line_idx, raw_line) in no_block.lines().enumerate() {
        let raw_len = raw_line.len();
        let line = match raw_line.find("//") {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(def) = rest.strip_prefix("define") {
                let mut it = def.trim().splitn(2, char::is_whitespace);
                if let Some(name) = it.next() {
                    // Function-like macros are out of scope; skip them.
                    if !name.contains('(') {
                        let val = it.next().unwrap_or("").trim().to_string();
                        defines.insert(name.to_string(), val);
                    }
                }
            } else if rest.starts_with("pragma") {
                // Recognized but deliberately not interpreted; worth telling
                // the user since pragmas often change target semantics.
                let col = (line.len() - trimmed.len()) as u32 + 1;
                let pos = Pos {
                    offset: line_start + (line.len() - trimmed.len()),
                    line: line_idx as u32 + 1,
                    col,
                };
                diags.push(
                    Diagnostic::lex(pos, "#pragma directive is ignored")
                        .with_code(codes::WARN_IGNORED_DIRECTIVE)
                        .warning(),
                );
            }
            // #include, #if(n)def, #endif, #pragma: dropped.
            out.push('\n');
            line_start += raw_len + 1;
            continue;
        }
        line_start += raw_len + 1;
        if defines.is_empty() {
            out.push_str(line);
        } else {
            out.push_str(&substitute(line, &defines));
        }
        out.push('\n');
    }
    out
}

/// Whole-identifier textual substitution of object-like macros.
fn substitute(line: &str, defines: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            match defines.get(word) {
                Some(v) => out.push_str(v),
                None => out.push_str(word),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn here(&self) -> Pos {
        Pos { offset: self.pos, line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Tokenize the whole input. Never fails: bytes that cannot start a token
    /// produce a diagnostic and are skipped, and unterminated literals are
    /// closed at end of input with a diagnostic. The returned stream always
    /// ends with `Tok::Eof`.
    fn run(mut self, diags: &mut DiagSink) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.bump();
            }
            let start = self.here();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, span: Span { start, end: start } });
                return out;
            };
            let tok = if c.is_ascii_digit() {
                self.lex_number(start, diags)
            } else if c.is_ascii_alphabetic() || c == b'_' {
                let word = self.lex_word();
                match Keyword::from_str(&word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word),
                }
            } else if c == b'"' {
                self.bump();
                self.lex_string(start, diags)
            } else if c == b'@' {
                self.bump();
                if !matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                    diags.push(
                        Diagnostic::lex(start, "expected identifier after '@'")
                            .with_code(codes::LEX_BAD_ANNOTATION),
                    );
                    continue;
                }
                Tok::At(self.lex_word())
            } else {
                match self.lex_symbol() {
                    Some(t) => t,
                    None => {
                        // Unlexable byte: report once and skip it.
                        diags.push(
                            Diagnostic::lex(
                                start,
                                format!("unexpected character '{}'", c as char),
                            )
                            .with_code(codes::LEX_UNEXPECTED_CHAR),
                        );
                        continue;
                    }
                }
            };
            let end = self.here();
            out.push(Token { tok, span: Span { start, end } });
        }
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Lex a string body, the opening `"` having been consumed. An
    /// unterminated string (or escape) at end of input is closed with a
    /// diagnostic rather than discarded, so the parser still sees the token.
    fn lex_string(&mut self, start: Pos, diags: &mut DiagSink) -> Tok {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => {
                    diags.push(
                        Diagnostic::lex(start, "unterminated string literal")
                            .with_code(codes::LEX_UNTERMINATED_STRING),
                    );
                    break;
                }
                Some(b'"') => break,
                // Strings do not span lines; a bare newline means the
                // closing quote is missing.
                Some(b'\n') => {
                    diags.push(
                        Diagnostic::lex(start, "unterminated string literal")
                            .with_code(codes::LEX_UNTERMINATED_STRING),
                    );
                    break;
                }
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(other) => s.push(other as char),
                    None => {
                        diags.push(
                            Diagnostic::lex(start, "unterminated string escape")
                                .with_code(codes::LEX_UNTERMINATED_ESCAPE),
                        );
                        break;
                    }
                },
                Some(other) => s.push(other as char),
            }
        }
        Tok::Str(s)
    }

    fn lex_number(&mut self, start: Pos, diags: &mut DiagSink) -> Tok {
        // First scan digits; if followed by 'w' or 's', it was a width prefix.
        let first = self.lex_digits(10, start, diags);
        match self.peek() {
            Some(b'w') | Some(b's') => {
                let signed = self.peek() == Some(b's');
                self.bump();
                let width: u32 = match first.try_into() {
                    Ok(w) => w,
                    Err(_) => {
                        diags.push(
                            Diagnostic::lex(start, "literal width does not fit in u32")
                                .with_code(codes::LEX_WIDTH_TOO_LARGE),
                        );
                        32
                    }
                };
                let width = if width == 0 {
                    diags.push(
                        Diagnostic::lex(start, "zero-width literal")
                            .with_code(codes::LEX_ZERO_WIDTH),
                    );
                    1
                } else {
                    width
                };
                let value = self.lex_based_value(start, diags);
                Tok::Int(IntLit { value, width: Some(width), signed })
            }
            Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O' | b'd' | b'D') if first == 0 => {
                // 0x..., 0b..., 0o... with no width prefix.
                let value = self.lex_base_suffix(start, diags);
                Tok::Int(IntLit { value, width: None, signed: false })
            }
            _ => Tok::Int(IntLit { value: first, width: None, signed: false }),
        }
    }

    /// After a width prefix (`8w`), parse `255`, `0xFF`, `0b1010`, etc.
    fn lex_based_value(&mut self, start: Pos, diags: &mut DiagSink) -> u128 {
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O' | b'd' | b'D'))
        {
            self.bump();
            self.lex_base_suffix(start, diags)
        } else {
            self.lex_digits(10, start, diags)
        }
    }

    /// Parse the `x1F` part, the leading `0` having been consumed.
    fn lex_base_suffix(&mut self, start: Pos, diags: &mut DiagSink) -> u128 {
        let base = match self.bump() {
            Some(b'x' | b'X') => 16,
            Some(b'b' | b'B') => 2,
            Some(b'o' | b'O') => 8,
            Some(b'd' | b'D') => 10,
            _ => {
                diags.push(
                    Diagnostic::lex(start, "bad numeric base").with_code(codes::LEX_BAD_BASE),
                );
                return 0;
            }
        };
        self.lex_digits(base, start, diags)
    }

    /// Scan digits in `base`, reporting overflow and empty digit runs.
    /// Returns 0 on error so lexing can continue with a placeholder value.
    fn lex_digits(&mut self, base: u32, start: Pos, diags: &mut DiagSink) -> u128 {
        let mut any = false;
        let mut value: u128 = 0;
        let mut overflowed = false;
        loop {
            match self.peek() {
                Some(b'_') => {
                    self.bump();
                }
                Some(c) if (c as char).is_digit(base) => {
                    any = true;
                    let digit = (c as char).to_digit(base).unwrap_or(0) as u128;
                    match value.checked_mul(base as u128).and_then(|v| v.checked_add(digit)) {
                        Some(v) => value = v,
                        None => overflowed = true,
                    }
                    self.bump();
                }
                _ => break,
            }
        }
        if overflowed {
            diags.push(
                Diagnostic::lex(start, "integer literal exceeds 128 bits")
                    .with_code(codes::LEX_INT_OVERFLOW),
            );
            return 0;
        }
        if !any {
            diags.push(Diagnostic::lex(start, "expected digits").with_code(codes::LEX_EXPECTED_DIGITS));
        }
        value
    }

    /// Lex a punctuation token. Returns `None` (without consuming anything
    /// beyond the first byte) for bytes that cannot start a token.
    fn lex_symbol(&mut self) -> Option<Tok> {
        let c = self.bump()?;
        let t = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b',' => Tok::Comma,
            b'?' => Tok::Question,
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Eq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Neq
                } else {
                    Tok::Not
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else if self.peek() == Some(b'<') {
                    self.bump();
                    Tok::Shl
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    // `>>` stays as two `Gt`s for generic-argument nesting.
                    Tok::Gt
                }
            }
            b'~' => Tok::Tilde,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    Tok::PlusPlus
                } else {
                    Tok::Plus
                }
            }
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::AmpAmpAmp
                    } else {
                        Tok::AmpAmp
                    }
                } else {
                    Tok::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::PipePipe
                } else {
                    Tok::Pipe
                }
            }
            _ => return None,
        };
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let t = toks("parser foo");
        assert_eq!(t[0], Tok::Kw(Keyword::Parser));
        assert_eq!(t[1], Tok::Ident("foo".into()));
        assert_eq!(t[2], Tok::Eof);
    }

    #[test]
    fn width_literals() {
        let t = toks("8w255 16w0xBEEF 4w0b1010 2s1 42 0x1F");
        assert_eq!(t[0], Tok::Int(IntLit { value: 255, width: Some(8), signed: false }));
        assert_eq!(t[1], Tok::Int(IntLit { value: 0xBEEF, width: Some(16), signed: false }));
        assert_eq!(t[2], Tok::Int(IntLit { value: 0b1010, width: Some(4), signed: false }));
        assert_eq!(t[3], Tok::Int(IntLit { value: 1, width: Some(2), signed: true }));
        assert_eq!(t[4], Tok::Int(IntLit { value: 42, width: None, signed: false }));
        assert_eq!(t[5], Tok::Int(IntLit { value: 0x1F, width: None, signed: false }));
    }

    #[test]
    fn operators() {
        let t = toks("== != <= >= << && || &&& ++ .. & | ^");
        assert_eq!(
            t[..13],
            [
                Tok::Eq,
                Tok::Neq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::AmpAmpAmp,
                Tok::PlusPlus,
                Tok::DotDot,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret
            ]
        );
    }

    #[test]
    fn right_shift_is_two_gt() {
        let t = toks("a >> b");
        assert_eq!(t[1], Tok::Gt);
        assert_eq!(t[2], Tok::Gt);
    }

    #[test]
    fn comments_stripped() {
        let t = toks("a // line comment\n /* block \n comment */ b");
        assert_eq!(t[0], Tok::Ident("a".into()));
        assert_eq!(t[1], Tok::Ident("b".into()));
    }

    #[test]
    fn includes_dropped_and_defines_substituted() {
        let src = "#include <v1model.p4>\n#define WIDTH 16\nbit<WIDTH> x;";
        let t = toks(src);
        assert!(t.contains(&Tok::Int(IntLit { value: 16, width: None, signed: false })));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "WIDTH")));
    }

    #[test]
    fn annotations() {
        let t = toks("@name(\"foo.bar\") @priority(1)");
        assert_eq!(t[0], Tok::At("name".into()));
        assert_eq!(t[1], Tok::LParen);
        assert_eq!(t[2], Tok::Str("foo.bar".into()));
    }

    #[test]
    fn line_numbers_survive_preprocessing() {
        let tokens = lex("#include <x>\n\nfoo").unwrap();
        assert_eq!(tokens[0].span.start.line, 3);
    }

    #[test]
    fn underscores_in_literals() {
        let t = toks("48w0xAA_BB_CC_DD_EE_FF");
        assert_eq!(
            t[0],
            Tok::Int(IntLit { value: 0xAABBCCDDEEFF, width: Some(48), signed: false })
        );
    }

    #[test]
    fn lex_error_on_garbage() {
        assert!(lex("`").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn unterminated_string_has_code_and_recovers() {
        let (tokens, diags) = lex_all("a \"oops");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::LEX_UNTERMINATED_STRING);
        assert_eq!(diags[0].span.start.line, 1);
        assert_eq!(diags[0].span.start.col, 3);
        // The partial string still becomes a token and the stream ends in Eof.
        assert_eq!(tokens[1].tok, Tok::Str("oops".into()));
        assert_eq!(tokens.last().map(|t| t.tok.clone()), Some(Tok::Eof));
    }

    #[test]
    fn unterminated_block_comment_has_span() {
        let (tokens, diags) = lex_all("x /* never closed\nmore");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::LEX_UNTERMINATED_COMMENT);
        assert_eq!(diags[0].span.start.line, 1);
        assert_eq!(diags[0].span.start.col, 3);
        assert_eq!(tokens[0].tok, Tok::Ident("x".into()));
    }

    #[test]
    fn bad_bytes_are_skipped_not_fatal() {
        let (tokens, diags) = lex_all("a ` $ b");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == codes::LEX_UNEXPECTED_CHAR));
        let kinds: Vec<_> = tokens.iter().map(|t| t.tok.clone()).collect();
        assert_eq!(
            kinds,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn overflow_and_zero_width_recover() {
        let (_, diags) = lex_all("340282366920938463463374607431768211456 0w1");
        let codes_seen: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::LEX_INT_OVERFLOW));
        assert!(codes_seen.contains(&codes::LEX_ZERO_WIDTH));
    }
}
