//! Lexer (with a small preprocessor) for the P4-16 subset.
//!
//! The preprocessor handles `//` and `/* */` comments and `#`-directives:
//! `#include` lines are dropped (architecture preludes are provided as
//! built-in source by the target extensions), `#define NAME VALUE` performs
//! simple token-free textual substitution of object-like macros, and any
//! other directive is ignored with a note.

use crate::error::FrontendError;
use crate::token::{IntLit, Keyword, Pos, Span, Tok, Token};
use std::collections::HashMap;

/// Lex a complete source string into tokens (ending in `Tok::Eof`).
pub fn lex(source: &str) -> Result<Vec<Token>, FrontendError> {
    let pre = preprocess(source);
    Lexer::new(&pre).run()
}

/// Strip comments and handle `#` directives, preserving line structure so
/// diagnostics line numbers stay meaningful.
fn preprocess(src: &str) -> String {
    // Remove block comments first (replace with spaces, keep newlines).
    let mut no_block = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' && chars.peek() == Some(&'*') {
            chars.next();
            loop {
                match chars.next() {
                    None => break,
                    Some('*') if chars.peek() == Some(&'/') => {
                        chars.next();
                        no_block.push(' ');
                        break;
                    }
                    Some('\n') => no_block.push('\n'),
                    Some(_) => {}
                }
            }
        } else {
            no_block.push(c);
        }
    }
    // Line comments, directives, and object-like macro substitution.
    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(no_block.len());
    for line in no_block.lines() {
        let line = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(def) = rest.strip_prefix("define") {
                let mut it = def.trim().splitn(2, char::is_whitespace);
                if let Some(name) = it.next() {
                    // Function-like macros are out of scope; skip them.
                    if !name.contains('(') {
                        let val = it.next().unwrap_or("").trim().to_string();
                        defines.insert(name.to_string(), val);
                    }
                }
            }
            // #include, #if(n)def, #endif, #pragma: dropped.
            out.push('\n');
            continue;
        }
        if defines.is_empty() {
            out.push_str(line);
        } else {
            out.push_str(&substitute(line, &defines));
        }
        out.push('\n');
    }
    out
}

/// Whole-identifier textual substitution of object-like macros.
fn substitute(line: &str, defines: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            match defines.get(word) {
                Some(v) => out.push_str(v),
                None => out.push_str(word),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn here(&self) -> Pos {
        Pos { offset: self.pos, line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.bump();
            }
            let start = self.here();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, span: Span { start, end: start } });
                return Ok(out);
            };
            let tok = if c.is_ascii_digit() {
                self.lex_number(start)?
            } else if c.is_ascii_alphabetic() || c == b'_' {
                let word = self.lex_word();
                match Keyword::from_str(&word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word),
                }
            } else if c == b'"' {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => {
                            return Err(FrontendError::lex(start, "unterminated string literal"))
                        }
                        Some(b'"') => break,
                        Some(b'\\') => {
                            match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(other) => s.push(other as char),
                                None => {
                                    return Err(FrontendError::lex(
                                        start,
                                        "unterminated string escape",
                                    ))
                                }
                            };
                        }
                        Some(other) => s.push(other as char),
                    }
                }
                Tok::Str(s)
            } else if c == b'@' {
                self.bump();
                if !matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                    return Err(FrontendError::lex(start, "expected identifier after '@'"));
                }
                Tok::At(self.lex_word())
            } else {
                self.lex_symbol(start)?
            };
            let end = self.here();
            out.push(Token { tok, span: Span { start, end } });
        }
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, start: Pos) -> Result<Tok, FrontendError> {
        // First scan digits; if followed by 'w' or 's', it was a width prefix.
        let first = self.lex_digits(10, start)?;
        match self.peek() {
            Some(b'w') | Some(b's') => {
                let signed = self.peek() == Some(b's');
                self.bump();
                let width: u32 = first.try_into().map_err(|_| {
                    FrontendError::lex(start, "literal width does not fit in u32")
                })?;
                if width == 0 {
                    return Err(FrontendError::lex(start, "zero-width literal"));
                }
                let value = self.lex_based_value(start)?;
                Ok(Tok::Int(IntLit { value, width: Some(width), signed }))
            }
            Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O' | b'd' | b'D') if first == 0 => {
                // 0x..., 0b..., 0o... with no width prefix.
                let value = self.lex_base_suffix(start)?;
                Ok(Tok::Int(IntLit { value, width: None, signed: false }))
            }
            _ => Ok(Tok::Int(IntLit { value: first, width: None, signed: false })),
        }
    }

    /// After a width prefix (`8w`), parse `255`, `0xFF`, `0b1010`, etc.
    fn lex_based_value(&mut self, start: Pos) -> Result<u128, FrontendError> {
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O' | b'd' | b'D'))
        {
            self.bump();
            self.lex_base_suffix(start)
        } else {
            self.lex_digits(10, start)
        }
    }

    /// Parse the `x1F` part, the leading `0` having been consumed.
    fn lex_base_suffix(&mut self, start: Pos) -> Result<u128, FrontendError> {
        let base = match self.bump() {
            Some(b'x' | b'X') => 16,
            Some(b'b' | b'B') => 2,
            Some(b'o' | b'O') => 8,
            Some(b'd' | b'D') => 10,
            _ => return Err(FrontendError::lex(start, "bad numeric base")),
        };
        self.lex_digits(base, start)
    }

    fn lex_digits(&mut self, base: u32, start: Pos) -> Result<u128, FrontendError> {
        let mut any = false;
        let mut value: u128 = 0;
        loop {
            match self.peek() {
                Some(b'_') => {
                    self.bump();
                }
                Some(c) if (c as char).is_digit(base) => {
                    any = true;
                    value = value
                        .checked_mul(base as u128)
                        .and_then(|v| v.checked_add((c as char).to_digit(base).unwrap() as u128))
                        .ok_or_else(|| {
                            FrontendError::lex(start, "integer literal exceeds 128 bits")
                        })?;
                    self.bump();
                }
                _ => break,
            }
        }
        if !any {
            return Err(FrontendError::lex(start, "expected digits"));
        }
        Ok(value)
    }

    fn lex_symbol(&mut self, start: Pos) -> Result<Tok, FrontendError> {
        let c = self.bump().unwrap();
        let t = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b',' => Tok::Comma,
            b'?' => Tok::Question,
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Eq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Neq
                } else {
                    Tok::Not
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else if self.peek() == Some(b'<') {
                    self.bump();
                    Tok::Shl
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    // `>>` stays as two `Gt`s for generic-argument nesting.
                    Tok::Gt
                }
            }
            b'~' => Tok::Tilde,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    Tok::PlusPlus
                } else {
                    Tok::Plus
                }
            }
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::AmpAmpAmp
                    } else {
                        Tok::AmpAmp
                    }
                } else {
                    Tok::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::PipePipe
                } else {
                    Tok::Pipe
                }
            }
            other => {
                return Err(FrontendError::lex(
                    start,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let t = toks("parser foo");
        assert_eq!(t[0], Tok::Kw(Keyword::Parser));
        assert_eq!(t[1], Tok::Ident("foo".into()));
        assert_eq!(t[2], Tok::Eof);
    }

    #[test]
    fn width_literals() {
        let t = toks("8w255 16w0xBEEF 4w0b1010 2s1 42 0x1F");
        assert_eq!(t[0], Tok::Int(IntLit { value: 255, width: Some(8), signed: false }));
        assert_eq!(t[1], Tok::Int(IntLit { value: 0xBEEF, width: Some(16), signed: false }));
        assert_eq!(t[2], Tok::Int(IntLit { value: 0b1010, width: Some(4), signed: false }));
        assert_eq!(t[3], Tok::Int(IntLit { value: 1, width: Some(2), signed: true }));
        assert_eq!(t[4], Tok::Int(IntLit { value: 42, width: None, signed: false }));
        assert_eq!(t[5], Tok::Int(IntLit { value: 0x1F, width: None, signed: false }));
    }

    #[test]
    fn operators() {
        let t = toks("== != <= >= << && || &&& ++ .. & | ^");
        assert_eq!(
            t[..13],
            [
                Tok::Eq,
                Tok::Neq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::AmpAmpAmp,
                Tok::PlusPlus,
                Tok::DotDot,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret
            ]
        );
    }

    #[test]
    fn right_shift_is_two_gt() {
        let t = toks("a >> b");
        assert_eq!(t[1], Tok::Gt);
        assert_eq!(t[2], Tok::Gt);
    }

    #[test]
    fn comments_stripped() {
        let t = toks("a // line comment\n /* block \n comment */ b");
        assert_eq!(t[0], Tok::Ident("a".into()));
        assert_eq!(t[1], Tok::Ident("b".into()));
    }

    #[test]
    fn includes_dropped_and_defines_substituted() {
        let src = "#include <v1model.p4>\n#define WIDTH 16\nbit<WIDTH> x;";
        let t = toks(src);
        assert!(t.contains(&Tok::Int(IntLit { value: 16, width: None, signed: false })));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "WIDTH")));
    }

    #[test]
    fn annotations() {
        let t = toks("@name(\"foo.bar\") @priority(1)");
        assert_eq!(t[0], Tok::At("name".into()));
        assert_eq!(t[1], Tok::LParen);
        assert_eq!(t[2], Tok::Str("foo.bar".into()));
    }

    #[test]
    fn line_numbers_survive_preprocessing() {
        let tokens = lex("#include <x>\n\nfoo").unwrap();
        assert_eq!(tokens[0].span.start.line, 3);
    }

    #[test]
    fn underscores_in_literals() {
        let t = toks("48w0xAA_BB_CC_DD_EE_FF");
        assert_eq!(
            t[0],
            Tok::Int(IntLit { value: 0xAABBCCDDEEFF, width: Some(48), signed: false })
        );
    }

    #[test]
    fn lex_error_on_garbage() {
        assert!(lex("`").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
