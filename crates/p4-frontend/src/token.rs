//! Token definitions for the P4-16 lexer.

use std::fmt;

/// Source position (byte offset plus human-readable line/column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    pub offset: usize,
    pub line: u32,
    pub col: u32,
}

/// A half-open source span.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    pub start: Pos,
    pub end: Pos,
}

impl Span {
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start.offset <= other.start.offset { self.start } else { other.start },
            end: if self.end.offset >= other.end.offset { self.end } else { other.end },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.start.line, self.start.col)
    }
}

/// Keywords of the supported P4-16 subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    Action,
    Actions,
    Apply,
    Bit,
    Bool,
    Const,
    Control,
    Default,
    DefaultAction,
    Else,
    Entries,
    Enum,
    Error,
    Exit,
    Extern,
    False,
    Header,
    If,
    In,
    InOut,
    Int,
    Key,
    MatchKind,
    Out,
    Package,
    Parser,
    Return,
    Select,
    Size,
    State,
    Struct,
    Switch,
    Table,
    Transition,
    True,
    Typedef,
    Varbit,
    Void,
}

impl Keyword {
    /// Keyword lookup (not the `FromStr` trait: this returns `Option`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "action" => Keyword::Action,
            "actions" => Keyword::Actions,
            "apply" => Keyword::Apply,
            "bit" => Keyword::Bit,
            "bool" => Keyword::Bool,
            "const" => Keyword::Const,
            "control" => Keyword::Control,
            "default" => Keyword::Default,
            "default_action" => Keyword::DefaultAction,
            "else" => Keyword::Else,
            "entries" => Keyword::Entries,
            "enum" => Keyword::Enum,
            "error" => Keyword::Error,
            "exit" => Keyword::Exit,
            "extern" => Keyword::Extern,
            "false" => Keyword::False,
            "header" => Keyword::Header,
            "if" => Keyword::If,
            "in" => Keyword::In,
            "inout" => Keyword::InOut,
            "int" => Keyword::Int,
            "key" => Keyword::Key,
            "match_kind" => Keyword::MatchKind,
            "out" => Keyword::Out,
            "package" => Keyword::Package,
            "parser" => Keyword::Parser,
            "return" => Keyword::Return,
            "select" => Keyword::Select,
            "size" => Keyword::Size,
            "state" => Keyword::State,
            "struct" => Keyword::Struct,
            "switch" => Keyword::Switch,
            "table" => Keyword::Table,
            "transition" => Keyword::Transition,
            "true" => Keyword::True,
            "typedef" => Keyword::Typedef,
            "varbit" => Keyword::Varbit,
            "void" => Keyword::Void,
            _ => return None,
        })
    }
}

/// An integer literal: optional explicit width and signedness, plus value
/// digits (stored as u128; P4 literals in practice fit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntLit {
    pub value: u128,
    /// Explicit width from `8w255`-style literals.
    pub width: Option<u32>,
    /// True for `8s`-style signed literals.
    pub signed: bool,
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    Kw(Keyword),
    Ident(String),
    Int(IntLit),
    Str(String),
    /// `@name` — the annotation sigil plus identifier.
    At(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Question,
    // operators
    Assign,      // =
    Eq,          // ==
    Neq,         // !=
    Lt,          // <
    Le,          // <=
    Gt,          // >
    Ge,          // >=
    Not,         // !
    Tilde,       // ~
    Plus,        // +
    PlusPlus,    // ++
    Minus,       // -
    Star,        // *
    Slash,       // /
    Percent,     // %
    Amp,         // &
    AmpAmp,      // &&
    AmpAmpAmp,   // &&&
    Pipe,        // |
    PipePipe,    // ||
    Caret,       // ^
    Shl,         // <<
    // `>>` is lexed as two `Gt` tokens to keep `stack<bit<8>>`-style nesting
    // unambiguous; the parser reassembles shifts.
    DotDot,      // ..
    Eof,
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{}", i.value),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::At(s) => write!(f, "@{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}
