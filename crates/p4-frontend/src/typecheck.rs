//! Type checker for the P4-16 subset.
//!
//! Builds a [`TypeEnv`] from the declarations, then checks every parser,
//! control, action, table, and expression. The resulting [`CheckedProgram`]
//! (AST + environment + per-block scopes) is the input to IR lowering.
//!
//! Checking is deliberately pragmatic: it catches the errors that would make
//! lowering or symbolic execution meaningless (unknown names, field typos,
//! width mismatches on sized operands, bad match kinds, transitions to
//! undefined states), while staying permissive where the spec delegates to
//! targets (extern argument coercions, list expressions).
//!
//! The checker accumulates diagnostics instead of stopping at the first
//! problem: a declaration that fails to resolve is entered into the
//! environment as [`Type::Poison`], which silently satisfies later checks so
//! one mistake produces one diagnostic rather than a cascade. Lowering only
//! runs on error-free programs, so poison never escapes the frontend.

use crate::ast::*;
use crate::error::{codes, DiagSink, Diagnostic, FrontendError};
use crate::token::Span;
use crate::types::{Type, TypeDef, TypeEnv, ResolvedField, ERROR_WIDTH};
use std::cell::RefCell;
use std::collections::HashMap;

/// A program that has passed type checking.
#[derive(Clone, Debug)]
pub struct CheckedProgram {
    pub program: Program,
    pub env: TypeEnv,
    /// Warning-severity diagnostics from a clean run.
    pub warnings: Vec<Diagnostic>,
}

/// Lexical scope: a stack of name → type frames.
#[derive(Clone, Debug, Default)]
pub struct Scope {
    frames: Vec<HashMap<String, Type>>,
}

impl Scope {
    pub fn new() -> Self {
        Scope { frames: vec![HashMap::new()] }
    }

    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    pub fn pop(&mut self) {
        self.frames.pop();
    }

    pub fn declare(&mut self, name: &str, ty: Type) {
        if self.frames.is_empty() {
            self.frames.push(HashMap::new());
        }
        if let Some(frame) = self.frames.last_mut() {
            frame.insert(name.to_string(), ty);
        }
    }

    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

/// Typecheck a parsed program against a (possibly empty) prelude environment.
///
/// Returns every diagnostic found (up to the per-file cap). `Err` iff any
/// diagnostic is an error; warnings from a clean run are carried on the
/// [`CheckedProgram`].
pub fn typecheck(program: Program) -> Result<CheckedProgram, Vec<Diagnostic>> {
    let mut env = TypeEnv::new();
    let mut sink = DiagSink::new();
    collect_declarations_into(&program, &mut env, &mut sink);
    let checker = Checker { env: &env, diags: RefCell::new(sink) };
    for decl in &program.decls {
        if checker.capped() {
            break;
        }
        match decl {
            Decl::Parser(p) => checker.check_parser(p),
            Decl::Control(c) => checker.check_control(c),
            Decl::Action(a) => {
                let mut scope = Scope::new();
                checker.check_action(a, &mut scope);
            }
            _ => {}
        }
    }
    let sink = checker.diags.into_inner();
    if sink.has_errors() {
        Err(sink.into_vec())
    } else {
        Ok(CheckedProgram { program, env, warnings: sink.into_vec() })
    }
}

/// Pass 1 (compatibility form): populate the type environment, stopping at
/// the first error. IR lowering uses this to rebuild an environment from an
/// already-checked program, where no errors can occur.
pub fn collect_declarations(program: &Program, env: &mut TypeEnv) -> Result<(), FrontendError> {
    let mut sink = DiagSink::new();
    collect_declarations_into(program, env, &mut sink);
    match sink.into_vec().into_iter().find(Diagnostic::is_error) {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Pass 1: populate the type environment from declarations, in order,
/// accumulating diagnostics. Declarations that fail to resolve are entered
/// as poison so references to them do not cascade.
fn collect_declarations_into(program: &Program, env: &mut TypeEnv, diags: &mut DiagSink) {
    for decl in &program.decls {
        if diags.capped() {
            return;
        }
        match decl {
            Decl::Header { name, fields, .. } => {
                let rf = resolve_fields_into(env, fields, diags);
                for (f, src) in rf.iter().zip(fields) {
                    if !matches!(
                        f.ty,
                        Type::Bit(_) | Type::Int(_) | Type::Bool | Type::Varbit(_) | Type::Poison
                    ) {
                        diags.push(FrontendError::typecheck(
                            src.span,
                            format!("header field '{}' must have a fixed-width type", f.name),
                        ));
                    }
                }
                env.types.insert(name.clone(), TypeDef::Header(rf));
            }
            Decl::Struct { name, fields, .. } => {
                let rf = resolve_fields_into(env, fields, diags);
                env.types.insert(name.clone(), TypeDef::Struct(rf));
            }
            Decl::Enum { name, underlying, members, span } => {
                let repr = match underlying {
                    Some(TypeRef::Bit(w)) => *w,
                    Some(TypeRef::Int(w)) => *w,
                    Some(_) => {
                        diags.push(FrontendError::typecheck(
                            *span,
                            "enum underlying type must be bit<N> or int<N>",
                        ));
                        32
                    }
                    // Spec leaves representation-less enums abstract; we pick
                    // 32 bits for the runtime encoding.
                    None => 32,
                };
                let mut resolved = Vec::new();
                let mut next: u128 = 0;
                for (m, v) in members {
                    let val = match v {
                        Some(e) => match const_eval(env, e) {
                            Some(v) => v,
                            None => {
                                diags.push(
                                    FrontendError::typecheck(
                                        *span,
                                        "enum member value must be constant",
                                    )
                                    .with_code(codes::TYPE_NOT_CONST),
                                );
                                next
                            }
                        },
                        None => next,
                    };
                    next = val.wrapping_add(1);
                    resolved.push((m.clone(), val));
                }
                env.types.insert(name.clone(), TypeDef::Enum { repr, members: resolved });
            }
            Decl::Typedef { ty, name, span } => {
                let t = match env.resolve(ty, *span) {
                    Ok(t) => t,
                    Err(e) => {
                        diags.push(e);
                        Type::Poison
                    }
                };
                env.types.insert(name.clone(), TypeDef::Alias(t));
            }
            Decl::Const { ty, name, value, span } => {
                let t = match env.resolve(ty, *span) {
                    Ok(t) => t,
                    Err(e) => {
                        diags.push(e);
                        Type::Poison
                    }
                };
                let v = match const_eval(env, value) {
                    Some(v) => v,
                    None => {
                        diags.push(
                            FrontendError::typecheck(
                                *span,
                                format!("'{name}' is not a constant expression"),
                            )
                            .with_code(codes::TYPE_NOT_CONST),
                        );
                        0
                    }
                };
                env.consts.insert(name.clone(), (t, v));
            }
            Decl::ErrorDecl { members, .. } => {
                for m in members {
                    if !env.errors.contains(m) {
                        env.errors.push(m.clone());
                    }
                }
            }
            Decl::MatchKindDecl { members, .. } => {
                for m in members {
                    if !env.match_kinds.contains(m) {
                        env.match_kinds.push(m.clone());
                    }
                }
            }
            Decl::ExternFunction(f) => {
                env.extern_fns.insert(f.name.clone(), f.clone());
            }
            Decl::ExternObject(o) => {
                env.types.insert(o.name.clone(), TypeDef::ExternObject(o.clone()));
            }
            _ => {}
        }
    }
}

fn resolve_fields_into(
    env: &TypeEnv,
    fields: &[Field],
    diags: &mut DiagSink,
) -> Vec<ResolvedField> {
    fields
        .iter()
        .map(|f| ResolvedField {
            name: f.name.clone(),
            ty: match env.resolve(&f.ty, f.span) {
                Ok(t) => t,
                Err(e) => {
                    diags.push(e);
                    Type::Poison
                }
            },
            annotations: f.annotations.clone(),
        })
        .collect()
}

/// Evaluate a constant expression to an integer.
pub fn const_eval(env: &TypeEnv, e: &Expr) -> Option<u128> {
    Some(match e {
        Expr::Int { value, .. } => *value,
        Expr::Bool { value, .. } => *value as u128,
        Expr::Ident { name, .. } => env.consts.get(name)?.1,
        Expr::Member { base, member, .. } => {
            if let Expr::Ident { name, .. } = base.as_ref() {
                if name == "error" {
                    return env.error_code(member).map(|c| c as u128);
                }
                if let Some((v, _)) = env.enum_value(name, member) {
                    return Some(v);
                }
            }
            return None;
        }
        Expr::Unary { op, arg, .. } => {
            let v = const_eval(env, arg)?;
            match op {
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::BitNot => !v,
                UnaryOp::Not => (v == 0) as u128,
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_eval(env, lhs)?;
            let b = const_eval(env, rhs)?;
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => a.checked_div(b)?,
                BinaryOp::Mod => a.checked_rem(b)?,
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::Shl => a.checked_shl(b as u32).unwrap_or(0),
                BinaryOp::Shr => a.checked_shr(b as u32).unwrap_or(0),
                _ => return None,
            }
        }
        Expr::Cast { arg, .. } => const_eval(env, arg)?,
        _ => return None,
    })
}

/// Per-block checking context. Diagnostics accumulate in the sink; checks
/// keep going after a failure so one pass reports everything.
struct Checker<'a> {
    env: &'a TypeEnv,
    diags: RefCell<DiagSink>,
}

impl<'a> Checker<'a> {
    fn report(&self, d: Diagnostic) {
        self.diags.borrow_mut().push(d);
    }

    fn capped(&self) -> bool {
        self.diags.borrow().capped()
    }

    /// Resolve a surface type, reporting failures and poisoning the result.
    fn resolve_or_poison(&self, ty: &TypeRef, span: Span) -> Type {
        match self.env.resolve(ty, span) {
            Ok(t) => t,
            Err(e) => {
                self.report(e);
                Type::Poison
            }
        }
    }

    fn scope_from_params(&self, params: &[Param]) -> Scope {
        let mut scope = Scope::new();
        for p in params {
            let t = self.resolve_or_poison(&p.ty, p.span);
            scope.declare(&p.name, t);
        }
        scope
    }

    fn check_parser(&self, p: &ParserDecl) {
        let mut scope = self.scope_from_params(&p.params);
        for l in &p.locals {
            self.check_stmt(l, &mut scope);
        }
        let state_names: Vec<&str> = p.states.iter().map(|s| s.name.as_str()).collect();
        if !state_names.contains(&"start") {
            self.report(FrontendError::typecheck(
                p.span,
                format!("parser '{}' has no start state", p.name),
            ));
        }
        for st in &p.states {
            if self.capped() {
                return;
            }
            scope.push();
            for s in &st.stmts {
                self.check_stmt(s, &mut scope);
            }
            match &st.transition {
                Transition::Direct(next) => {
                    self.check_state_ref(next, &state_names, st.span);
                }
                Transition::Select { exprs, cases, span } => {
                    for e in exprs {
                        match self.type_of(e, &scope) {
                            Ok(t) => {
                                if t.width(self.env).is_none() && !matches!(t, Type::Poison) {
                                    self.report(FrontendError::typecheck(
                                        *span,
                                        format!("select argument has non-scalar type {t}"),
                                    ));
                                }
                            }
                            Err(e) => self.report(e),
                        }
                    }
                    for c in cases {
                        self.check_state_ref(&c.next_state, &state_names, c.span);
                        if c.keys.len() != exprs.len()
                            && !(c.keys.len() == 1 && matches!(c.keys[0], Expr::Dontcare { .. }))
                        {
                            self.report(FrontendError::typecheck(
                                c.span,
                                format!(
                                    "select case has {} keys but select has {} arguments",
                                    c.keys.len(),
                                    exprs.len()
                                ),
                            ));
                        }
                        for k in &c.keys {
                            self.check_keyset_expr(k, &scope);
                        }
                    }
                }
            }
            scope.pop();
        }
    }

    fn check_state_ref(&self, name: &str, states: &[&str], span: Span) {
        if name != "accept" && name != "reject" && !states.contains(&name) {
            self.report(
                FrontendError::typecheck(span, format!("transition to undefined state '{name}'"))
                    .with_code(codes::TYPE_UNKNOWN_SYMBOL),
            );
        }
    }

    fn check_keyset_expr(&self, e: &Expr, scope: &Scope) {
        let r = match e {
            Expr::Dontcare { .. } => Ok(()),
            Expr::Mask { value, mask, .. } => self
                .type_of(value, scope)
                .and_then(|_| self.type_of(mask, scope))
                .map(|_| ()),
            Expr::Range { lo, hi, .. } => {
                self.type_of(lo, scope).and_then(|_| self.type_of(hi, scope)).map(|_| ())
            }
            other => self.type_of(other, scope).map(|_| ()),
        };
        if let Err(e) = r {
            self.report(e);
        }
    }

    fn check_control(&self, c: &ControlDecl) {
        let mut scope = self.scope_from_params(&c.params);
        // Declare instantiations (registers, counters, sub-externs).
        for inst in &c.instantiations {
            let t = self.resolve_or_poison(&inst.ty, inst.span);
            scope.declare(&inst.name, t);
        }
        for l in &c.locals {
            self.check_stmt(l, &mut scope);
        }
        // Action signatures (for table refs and calls).
        let mut actions: HashMap<String, Vec<Param>> = HashMap::new();
        actions.insert("NoAction".to_string(), Vec::new());
        for a in &c.actions {
            actions.insert(a.name.clone(), a.params.clone());
        }
        for a in &c.actions {
            if self.capped() {
                return;
            }
            scope.push();
            self.check_action(a, &mut scope);
            scope.pop();
        }
        // Tables.
        for t in &c.tables {
            if self.capped() {
                return;
            }
            self.check_table(t, &scope, &actions);
            scope.declare(&t.name, Type::Table(t.name.clone()));
        }
        // Apply block.
        scope.push();
        for t in &c.tables {
            scope.declare(&t.name, Type::Table(t.name.clone()));
        }
        for s in &c.apply {
            self.check_stmt(s, &mut scope);
        }
        scope.pop();
    }

    fn check_action(&self, a: &ActionDecl, scope: &mut Scope) {
        scope.push();
        for p in &a.params {
            let t = self.resolve_or_poison(&p.ty, p.span);
            scope.declare(&p.name, t);
        }
        for s in &a.body {
            self.check_stmt(s, scope);
        }
        scope.pop();
    }

    fn check_table(&self, t: &TableDecl, scope: &Scope, actions: &HashMap<String, Vec<Param>>) {
        for k in &t.keys {
            match self.type_of(&k.expr, scope) {
                Ok(kt) => {
                    if kt.width(self.env).is_none() && !matches!(kt, Type::Poison) {
                        self.report(FrontendError::typecheck(
                            k.span,
                            format!("table key has non-scalar type {kt}"),
                        ));
                    }
                }
                Err(e) => self.report(e),
            }
            if !self.env.is_match_kind(&k.match_kind) {
                self.report(
                    FrontendError::typecheck(
                        k.span,
                        format!("unknown match kind '{}'", k.match_kind),
                    )
                    .with_code(codes::TYPE_UNKNOWN_SYMBOL),
                );
            }
        }
        for a in &t.actions {
            if !actions.contains_key(&a.name) {
                self.report(
                    FrontendError::typecheck(
                        a.span,
                        format!("table '{}' references unknown action '{}'", t.name, a.name),
                    )
                    .with_code(codes::TYPE_UNKNOWN_SYMBOL),
                );
            }
        }
        if let Some((name, _, _)) = &t.default_action {
            let listed = t.actions.iter().any(|a| &a.name == name);
            if !listed && name != "NoAction" {
                self.report(FrontendError::typecheck(
                    t.span,
                    format!("default action '{name}' is not in the actions list"),
                ));
            }
        }
        for e in &t.entries {
            if e.keys.len() != t.keys.len() {
                self.report(FrontendError::typecheck(
                    e.span,
                    format!(
                        "entry has {} keys but table '{}' has {}",
                        e.keys.len(),
                        t.name,
                        t.keys.len()
                    ),
                ));
            }
            if !t.actions.iter().any(|a| a.name == e.action) {
                self.report(
                    FrontendError::typecheck(
                        e.span,
                        format!("entry action '{}' is not in the actions list", e.action),
                    )
                    .with_code(codes::TYPE_UNKNOWN_SYMBOL),
                );
            }
            for k in &e.keys {
                self.check_keyset_expr(k, scope);
            }
        }
    }

    fn check_stmt(&self, s: &Stmt, scope: &mut Scope) {
        if self.capped() {
            return;
        }
        match s {
            Stmt::VarDecl { ty, name, init, span } => {
                let t = self.resolve_or_poison(ty, *span);
                if let Some(e) = init {
                    match self.type_of(e, scope) {
                        Ok(et) => self.check_assignable(&t, &et, *span),
                        Err(e) => self.report(e),
                    }
                }
                scope.declare(name, t);
            }
            Stmt::ConstDecl { ty, name, init, span } => {
                let t = self.resolve_or_poison(ty, *span);
                match self.type_of(init, scope) {
                    Ok(et) => self.check_assignable(&t, &et, *span),
                    Err(e) => self.report(e),
                }
                scope.declare(name, t);
            }
            Stmt::Assign { lhs, rhs, span } => {
                let lt = match self.type_of(lhs, scope) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        self.report(e);
                        None
                    }
                };
                if !is_lvalue(lhs) {
                    self.report(
                        FrontendError::typecheck(*span, "left side is not assignable")
                            .with_code(codes::TYPE_NOT_LVALUE),
                    );
                }
                match self.type_of(rhs, scope) {
                    Ok(rt) => {
                        if let Some(lt) = lt {
                            self.check_assignable(&lt, &rt, *span);
                        }
                    }
                    Err(e) => self.report(e),
                }
            }
            Stmt::Call { call, .. } => {
                if let Err(e) = self.type_of(call, scope) {
                    self.report(e);
                }
            }
            Stmt::If { cond, then_s, else_s, span } => {
                match self.type_of(cond, scope) {
                    Ok(ct) => {
                        if ct != Type::Bool && ct != Type::Poison {
                            self.report(
                                FrontendError::typecheck(
                                    *span,
                                    format!("if condition has type {ct}, expected bool"),
                                )
                                .with_code(codes::TYPE_MISMATCH),
                            );
                        }
                    }
                    Err(e) => self.report(e),
                }
                scope.push();
                self.check_stmt(then_s, scope);
                scope.pop();
                if let Some(e) = else_s {
                    scope.push();
                    self.check_stmt(e, scope);
                    scope.pop();
                }
            }
            Stmt::Switch { scrutinee, cases, span } => {
                match self.type_of(scrutinee, scope) {
                    Ok(st) => match &st {
                        Type::Enum { .. } | Type::Action(_) | Type::Poison => {}
                        Type::ApplyResult { .. } => {
                            self.report(FrontendError::typecheck(
                                *span,
                                "switch must match on table.apply().action_run",
                            ));
                        }
                        other => {
                            self.report(FrontendError::typecheck(
                                *span,
                                format!("cannot switch on type {other}"),
                            ));
                        }
                    },
                    Err(e) => self.report(e),
                }
                for c in cases {
                    if let Some(body) = &c.body {
                        scope.push();
                        self.check_stmt(body, scope);
                        scope.pop();
                    }
                }
            }
            Stmt::Block { stmts, .. } => {
                scope.push();
                for s in stmts {
                    self.check_stmt(s, scope);
                }
                scope.pop();
            }
            Stmt::Exit { .. } | Stmt::Return { .. } | Stmt::Empty { .. } => {}
        }
    }

    fn check_assignable(&self, to: &Type, from: &Type, span: Span) {
        if let Err(e) = require_assignable(to, from, span) {
            self.report(e);
        }
    }

    // ---- expression typing ------------------------------------------------

    fn type_of(&self, e: &Expr, scope: &Scope) -> Result<Type, FrontendError> {
        type_of_expr(self.env, e, scope)
    }
}

/// Whether a value of type `from` can be assigned to a slot of type `to`.
fn require_assignable(to: &Type, from: &Type, span: Span) -> Result<(), FrontendError> {
    let ok = match (to, from) {
        (Type::Poison, _) | (_, Type::Poison) => true,
        _ if to == from => true,
        (Type::Bit(_) | Type::Int(_), Type::InfInt) => true,
        (Type::Error, Type::Bit(w)) | (Type::Bit(w), Type::Error) => *w == ERROR_WIDTH,
        (Type::Enum { repr, .. }, Type::Bit(w)) => repr == w,
        (Type::Bit(w), Type::Enum { repr, .. }) => repr == w,
        (Type::Varbit(_), Type::Bit(_)) => true,
        // List expressions initialize structs/headers member-wise; the
        // detailed check happens at lowering.
        (Type::Struct(_) | Type::Header(_), Type::Struct(_)) => from == &Type::Struct("<list>".into()),
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(FrontendError::typecheck(
            span,
            format!("cannot assign value of type {from} to {to}"),
        )
        .with_code(codes::TYPE_MISMATCH))
    }
}

/// Type of an expression — shared with IR lowering.
pub fn type_of_expr(env: &TypeEnv, e: &Expr, scope: &Scope) -> Result<Type, FrontendError> {
    let span = e.span();
    match e {
        Expr::Int { width, signed, .. } => Ok(match width {
            Some(w) if *signed => Type::Int(*w),
            Some(w) => Type::Bit(*w),
            None => Type::InfInt,
        }),
        Expr::Bool { .. } => Ok(Type::Bool),
        Expr::Str { .. } => Ok(Type::String),
        Expr::Dontcare { .. } => Ok(Type::InfInt),
        Expr::Ident { name, .. } => {
            if let Some(t) = scope.lookup(name) {
                return Ok(t.clone());
            }
            if let Some((t, _)) = env.consts.get(name) {
                return Ok(t.clone());
            }
            if env.extern_fns.contains_key(name) {
                return Ok(Type::Action(name.clone()));
            }
            Err(FrontendError::typecheck(span, format!("unknown name '{name}'"))
                .with_code(codes::TYPE_UNKNOWN_SYMBOL))
        }
        Expr::Member { base, member, .. } => {
            // `error.X`
            if let Expr::Ident { name, .. } = base.as_ref() {
                if name == "error" {
                    return if env.error_code(member).is_some() {
                        Ok(Type::Error)
                    } else {
                        Err(FrontendError::typecheck(span, format!("unknown error '{member}'"))
                            .with_code(codes::TYPE_UNKNOWN_SYMBOL))
                    };
                }
                // `EnumName.Member` when not shadowed by a local.
                if scope.lookup(name).is_none() {
                    if let Some(TypeDef::Enum { repr, .. }) = env.types.get(name) {
                        return if env.enum_value(name, member).is_some() {
                            Ok(Type::Enum { name: name.clone(), repr: *repr })
                        } else {
                            Err(FrontendError::typecheck(
                                span,
                                format!("enum {name} has no member '{member}'"),
                            )
                            .with_code(codes::TYPE_BAD_MEMBER))
                        };
                    }
                }
            }
            let bt = type_of_expr(env, base, scope)?;
            member_type(env, &bt, member, span)
        }
        Expr::Index { base, index, .. } => {
            let bt = type_of_expr(env, base, scope)?;
            let it = type_of_expr(env, index, scope)?;
            if !it.is_numeric() {
                return Err(FrontendError::typecheck(span, "stack index must be numeric")
                    .with_code(codes::TYPE_MISMATCH));
            }
            match bt {
                Type::Stack(elem, _) => Ok(*elem),
                Type::Poison => Ok(Type::Poison),
                other => Err(FrontendError::typecheck(
                    span,
                    format!("cannot index into type {other}"),
                )),
            }
        }
        Expr::Slice { base, hi, lo, .. } => {
            let bt = type_of_expr(env, base, scope)?;
            if matches!(bt, Type::Poison) {
                return Ok(Type::Poison);
            }
            let (Some(h), Some(l)) = (const_eval(env, hi), const_eval(env, lo)) else {
                return Err(FrontendError::typecheck(span, "slice bounds must be constant")
                    .with_code(codes::TYPE_NOT_CONST));
            };
            let bw = bt.width(env).ok_or_else(|| {
                FrontendError::typecheck(span, format!("cannot slice type {bt}"))
            })?;
            if h < l || h as u32 >= bw {
                return Err(FrontendError::typecheck(
                    span,
                    format!("slice [{h}:{l}] out of range for width {bw}"),
                ));
            }
            Ok(Type::Bit((h - l + 1) as u32))
        }
        Expr::Unary { op, arg, .. } => {
            let at = type_of_expr(env, arg, scope)?;
            match op {
                UnaryOp::Not => {
                    if at == Type::Bool || at == Type::Poison {
                        Ok(Type::Bool)
                    } else {
                        Err(FrontendError::typecheck(span, format!("! applied to {at}"))
                            .with_code(codes::TYPE_MISMATCH))
                    }
                }
                UnaryOp::BitNot | UnaryOp::Neg => {
                    if at.is_numeric() {
                        Ok(at)
                    } else {
                        Err(FrontendError::typecheck(span, format!("operator applied to {at}"))
                            .with_code(codes::TYPE_MISMATCH))
                    }
                }
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let lt = type_of_expr(env, lhs, scope)?;
            let rt = type_of_expr(env, rhs, scope)?;
            binary_type(env, *op, &lt, &rt, span)
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            let ct = type_of_expr(env, cond, scope)?;
            if ct != Type::Bool && ct != Type::Poison {
                return Err(FrontendError::typecheck(span, "ternary condition must be bool")
                    .with_code(codes::TYPE_MISMATCH));
            }
            let tt = type_of_expr(env, then_e, scope)?;
            let et = type_of_expr(env, else_e, scope)?;
            merge_numeric(&tt, &et).ok_or_else(|| {
                FrontendError::typecheck(span, format!("ternary branches disagree: {tt} vs {et}"))
                    .with_code(codes::TYPE_MISMATCH)
            })
        }
        Expr::Cast { ty, arg, .. } => {
            // The argument must itself be well-typed (its type is then
            // discarded: P4 casts are explicit conversions).
            type_of_expr(env, arg, scope)?;
            env.resolve(ty, span)
        }
        Expr::Mask { value, .. } => type_of_expr(env, value, scope),
        Expr::Range { lo, .. } => type_of_expr(env, lo, scope),
        Expr::List { .. } => Ok(Type::Struct("<list>".to_string())),
        Expr::Call { callee, type_args, args, .. } => {
            call_type(env, callee, type_args, args, scope, span)
        }
    }
}

fn member_type(env: &TypeEnv, bt: &Type, member: &str, span: Span) -> Result<Type, FrontendError> {
    match bt {
        Type::Poison => Ok(Type::Poison),
        Type::Header(n) | Type::Struct(n) => env.field_type(n, member).ok_or_else(|| {
            FrontendError::typecheck(span, format!("type {n} has no field '{member}'"))
                .with_code(codes::TYPE_BAD_MEMBER)
        }),
        Type::Stack(elem, _) => match member {
            "next" | "last" => Ok((**elem).clone()),
            "lastIndex" => Ok(Type::Bit(32)),
            "size" => Ok(Type::InfInt),
            _ => Err(FrontendError::typecheck(
                span,
                format!("header stack has no member '{member}'"),
            )
            .with_code(codes::TYPE_BAD_MEMBER)),
        },
        Type::ApplyResult { table } => match member {
            "hit" | "miss" => Ok(Type::Bool),
            "action_run" => Ok(Type::Action(table.clone())),
            _ => Err(FrontendError::typecheck(
                span,
                format!("apply result has no member '{member}'"),
            )
            .with_code(codes::TYPE_BAD_MEMBER)),
        },
        other => Err(FrontendError::typecheck(
            span,
            format!("cannot access member '{member}' on type {other}"),
        )
        .with_code(codes::TYPE_BAD_MEMBER)),
    }
}

fn binary_type(
    env: &TypeEnv,
    op: BinaryOp,
    lt: &Type,
    rt: &Type,
    span: Span,
) -> Result<Type, FrontendError> {
    use BinaryOp::*;
    if matches!(lt, Type::Poison) || matches!(rt, Type::Poison) {
        return Ok(match op {
            And | Or | Eq | Neq | Lt | Le | Gt | Ge => Type::Bool,
            _ => Type::Poison,
        });
    }
    match op {
        And | Or => {
            if *lt == Type::Bool && *rt == Type::Bool {
                Ok(Type::Bool)
            } else {
                Err(FrontendError::typecheck(span, format!("boolean operator on {lt} and {rt}"))
                    .with_code(codes::TYPE_MISMATCH))
            }
        }
        Eq | Neq => {
            if lt == rt
                || merge_numeric(lt, rt).is_some()
                || (matches!(lt, Type::Error) && matches!(rt, Type::Error))
            {
                if lt.is_equatable() || rt.is_equatable() {
                    Ok(Type::Bool)
                } else {
                    Err(FrontendError::typecheck(span, format!("cannot compare {lt}"))
                        .with_code(codes::TYPE_MISMATCH))
                }
            } else {
                Err(FrontendError::typecheck(span, format!("cannot compare {lt} with {rt}"))
                    .with_code(codes::TYPE_MISMATCH))
            }
        }
        Lt | Le | Gt | Ge => merge_numeric(lt, rt).map(|_| Type::Bool).ok_or_else(|| {
            FrontendError::typecheck(span, format!("cannot order {lt} and {rt}"))
                .with_code(codes::TYPE_MISMATCH)
        }),
        Shl | Shr => {
            if lt.is_numeric() && rt.is_numeric() {
                Ok(lt.clone())
            } else {
                Err(FrontendError::typecheck(span, format!("shift on {lt} by {rt}"))
                    .with_code(codes::TYPE_MISMATCH))
            }
        }
        Concat => {
            let (Some(lw), Some(rw)) = (lt.width(env), rt.width(env)) else {
                return Err(FrontendError::typecheck(
                    span,
                    format!("cannot concat {lt} and {rt}"),
                )
                .with_code(codes::TYPE_MISMATCH));
            };
            Ok(Type::Bit(lw + rw))
        }
        _ => merge_numeric(lt, rt).ok_or_else(|| {
            FrontendError::typecheck(span, format!("arithmetic on {lt} and {rt}"))
                .with_code(codes::TYPE_MISMATCH)
        }),
    }
}

/// Merge two numeric types (InfInt adapts to the sized operand; poison
/// merges with anything).
fn merge_numeric(a: &Type, b: &Type) -> Option<Type> {
    match (a, b) {
        (Type::Poison, _) | (_, Type::Poison) => Some(Type::Poison),
        _ if a == b && a.is_numeric() => Some(a.clone()),
        (Type::InfInt, t) if t.is_numeric() => Some(t.clone()),
        (t, Type::InfInt) if t.is_numeric() => Some(t.clone()),
        (Type::Enum { .. }, Type::Enum { .. }) if a == b => Some(a.clone()),
        (Type::Bool, Type::Bool) => Some(Type::Bool),
        _ => None,
    }
}

fn call_type(
    env: &TypeEnv,
    callee: &Expr,
    type_args: &[TypeRef],
    args: &[Expr],
    scope: &Scope,
    span: Span,
) -> Result<Type, FrontendError> {
    match callee {
        Expr::Member { base, member, .. } => {
            // Builtin methods on headers, packets, tables, stacks, externs.
            let bt = type_of_expr(env, base, scope)?;
            match (&bt, member.as_str()) {
                (Type::Poison, _) => Ok(Type::Poison),
                (Type::Header(_), "isValid") => Ok(Type::Bool),
                (Type::Header(_), "setValid" | "setInvalid") => Ok(Type::Void),
                (Type::Struct(_), "isValid") => Ok(Type::Bool), // tolerated on metadata unions
                (Type::PacketIn, "extract") => {
                    if args.is_empty() || args.len() > 2 {
                        return Err(FrontendError::typecheck(
                            span,
                            "extract takes 1 or 2 arguments",
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    }
                    let ht = type_of_expr(env, &args[0], scope)?;
                    if !matches!(ht, Type::Header(_) | Type::Poison) {
                        return Err(FrontendError::typecheck(
                            span,
                            format!("extract argument must be a header, got {ht}"),
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    }
                    Ok(Type::Void)
                }
                (Type::PacketIn, "advance") => {
                    if args.len() != 1 {
                        return Err(FrontendError::typecheck(
                            span,
                            "advance takes exactly 1 argument",
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    }
                    Ok(Type::Void)
                }
                (Type::PacketIn, "length") => Ok(Type::Bit(32)),
                (Type::PacketIn, "lookahead") => {
                    let [t] = type_args else {
                        return Err(FrontendError::typecheck(
                            span,
                            "lookahead requires one type argument",
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    };
                    env.resolve(t, span)
                }
                (Type::PacketOut, "emit") => {
                    if args.len() != 1 {
                        return Err(FrontendError::typecheck(
                            span,
                            "emit takes exactly 1 argument",
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    }
                    Ok(Type::Void)
                }
                (Type::Table(name), "apply") => Ok(Type::ApplyResult { table: name.clone() }),
                (Type::Stack(_, _), "push_front" | "pop_front") => {
                    if args.len() != 1 {
                        return Err(FrontendError::typecheck(
                            span,
                            format!("{member} takes exactly 1 argument"),
                        )
                        .with_code(codes::TYPE_BAD_CALL));
                    }
                    Ok(Type::Void)
                }
                (Type::Extern { name, type_args: targs }, m) => {
                    let sig = env.extern_method(name, targs, m).ok_or_else(|| {
                        FrontendError::typecheck(
                            span,
                            format!("extern {name} has no method '{m}'"),
                        )
                        .with_code(codes::TYPE_BAD_CALL)
                    })?;
                    check_extern_args(env, &sig, type_args, args, scope, span)
                }
                (other, m) => Err(FrontendError::typecheck(
                    span,
                    format!("no method '{m}' on type {other}"),
                )
                .with_code(codes::TYPE_BAD_CALL)),
            }
        }
        Expr::Ident { name, .. } => {
            // Extern function or action call.
            if let Some(sig) = env.extern_fns.get(name) {
                let sig = sig.clone();
                return check_extern_args(env, &sig, type_args, args, scope, span);
            }
            // Action calls are checked against the control's action map by
            // the statement checker; here we accept known-scoped actions.
            if let Some(Type::Action(_)) = scope.lookup(name) {
                return Ok(Type::Void);
            }
            // Direct action invocation (e.g. `my_action();`) — the lowering
            // verifies the action exists in the enclosing control.
            Ok(Type::Void)
        }
        other => Err(FrontendError::typecheck(
            span,
            format!("cannot call expression {other:?}"),
        )
        .with_code(codes::TYPE_BAD_CALL)),
    }
}

/// Check extern function arguments against a signature, binding free type
/// parameters loosely (any argument type satisfies a type variable).
fn check_extern_args(
    env: &TypeEnv,
    sig: &ExternFunction,
    type_args: &[TypeRef],
    args: &[Expr],
    scope: &Scope,
    span: Span,
) -> Result<Type, FrontendError> {
    if args.len() != sig.params.len() {
        return Err(FrontendError::typecheck(
            span,
            format!(
                "extern '{}' expects {} arguments, got {}",
                sig.name,
                sig.params.len(),
                args.len()
            ),
        )
        .with_code(codes::TYPE_BAD_CALL));
    }
    let mut bindings: HashMap<String, Type> = HashMap::new();
    for (i, tp) in sig.type_params.iter().enumerate() {
        if let Some(ta) = type_args.get(i) {
            bindings.insert(tp.clone(), env.resolve(ta, span)?);
        }
    }
    for (param, arg) in sig.params.iter().zip(args) {
        let at = type_of_expr(env, arg, scope)?;
        if matches!(param.direction, Direction::Out | Direction::InOut) && !is_lvalue(arg) {
            return Err(FrontendError::typecheck(
                span,
                format!("argument for out parameter '{}' must be an lvalue", param.name),
            )
            .with_code(codes::TYPE_NOT_LVALUE));
        }
        if let TypeRef::Named(n) = &param.ty {
            if sig.type_params.contains(n) {
                bindings.entry(n.clone()).or_insert(at);
                continue;
            }
        }
        // Fixed parameter type: permissive width check.
        let pt = env.resolve(&param.ty, span)?;
        let compatible = pt == at
            || merge_numeric(&pt, &at).is_some()
            || matches!(at, Type::Struct(ref s) if s == "<list>")
            || matches!(pt, Type::Varbit(_));
        if !compatible {
            return Err(FrontendError::typecheck(
                span,
                format!(
                    "extern '{}' parameter '{}' expects {pt}, got {at}",
                    sig.name, param.name
                ),
            )
            .with_code(codes::TYPE_BAD_CALL));
        }
    }
    match &sig.ret {
        TypeRef::Named(n) if sig.type_params.contains(n) => {
            bindings.get(n).cloned().ok_or_else(|| {
                FrontendError::typecheck(
                    span,
                    format!("cannot infer return type of extern '{}'", sig.name),
                )
                .with_code(codes::TYPE_BAD_CALL)
            })
        }
        other => env.resolve(other, span),
    }
}

/// Whether an expression is a valid assignment target.
pub fn is_lvalue(e: &Expr) -> bool {
    match e {
        Expr::Ident { .. } => true,
        Expr::Member { base, .. } => is_lvalue(base) || matches!(base.as_ref(), Expr::Ident { .. }),
        Expr::Index { base, .. } => is_lvalue(base),
        Expr::Slice { base, .. } => is_lvalue(base),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<CheckedProgram, Vec<Diagnostic>> {
        typecheck(parse(src).expect("parse"))
    }

    #[test]
    fn reports_multiple_independent_errors() {
        let src = r#"
            header h_t { bit<8> x; }
            control c(inout h_t h) {
                apply {
                    h.nope = 1;
                    h.also_nope = 2;
                }
            }
        "#;
        let errs = check(src).expect_err("should fail");
        assert!(errs.len() >= 2, "expected both bad fields reported: {errs:?}");
        assert!(errs.iter().all(|e| e.code == codes::TYPE_BAD_MEMBER), "{errs:?}");
    }

    #[test]
    fn poisoned_type_does_not_cascade() {
        // `nosuch_t` is unknown; uses of `m` after that must not produce
        // further diagnostics.
        let src = r#"
            control c() {
                apply {
                    nosuch_t m;
                    m = m + 1;
                    bit<8> y = m[3:0] ++ m.f;
                }
            }
        "#;
        let errs = check(src).expect_err("should fail");
        assert_eq!(errs.len(), 1, "poison should suppress cascades: {errs:?}");
        assert_eq!(errs[0].code, codes::TYPE_UNKNOWN_TYPE);
    }

    #[test]
    fn clean_program_has_no_warnings() {
        let src = r#"
            header h_t { bit<8> x; }
            control c(inout h_t h) {
                apply { h.x = 1; }
            }
        "#;
        let checked = check(src).expect("should typecheck");
        assert!(checked.warnings.is_empty());
    }

    #[test]
    fn scope_declare_without_frames_does_not_panic() {
        let mut s = Scope::default();
        s.declare("x", Type::Bool);
        assert_eq!(s.lookup("x"), Some(&Type::Bool));
    }
}
