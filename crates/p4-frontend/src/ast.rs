//! Abstract syntax tree for the P4-16 subset.
//!
//! The AST mirrors the surface syntax closely; lowering to the executable IR
//! (with resolved types, flattened field paths, and elaborated header-stack
//! indices) lives in the `p4t-ir` crate.

use crate::token::Span;

/// An annotation such as `@name("x")`, `@priority(3)`, or
/// `@entry_restriction("...")`.
#[derive(Clone, Debug, PartialEq)]
pub struct Annotation {
    pub name: String,
    pub args: Vec<AnnotationArg>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub enum AnnotationArg {
    Str(String),
    Int(u128),
    Ident(String),
}

impl Annotation {
    /// First string argument, if any (`@name("x")` → `x`).
    pub fn string_arg(&self) -> Option<&str> {
        self.args.iter().find_map(|a| match a {
            AnnotationArg::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// First integer argument, if any.
    pub fn int_arg(&self) -> Option<u128> {
        self.args.iter().find_map(|a| match a {
            AnnotationArg::Int(i) => Some(*i),
            _ => None,
        })
    }
}

/// Helper: find an annotation by name.
pub fn find_annotation<'a>(anns: &'a [Annotation], name: &str) -> Option<&'a Annotation> {
    anns.iter().find(|a| a.name == name)
}

/// Surface types.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeRef {
    Bool,
    /// `bit<N>`; `N` may be a constant expression in the surface syntax but
    /// is resolved to a literal during parsing of our subset.
    Bit(u32),
    /// `int<N>` two's complement.
    Int(u32),
    /// `varbit<N>`: at most `N` bits.
    Varbit(u32),
    /// `error` type.
    Error,
    /// A named type (header, struct, enum, typedef, extern object).
    Named(String),
    /// A header stack `T[N]`.
    Stack(Box<TypeRef>, u32),
    /// Generic instantiation `Name<T1, T2>` (extern objects).
    Generic(String, Vec<TypeRef>),
    /// `void` (extern function returns).
    Void,
    /// A don't-care type argument `_`.
    Dontcare,
}

/// Direction of a parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    None,
    In,
    Out,
    InOut,
}

/// A parameter of a parser, control, action, or extern function.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    pub direction: Direction,
    pub ty: TypeRef,
    pub name: String,
    pub span: Span,
}

/// A field of a header or struct.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    pub ty: TypeRef,
    pub name: String,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    BitNot,
    Neg,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal with optional width.
    Int { value: u128, width: Option<u32>, signed: bool, span: Span },
    Bool { value: bool, span: Span },
    /// String literal (annotation-adjacent contexts only).
    Str { value: String, span: Span },
    /// A name: variable, constant, enum member head, action, state, etc.
    Ident { name: String, span: Span },
    /// `expr.member` (field access, `hdr.stack.next`, enum `Type.Member`,
    /// `error.NoError`).
    Member { base: Box<Expr>, member: String, span: Span },
    /// `base[index]` on header stacks.
    Index { base: Box<Expr>, index: Box<Expr>, span: Span },
    /// `base[hi:lo]` bit slice.
    Slice { base: Box<Expr>, hi: Box<Expr>, lo: Box<Expr>, span: Span },
    Unary { op: UnaryOp, arg: Box<Expr>, span: Span },
    Binary { op: BinaryOp, lhs: Box<Expr>, rhs: Box<Expr>, span: Span },
    /// `cond ? a : b`.
    Ternary { cond: Box<Expr>, then_e: Box<Expr>, else_e: Box<Expr>, span: Span },
    /// `(type) expr`.
    Cast { ty: TypeRef, arg: Box<Expr>, span: Span },
    /// Function or method call. `callee` is an `Ident` or `Member` chain;
    /// `type_args` holds `<...>` arguments (e.g. `lookahead<bit<16>>()`).
    Call { callee: Box<Expr>, type_args: Vec<TypeRef>, args: Vec<Expr>, span: Span },
    /// `{ e1, e2, ... }` list expression (struct/header initializers).
    List { items: Vec<Expr>, span: Span },
    /// `value &&& mask` (keyset contexts).
    Mask { value: Box<Expr>, mask: Box<Expr>, span: Span },
    /// `lo .. hi` (keyset contexts).
    Range { lo: Box<Expr>, hi: Box<Expr>, span: Span },
    /// `default` / `_` in keysets.
    Dontcare { span: Span },
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Bool { span, .. }
            | Expr::Str { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Member { span, .. }
            | Expr::Index { span, .. }
            | Expr::Slice { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Call { span, .. }
            | Expr::List { span, .. }
            | Expr::Mask { span, .. }
            | Expr::Range { span, .. }
            | Expr::Dontcare { span } => *span,
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `type name = init;` or `type name;`
    VarDecl { ty: TypeRef, name: String, init: Option<Expr>, span: Span },
    /// `const type name = init;`
    ConstDecl { ty: TypeRef, name: String, init: Expr, span: Span },
    /// `lhs = rhs;`
    Assign { lhs: Expr, rhs: Expr, span: Span },
    /// An expression statement (method/function call).
    Call { call: Expr, span: Span },
    If { cond: Expr, then_s: Box<Stmt>, else_s: Option<Box<Stmt>>, span: Span },
    /// `switch (table.apply().action_run) { ... }`
    Switch { scrutinee: Expr, cases: Vec<SwitchCase>, span: Span },
    Block { stmts: Vec<Stmt>, span: Span },
    Exit { span: Span },
    Return { span: Span },
    /// Empty statement `;`.
    Empty { span: Span },
}

/// One arm of a `switch`. Multiple labels can share one body via fallthrough
/// (`case A: case B: { ... }`); a `None` body records a fallthrough label.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchCase {
    /// `None` means `default`.
    pub label: Option<String>,
    pub body: Option<Stmt>,
    pub span: Span,
}

/// A key element of a table: `expr : match_kind [@annotations];`
#[derive(Clone, Debug, PartialEq)]
pub struct TableKey {
    pub expr: Expr,
    pub match_kind: String,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// An action reference in a table's `actions` list.
#[derive(Clone, Debug, PartialEq)]
pub struct ActionRef {
    pub name: String,
    /// Partial application arguments (rare; usually empty).
    pub args: Vec<Expr>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// A constant table entry: `(keyset...) : action(args);`
#[derive(Clone, Debug, PartialEq)]
pub struct TableEntry {
    pub keys: Vec<Expr>,
    pub action: String,
    pub args: Vec<Expr>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// A table declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct TableDecl {
    pub name: String,
    pub keys: Vec<TableKey>,
    pub actions: Vec<ActionRef>,
    /// `default_action = name(args);` with constness flag.
    pub default_action: Option<(String, Vec<Expr>, bool)>,
    pub entries: Vec<TableEntry>,
    pub size: Option<u64>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// An action declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ActionDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// An instantiation: `Type(args) name;` (packages, extern objects).
#[derive(Clone, Debug, PartialEq)]
pub struct Instantiation {
    pub ty: TypeRef,
    pub args: Vec<Expr>,
    pub name: String,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// One state of a parser.
#[derive(Clone, Debug, PartialEq)]
pub struct ParserState {
    pub name: String,
    pub stmts: Vec<Stmt>,
    pub transition: Transition,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// A parser transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Transition {
    /// `transition accept;` / `transition reject;` / `transition next_state;`
    Direct(String),
    /// `transition select(e1, e2) { keyset: state; ... }`
    Select { exprs: Vec<Expr>, cases: Vec<SelectCase>, span: Span },
}

/// One arm of a `select`.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectCase {
    /// One keyset expression per select argument (or a single `Dontcare`).
    pub keys: Vec<Expr>,
    pub next_state: String,
    pub span: Span,
}

/// A parser declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ParserDecl {
    pub name: String,
    pub params: Vec<Param>,
    /// Local declarations (variables, instantiations).
    pub locals: Vec<Stmt>,
    pub states: Vec<ParserState>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// A control declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub actions: Vec<ActionDecl>,
    pub tables: Vec<TableDecl>,
    /// Local variable declarations and instantiations.
    pub locals: Vec<Stmt>,
    pub instantiations: Vec<Instantiation>,
    pub apply: Vec<Stmt>,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

/// An extern function signature: `extern Ret name<T...>(params);`
#[derive(Clone, Debug, PartialEq)]
pub struct ExternFunction {
    pub name: String,
    pub type_params: Vec<String>,
    pub ret: TypeRef,
    pub params: Vec<Param>,
    pub span: Span,
}

/// An extern object: `extern Name<T...> { ctor; methods }`
#[derive(Clone, Debug, PartialEq)]
pub struct ExternObject {
    pub name: String,
    pub type_params: Vec<String>,
    /// Constructor parameter lists (may be overloaded).
    pub constructors: Vec<Vec<Param>>,
    pub methods: Vec<ExternFunction>,
    pub span: Span,
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    Const { ty: TypeRef, name: String, value: Expr, span: Span },
    Typedef { ty: TypeRef, name: String, span: Span },
    Header { name: String, fields: Vec<Field>, annotations: Vec<Annotation>, span: Span },
    Struct { name: String, fields: Vec<Field>, annotations: Vec<Annotation>, span: Span },
    /// `enum Name { A, B }` or `enum bit<N> Name { A = 1, ... }`.
    Enum {
        name: String,
        underlying: Option<TypeRef>,
        members: Vec<(String, Option<Expr>)>,
        span: Span,
    },
    /// `error { A, B }` — additional error constants.
    ErrorDecl { members: Vec<String>, span: Span },
    /// `match_kind { exact, ... }` — additional match kinds.
    MatchKindDecl { members: Vec<String>, span: Span },
    Parser(ParserDecl),
    Control(ControlDecl),
    ExternFunction(ExternFunction),
    ExternObject(ExternObject),
    /// `package V1Switch(...)` signatures — accepted and recorded by name.
    Package { name: String, span: Span },
    /// Top-level instantiation (the `main` package instance).
    Instantiation(Instantiation),
    /// A top-level action (P4 allows it; used by some tests).
    Action(ActionDecl),
}

/// A parsed program: an ordered list of declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub decls: Vec<Decl>,
}

impl Program {
    pub fn parsers(&self) -> impl Iterator<Item = &ParserDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Parser(p) => Some(p),
            _ => None,
        })
    }

    pub fn controls(&self) -> impl Iterator<Item = &ControlDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Control(c) => Some(c),
            _ => None,
        })
    }

    /// The `main` package instantiation, if present.
    pub fn main_instantiation(&self) -> Option<&Instantiation> {
        self.decls.iter().find_map(|d| match d {
            Decl::Instantiation(i) if i.name == "main" => Some(i),
            _ => None,
        })
    }

    pub fn find_parser(&self, name: &str) -> Option<&ParserDecl> {
        self.parsers().find(|p| p.name == name)
    }

    pub fn find_control(&self, name: &str) -> Option<&ControlDecl> {
        self.controls().find(|c| c.name == name)
    }
}
