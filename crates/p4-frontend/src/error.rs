//! Frontend diagnostics.
//!
//! Every frontend stage reports problems as [`Diagnostic`]s: a stable error
//! code (see [`codes`]), a severity, the originating phase, a byte span into
//! the preprocessed source, and a human-readable message. Stages accumulate
//! diagnostics in a [`DiagSink`] and keep going — one malformed file yields
//! many diagnostics, not one abort. Rendering with source context (line text
//! plus a caret) is done by [`crate::diag::SourceMap`].
//!
//! [`FrontendError`] is a compatibility alias for [`Diagnostic`]: older call
//! sites construct single-error values through it and the phase constructors
//! below, which attach a generic per-phase code that specific sites can
//! override with [`Diagnostic::with_code`].

use crate::token::{Pos, Span};
use std::fmt;

/// Phase in which a problem was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    Lex,
    Parse,
    Typecheck,
}

/// How severe a diagnostic is. Only `Error` diagnostics make a stage fail;
/// warnings ride along on successful results.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Warning,
    Error,
}

/// Stable diagnostic codes.
///
/// The numbering is grouped by phase — `L` lexer/preprocessor, `P` parser,
/// `T` typechecker (also used by IR lowering), `W` warnings, `D` meta — and
/// codes are append-only: a published code never changes meaning, so tests
/// and triage tooling can key on them.
pub mod codes {
    /// Generic lexical error.
    pub const LEX_GENERIC: &str = "L0001";
    /// Unterminated string literal at end of input.
    pub const LEX_UNTERMINATED_STRING: &str = "L0101";
    /// Unterminated `/* ... */` block comment at end of input.
    pub const LEX_UNTERMINATED_COMMENT: &str = "L0102";
    /// A character that cannot start any token.
    pub const LEX_UNEXPECTED_CHAR: &str = "L0103";
    /// Integer literal does not fit in 128 bits.
    pub const LEX_INT_OVERFLOW: &str = "L0104";
    /// Width-prefixed literal with width 0.
    pub const LEX_ZERO_WIDTH: &str = "L0105";
    /// A numeric literal with no digits after its base prefix.
    pub const LEX_EXPECTED_DIGITS: &str = "L0106";
    /// Unknown base suffix after `0` (not one of x/b/o/d).
    pub const LEX_BAD_BASE: &str = "L0107";
    /// `@` not followed by an annotation name.
    pub const LEX_BAD_ANNOTATION: &str = "L0108";
    /// String escape cut off by end of input.
    pub const LEX_UNTERMINATED_ESCAPE: &str = "L0109";
    /// Literal width prefix does not fit in u32.
    pub const LEX_WIDTH_TOO_LARGE: &str = "L0110";

    /// Generic parse error (unexpected token).
    pub const PARSE_GENERIC: &str = "P0001";
    /// Expected an identifier.
    pub const PARSE_EXPECTED_IDENT: &str = "P0102";
    /// Expected an integer literal.
    pub const PARSE_EXPECTED_INT: &str = "P0103";
    /// Expected an expression.
    pub const PARSE_EXPECTED_EXPR: &str = "P0104";
    /// Expected a type.
    pub const PARSE_EXPECTED_TYPE: &str = "P0105";
    /// Input ended in the middle of a construct.
    pub const PARSE_UNEXPECTED_EOF: &str = "P0106";
    /// Nesting too deep; the recursion-depth guard fired.
    pub const PARSE_RECURSION_LIMIT: &str = "P0107";
    /// Expected a top-level declaration.
    pub const PARSE_EXPECTED_DECL: &str = "P0108";
    /// Expected a statement.
    pub const PARSE_EXPECTED_STMT: &str = "P0109";

    /// Generic type error.
    pub const TYPE_GENERIC: &str = "T0001";
    /// Reference to an unknown type name.
    pub const TYPE_UNKNOWN_TYPE: &str = "T0201";
    /// Reference to an unknown value/symbol.
    pub const TYPE_UNKNOWN_SYMBOL: &str = "T0202";
    /// Operand or assignment type mismatch.
    pub const TYPE_MISMATCH: &str = "T0203";
    /// Malformed call: unknown callee, arity, or argument kinds.
    pub const TYPE_BAD_CALL: &str = "T0204";
    /// Assignment target is not an lvalue.
    pub const TYPE_NOT_LVALUE: &str = "T0205";
    /// Name declared more than once in a scope.
    pub const TYPE_DUPLICATE: &str = "T0206";
    /// Expression is not compile-time constant where one is required.
    pub const TYPE_NOT_CONST: &str = "T0207";
    /// Member access on a type that has no such member.
    pub const TYPE_BAD_MEMBER: &str = "T0208";

    /// Unknown table property (skipped).
    pub const WARN_UNKNOWN_TABLE_PROP: &str = "W0001";
    /// Preprocessor directive that is recognized but ignored.
    pub const WARN_IGNORED_DIRECTIVE: &str = "W0002";

    /// Diagnostic cap reached; further diagnostics were suppressed.
    pub const DIAG_CAP: &str = "D0001";
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A problem with source location, produced by the lexer, parser, checker,
/// or IR lowering.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub phase: Phase,
    pub severity: Severity,
    /// Stable code from [`codes`].
    pub code: &'static str,
    pub span: Span,
    pub message: String,
}

/// Compatibility alias: single-error call sites predate the multi-diagnostic
/// pipeline and still name this type.
pub type FrontendError = Diagnostic;

impl Diagnostic {
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        Diagnostic {
            phase: Phase::Lex,
            severity: Severity::Error,
            code: codes::LEX_GENERIC,
            span: Span { start: pos, end: pos },
            message: message.into(),
        }
    }

    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase: Phase::Parse,
            severity: Severity::Error,
            code: codes::PARSE_GENERIC,
            span,
            message: message.into(),
        }
    }

    pub fn typecheck(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase: Phase::Typecheck,
            severity: Severity::Error,
            code: codes::TYPE_GENERIC,
            span,
            message: message.into(),
        }
    }

    /// Replace the generic phase code with a specific one.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = code;
        self
    }

    /// Downgrade to a warning.
    pub fn warning(mut self) -> Self {
        self.severity = Severity::Warning;
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Typecheck => "type",
        };
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{phase} {sev}[{}] at {}:{}: {}",
            self.code, self.span.start.line, self.span.start.col, self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// Default per-file diagnostic cap: past this many, stages stop recording
/// (and stop doing precise recovery work) and emit one final [`codes::DIAG_CAP`]
/// note. Generous enough for real editing sessions, small enough that an
/// adversarial input cannot make the frontend allocate without bound.
pub const MAX_DIAGNOSTICS: usize = 100;

/// An accumulator for diagnostics with a hard cap.
#[derive(Debug, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
    suppressed: usize,
}

impl DiagSink {
    pub fn new() -> Self {
        DiagSink::default()
    }

    /// Record a diagnostic. Past [`MAX_DIAGNOSTICS`] errors the sink counts
    /// but drops them, recording a single cap marker instead.
    pub fn push(&mut self, d: Diagnostic) {
        if self.diags.len() >= MAX_DIAGNOSTICS {
            if self.suppressed == 0 {
                let span = d.span;
                self.diags.push(
                    Diagnostic::parse(
                        span,
                        format!("too many diagnostics; stopping after {MAX_DIAGNOSTICS}"),
                    )
                    .with_code(codes::DIAG_CAP),
                );
            }
            self.suppressed += 1;
            return;
        }
        self.diags.push(d);
    }

    /// True once the cap marker has been emitted; callers may bail out of
    /// fine-grained recovery at this point.
    pub fn capped(&self) -> bool {
        self.suppressed > 0
    }

    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(Diagnostic::is_error)
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        for d in diags {
            self.push(d);
        }
    }

    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.diags
    }
}
