//! Frontend diagnostics.

use crate::token::{Pos, Span};
use std::fmt;

/// Phase in which an error was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    Lex,
    Parse,
    Typecheck,
}

/// An error with source location, produced by the lexer, parser, or checker.
#[derive(Clone, Debug)]
pub struct FrontendError {
    pub phase: Phase,
    pub span: Span,
    pub message: String,
}

impl FrontendError {
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        FrontendError {
            phase: Phase::Lex,
            span: Span { start: pos, end: pos },
            message: message.into(),
        }
    }

    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        FrontendError { phase: Phase::Parse, span, message: message.into() }
    }

    pub fn typecheck(span: Span, message: impl Into<String>) -> Self {
        FrontendError { phase: Phase::Typecheck, span, message: message.into() }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Typecheck => "type",
        };
        write!(
            f,
            "{phase} error at {}:{}: {}",
            self.span.start.line, self.span.start.col, self.message
        )
    }
}

impl std::error::Error for FrontendError {}
