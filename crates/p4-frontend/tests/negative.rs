//! Negative tests: malformed programs must produce diagnostics (never
//! panics), with messages pointing at the actual problem.

use p4t_frontend::{frontend, parse};

const MINI_PRELUDE: &str = r#"
struct standard_metadata_t { bit<9> port; }
"#;

fn wrap(body: &str) -> String {
    format!("{MINI_PRELUDE}\n{body}")
}

#[track_caller]
fn expect_error(src: &str, needle: &str) {
    match frontend(src) {
        Ok(_) => panic!("expected an error mentioning '{needle}'"),
        Err(e) => {
            let msg =
                e.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
            assert!(
                msg.contains(needle),
                "error should mention '{needle}', got: {msg}"
            );
        }
    }
}

#[test]
fn unterminated_block() {
    let src = wrap("control C(inout standard_metadata_t sm) { apply {");
    assert!(parse(&src).is_err());
}

#[test]
fn unknown_type_in_field() {
    expect_error(
        &wrap("header h_t { mystery_t f; }\nstruct hs { h_t h; }"),
        "mystery_t",
    );
}

#[test]
fn parser_without_start_state() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
parser P(packet_in pkt, out hs hdr) {
    state not_start { transition accept; }
}"#,
        ),
        "start",
    );
}

#[test]
fn header_with_struct_field_rejected() {
    expect_error(
        &wrap(
            r#"
struct inner { bit<8> v; }
header h_t { inner i; }
"#,
        ),
        "fixed-width",
    );
}

#[test]
fn bad_match_kind() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    action a() { }
    table t {
        key = { hdr.h.v: fuzzy; }
        actions = { a; }
    }
    apply { t.apply(); }
}"#,
        ),
        "fuzzy",
    );
}

#[test]
fn entry_arity_mismatch() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; bit<8> w; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    action a() { }
    table t {
        key = { hdr.h.v: exact; hdr.h.w: exact; }
        actions = { a; }
        const entries = { (1): a(); }
    }
    apply { t.apply(); }
}"#,
        ),
        "keys",
    );
}

#[test]
fn default_action_not_listed() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    action a() { }
    action ghost() { }
    table t {
        key = { hdr.h.v: exact; }
        actions = { a; }
        default_action = ghost();
    }
    apply { t.apply(); }
}"#,
        ),
        "ghost",
    );
}

#[test]
fn assignment_to_rvalue() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    apply { (hdr.h.v + 1) = 5; }
}"#,
        ),
        "assign",
    );
}

#[test]
fn condition_must_be_bool() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    apply { if (hdr.h.v) { sm.port = 1; } }
}"#,
        ),
        "bool",
    );
}

#[test]
fn slice_out_of_range() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    apply { sm.port = (bit<9>) hdr.h.v[9:2]; }
}"#,
        ),
        "range",
    );
}

#[test]
fn unknown_error_member() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> v; }
struct hs { h_t h; }
struct m_t { error e; }
control C(inout hs hdr, inout m_t m, inout standard_metadata_t sm) {
    apply {
        if (m.e == error.NoSuchError) { sm.port = 1; }
    }
}"#,
        ),
        "NoSuchError",
    );
}

#[test]
fn select_case_arity_mismatch() {
    expect_error(
        &wrap(
            r#"
header h_t { bit<8> a; bit<8> b; }
struct hs { h_t h; }
parser P(packet_in pkt, out hs hdr) {
    state start {
        pkt.extract(hdr.h);
        transition select(hdr.h.a, hdr.h.b) {
            (1, 2, 3): accept;
            default: accept;
        }
    }
}"#,
        ),
        "keys",
    );
}

#[test]
fn extract_of_non_header() {
    expect_error(
        &wrap(
            r#"
struct meta_t { bit<8> v; }
struct hs { meta_t m; }
parser P(packet_in pkt, out hs hdr) {
    state start {
        pkt.extract(hdr.m);
        transition accept;
    }
}"#,
        ),
        "header",
    );
}

#[test]
fn extern_arity_mismatch() {
    expect_error(
        &wrap(
            r#"
extern void thing(in bit<8> a, in bit<8> b);
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    apply { thing(hdr.h.v); }
}"#,
        ),
        "argument",
    );
}

#[test]
fn out_arg_must_be_lvalue() {
    expect_error(
        &wrap(
            r#"
extern void produce(out bit<8> r);
header h_t { bit<8> v; }
struct hs { h_t h; }
control C(inout hs hdr, inout standard_metadata_t sm) {
    apply { produce(8w5); }
}"#,
        ),
        "lvalue",
    );
}

#[test]
fn duplicate_width_literal_garbage() {
    assert!(parse("const bit<8> x = 8w8w5;").is_err());
}

#[test]
fn zero_width_literal_rejected() {
    assert!(parse("const bit<8> x = 0w1;").is_err());
}

#[test]
fn errors_carry_line_numbers() {
    let src = "\n\n\nheader h_t { bad_type f; }\nstruct hs { h_t h; }";
    let err = frontend(&wrap(src)).unwrap_err();
    // The prelude is 2 lines; the header is on line ~6 of the combined file.
    assert!(err[0].span.start.line >= 4, "line info: {err:?}");
}
