//! Property-based tests for the frontend: expression parsing with operator
//! precedence cross-validated against a reference evaluator, lexer
//! robustness, and pretty-print/const-eval agreement.

use p4t_frontend::ast::{BinaryOp, Expr, UnaryOp};
use p4t_frontend::typecheck::const_eval;
use p4t_frontend::types::TypeEnv;
use p4t_frontend::{parse, parse_expression};
use proptest::prelude::*;

/// A reference expression: generated with explicit structure, rendered to
/// source with *minimal* parentheses following C precedence, then parsed
/// back — the parsed tree must evaluate identically.
#[derive(Clone, Debug)]
enum R {
    Num(u64),
    Add(Box<R>, Box<R>),
    Sub(Box<R>, Box<R>),
    Mul(Box<R>, Box<R>),
    And(Box<R>, Box<R>),
    Or(Box<R>, Box<R>),
    Xor(Box<R>, Box<R>),
    Shl(Box<R>, u8),
    Shr(Box<R>, u8),
    Not(Box<R>),
}

fn arb_r() -> impl Strategy<Value = R> {
    let leaf = (0u64..1_000_000).prop_map(R::Num);
    leaf.prop_recursive(5, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| R::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..16).prop_map(|(a, s)| R::Shl(Box::new(a), s)),
            (inner.clone(), 0u8..16).prop_map(|(a, s)| R::Shr(Box::new(a), s)),
            inner.prop_map(|a| R::Not(Box::new(a))),
        ]
    })
}

/// Render with full parentheses (unambiguous) — the parser must still get
/// precedence right because sub-expressions are themselves parenthesized
/// only at alternation points.
fn render(r: &R) -> String {
    match r {
        R::Num(n) => n.to_string(),
        R::Add(a, b) => format!("({} + {})", render(a), render(b)),
        R::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        R::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        R::And(a, b) => format!("({} & {})", render(a), render(b)),
        R::Or(a, b) => format!("({} | {})", render(a), render(b)),
        R::Xor(a, b) => format!("({} ^ {})", render(a), render(b)),
        R::Shl(a, s) => format!("({} << {})", render(a), s),
        R::Shr(a, s) => format!("({} >> {})", render(a), s),
        R::Not(a) => format!("(~{})", render(a)),
    }
}

/// Render exploiting standard precedence (no parens where P4 precedence
/// binds tighter): + - over * is broken up correctly only if the parser
/// implements precedence correctly.
fn render_flat(r: &R) -> String {
    // P4/C precedence (higher binds tighter): | 1, ^ 2, & 3, shift 4,
    // +/- 5, * 6, unary 7 — mirroring the parser's grammar levels.
    fn go(r: &R, parent: u8) -> String {
        let (s, prec) = match r {
            R::Num(n) => (n.to_string(), 8),
            R::Mul(a, b) => (format!("{} * {}", go(a, 6), go(b, 7)), 6),
            R::Add(a, b) => (format!("{} + {}", go(a, 5), go(b, 6)), 5),
            R::Sub(a, b) => (format!("{} - {}", go(a, 5), go(b, 6)), 5),
            R::Shl(a, n) => (format!("{} << {}", go(a, 4), n), 4),
            R::Shr(a, n) => (format!("{} >> {}", go(a, 4), n), 4),
            R::And(a, b) => (format!("{} & {}", go(a, 3), go(b, 4)), 3),
            R::Xor(a, b) => (format!("{} ^ {}", go(a, 2), go(b, 3)), 2),
            R::Or(a, b) => (format!("{} | {}", go(a, 1), go(b, 2)), 1),
            R::Not(a) => (format!("~{}", go(a, 7)), 7),
        };
        if prec < parent {
            format!("({s})")
        } else {
            s
        }
    }
    go(r, 0)
}

fn reference(r: &R) -> u128 {
    match r {
        R::Num(n) => *n as u128,
        R::Add(a, b) => reference(a).wrapping_add(reference(b)),
        R::Sub(a, b) => reference(a).wrapping_sub(reference(b)),
        R::Mul(a, b) => reference(a).wrapping_mul(reference(b)),
        R::And(a, b) => reference(a) & reference(b),
        R::Or(a, b) => reference(a) | reference(b),
        R::Xor(a, b) => reference(a) ^ reference(b),
        R::Shl(a, s) => reference(a).checked_shl(*s as u32).unwrap_or(0),
        R::Shr(a, s) => reference(a).checked_shr(*s as u32).unwrap_or(0),
        R::Not(a) => !reference(a),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fully parenthesized rendering parses and evaluates correctly.
    #[test]
    fn expression_parse_eval_parenthesized(r in arb_r()) {
        let src = render(&r);
        let expr = parse_expression(&src)
            .unwrap_or_else(|e| panic!("failed to parse {src}: {e:?}"));
        let env = TypeEnv::new();
        let got = const_eval(&env, &expr).expect("constant expression");
        prop_assert_eq!(got, reference(&r), "src: {}", src);
    }

    /// Precedence-aware rendering (minimal parens) parses to the same value:
    /// this is the real precedence cross-validation.
    #[test]
    fn expression_parse_eval_flat(r in arb_r()) {
        let src = render_flat(&r);
        let expr = parse_expression(&src)
            .unwrap_or_else(|e| panic!("failed to parse {src}: {e:?}"));
        let env = TypeEnv::new();
        let got = const_eval(&env, &expr).expect("constant expression");
        prop_assert_eq!(got, reference(&r), "src: {}", src);
    }

    /// The lexer never panics on arbitrary input (errors are Results).
    #[test]
    fn lexer_total(input in "\\PC*") {
        let _ = p4t_frontend::lexer::lex(&input);
    }

    /// The parser never panics on arbitrary token-ish soup.
    #[test]
    fn parser_total(input in "[a-z0-9{}();=<>.,+*&|! \n\t\"@_-]{0,200}") {
        let _ = parse(&input);
    }

    /// Width-prefixed literals round-trip through the lexer.
    #[test]
    fn width_literals_roundtrip(w in 1u32..64, v: u64) {
        let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
        let src = format!("{w}w{masked}");
        let expr = parse_expression(&src).unwrap();
        match expr {
            Expr::Int { value, width, signed, .. } => {
                prop_assert_eq!(value, masked as u128);
                prop_assert_eq!(width, Some(w));
                prop_assert!(!signed);
            }
            other => prop_assert!(false, "expected literal, got {:?}", other),
        }
    }
}

#[test]
fn unary_ops_ast_shape() {
    let e = parse_expression("!true").unwrap();
    assert!(matches!(e, Expr::Unary { op: UnaryOp::Not, .. }));
    let e = parse_expression("-(5)").unwrap();
    assert!(matches!(e, Expr::Unary { op: UnaryOp::Neg, .. }));
    let e = parse_expression("a ++ b").unwrap();
    assert!(matches!(e, Expr::Binary { op: BinaryOp::Concat, .. }));
}
