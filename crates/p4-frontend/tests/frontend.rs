//! End-to-end frontend tests: parse + typecheck realistic P4 programs.

use p4t_frontend::ast::*;
use p4t_frontend::{frontend, parse};

/// A minimal v1model-style prelude, as a target extension would provide.
const PRELUDE: &str = r#"
struct standard_metadata_t {
    bit<9>  ingress_port;
    bit<9>  egress_spec;
    bit<9>  egress_port;
    bit<16> packet_length;
    bit<1>  checksum_error;
    error   parser_error;
}
enum HashAlgorithm { crc32, crc16, csum16, identity }
extern void mark_to_drop(inout standard_metadata_t sm);
extern void verify_checksum<T, O>(in bool condition, in T data, inout O checksum, HashAlgorithm algo);
extern void hash<O, T, D, M>(out O result, in HashAlgorithm algo, in T base, in D data, in M max);
extern Register<T, I> {
    Register(bit<32> size);
    T read(in I index);
    void write(in I index, in T value);
}
"#;

fn fig1a() -> String {
    format!(
        r#"{PRELUDE}
header ethernet_t {{
    bit<48> dst;
    bit<48> src;
    bit<16> etherType;
}}
struct headers_t {{ ethernet_t eth; }}
struct meta_t {{ bit<9> output_port; }}

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition accept;
    }}
}}

control MyIngress(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {{
    action set_out(bit<9> port) {{
        meta.output_port = port;
        sm.egress_spec = port;
    }}
    action noop() {{ }}
    table forward_table {{
        key = {{ hdr.eth.etherType: exact @name("type"); }}
        actions = {{ noop; set_out; }}
        default_action = noop();
        size = 1024;
    }}
    apply {{
        hdr.eth.etherType = 0xBEEF;
        forward_table.apply();
    }}
}}

control MyDeparser(packet_out pkt, in headers_t hdr) {{
    apply {{ pkt.emit(hdr.eth); }}
}}

V1Switch(MyParser(), MyIngress(), MyDeparser()) main;
"#
    )
}

#[test]
fn parse_and_typecheck_fig1a() {
    let checked = frontend(&fig1a()).expect("fig1a should typecheck");
    let prog = &checked.program;
    assert!(prog.find_parser("MyParser").is_some());
    let ing = prog.find_control("MyIngress").expect("ingress");
    assert_eq!(ing.actions.len(), 2);
    assert_eq!(ing.tables.len(), 1);
    let tbl = &ing.tables[0];
    assert_eq!(tbl.keys.len(), 1);
    assert_eq!(tbl.keys[0].match_kind, "exact");
    assert_eq!(tbl.keys[0].annotations[0].string_arg(), Some("type"));
    assert_eq!(tbl.size, Some(1024));
    assert!(prog.main_instantiation().is_some());
}

#[test]
fn select_transitions() {
    let src = format!(
        r#"{PRELUDE}
header ethernet_t {{ bit<48> dst; bit<48> src; bit<16> etherType; }}
header ipv4_t {{ bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len; bit<32> rest1; bit<32> rest2; bit<32> src; bit<32> dst; }}
struct headers_t {{ ethernet_t eth; ipv4_t ipv4; }}
struct meta_t {{ bit<8> x; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {{
            0x0800: parse_ipv4;
            0x8100 &&& 0xEFFF: parse_ipv4;
            16w0x86DD: accept;
            default: accept;
        }}
    }}
    state parse_ipv4 {{
        pkt.extract(hdr.ipv4);
        transition accept;
    }}
}}
"#
    );
    let checked = frontend(&src).expect("select program should typecheck");
    let p = checked.program.find_parser("P").unwrap();
    assert_eq!(p.states.len(), 2);
    match &p.states[0].transition {
        Transition::Select { cases, .. } => {
            assert_eq!(cases.len(), 4);
            assert!(matches!(cases[1].keys[0], Expr::Mask { .. }));
            assert!(matches!(cases[3].keys[0], Expr::Dontcare { .. }));
        }
        _ => panic!("expected select"),
    }
}

#[test]
fn header_stacks_and_slices() {
    let src = format!(
        r#"{PRELUDE}
header vlan_t {{ bit<3> pcp; bit<1> dei; bit<12> vid; bit<16> etherType; }}
struct headers_t {{ vlan_t[2] vlans; }}
struct meta_t {{ bit<12> v; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    state start {{
        pkt.extract(hdr.vlans[0]);
        transition accept;
    }}
}}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{
        m.v = hdr.vlans[0].vid;
        m.v = hdr.vlans[1].etherType[11:0];
    }}
}}
"#
    );
    frontend(&src).expect("stack program should typecheck");
}

#[test]
fn extern_object_instantiation_and_methods() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> dummy; }}
struct meta_t {{ bit<32> val; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    Register<bit<32>, bit<10>>(1024) reg;
    apply {{
        m.val = reg.read(10w5);
        reg.write(10w5, m.val + 1);
    }}
}}
"#
    );
    frontend(&src).expect("register program should typecheck");
}

#[test]
fn switch_on_action_run() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> dummy; }}
struct meta_t {{ bit<8> x; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    action a1() {{ m.x = 1; }}
    action a2() {{ m.x = 2; }}
    table t {{
        key = {{ hdr.dummy: exact; }}
        actions = {{ a1; a2; }}
        default_action = a1();
    }}
    apply {{
        switch (t.apply().action_run) {{
            a1: {{ m.x = 3; }}
            default: {{ m.x = 4; }}
        }}
    }}
}}
"#
    );
    frontend(&src).expect("switch program should typecheck");
}

#[test]
fn const_entries_with_ranges_and_lpm() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> dummy; }}
struct meta_t {{ bit<32> addr; bit<16> port; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    action drop_it() {{ mark_to_drop(sm); }}
    action keep() {{ }}
    table acl {{
        key = {{
            m.addr: lpm;
            m.port: range;
        }}
        actions = {{ drop_it; keep; }}
        const entries = {{
            (0x0A000000 &&& 0xFF000000, 1000 .. 2000): drop_it();
            (_, _): keep();
        }}
        default_action = keep();
    }}
    apply {{ acl.apply(); }}
}}
"#
    );
    let checked = frontend(&src).expect("entries program should typecheck");
    let c = checked.program.find_control("C").unwrap();
    assert_eq!(c.tables[0].entries.len(), 2);
}

#[test]
fn typecheck_rejects_unknown_field() {
    let src = format!(
        r#"{PRELUDE}
header h_t {{ bit<8> a; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> x; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{ m.x = hdr.h.nonexistent; }}
}}
"#
    );
    let err = frontend(&src).unwrap_err();
    assert!(err.iter().any(|d| d.to_string().contains("nonexistent")), "{err:?}");
}

#[test]
fn typecheck_rejects_width_mismatch() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> dummy; }}
struct meta_t {{ bit<8> a; bit<16> b; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{ m.a = m.b; }}
}}
"#
    );
    assert!(frontend(&src).is_err());
}

#[test]
fn typecheck_rejects_bad_transition() {
    let src = format!(
        r#"{PRELUDE}
header h_t {{ bit<8> a; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> x; }}
parser P(packet_in pkt, out headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    state start {{
        transition no_such_state;
    }}
}}
"#
    );
    let err = frontend(&src).unwrap_err();
    assert!(err.iter().any(|d| d.to_string().contains("no_such_state")), "{err:?}");
}

#[test]
fn typecheck_rejects_unknown_action_in_table() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<8> x; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    table t {{
        key = {{ hdr.d: exact; }}
        actions = {{ ghost_action; }}
    }}
    apply {{ t.apply(); }}
}}
"#
    );
    assert!(frontend(&src).is_err());
}

#[test]
fn expressions_parse_with_precedence() {
    let e = p4t_frontend::parse_expression("1 + 2 * 3 == 7 && 4 < 5").unwrap();
    // ((1 + (2*3)) == 7) && (4 < 5)
    match e {
        Expr::Binary { op: BinaryOp::And, lhs, .. } => match *lhs {
            Expr::Binary { op: BinaryOp::Eq, .. } => {}
            other => panic!("expected ==, got {other:?}"),
        },
        other => panic!("expected &&, got {other:?}"),
    }
}

#[test]
fn shift_vs_generics_disambiguation() {
    // `a >> 2` is a shift; `Register<bit<32>, bit<8>>` closes with two >.
    let e = p4t_frontend::parse_expression("a >> 2").unwrap();
    assert!(matches!(e, Expr::Binary { op: BinaryOp::Shr, .. }));
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<32> x; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    Register<bit<32>, bit<8>>(16) r;
    apply {{ m.x = (r.read(8w0) >> 2) + 1; }}
}}
"#
    );
    frontend(&src).expect("generics program should typecheck");
}

#[test]
fn ternary_concat_cast() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<16> x; bit<8> lo; bit<8> hi; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{
        m.x = m.hi ++ m.lo;
        m.x = (bit<16>) m.lo;
        m.x = (m.lo == 0) ? 16w1 : 16w2;
    }}
}}
"#
    );
    frontend(&src).expect("expression forms should typecheck");
}

#[test]
fn annotations_survive_parsing() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<8> x; }}
@entry_restriction("m.x != 0")
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{ }}
}}
"#
    );
    let prog = parse(&src).unwrap();
    let c = prog.find_control("C").unwrap();
    assert_eq!(c.annotations[0].name, "entry_restriction");
    assert_eq!(c.annotations[0].string_arg(), Some("m.x != 0"));
}

#[test]
fn enum_with_underlying_type() {
    let src = format!(
        r#"{PRELUDE}
enum bit<8> Proto {{ TCP = 6, UDP = 17 }}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<8> p; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{
        if (m.p == (bit<8>) Proto.TCP) {{ m.p = 0; }}
    }}
}}
"#
    );
    let checked = frontend(&src).expect("enum program should typecheck");
    assert_eq!(checked.env.enum_value("Proto", "UDP"), Some((17, 8)));
}

#[test]
fn error_members_and_parser_error() {
    let src = format!(
        r#"{PRELUDE}
struct headers_t {{ bit<8> d; }}
struct meta_t {{ bit<8> x; }}
control C(inout headers_t hdr, inout meta_t m, inout standard_metadata_t sm) {{
    apply {{
        if (sm.parser_error == error.PacketTooShort) {{ m.x = 1; }}
    }}
}}
"#
    );
    frontend(&src).expect("error member program should typecheck");
}
