//! The STF (Simple Test Framework) back end: the line-oriented format used
//! by P4C's BMv2 tests.
//!
//! Format (as in P4C's `*.stf` files):
//! ```text
//! add <table> [<priority>] <key>:<value> ... <action>(<param>:<value>, ...)
//! packet <port> <hex bytes>
//! expect <port> <hex bytes with * wildcards>
//! ```
//!
//! Restrictions mirrored from the real framework (§6): STF has no syntax for
//! range keys, so tests whose entries contain range matches are rejected
//! (the paper: "BMv2 STF does not yet support adding range entries. This
//! restriction means that in some cases P4Testgen will cover fewer paths
//! than is otherwise possible").

use crate::{hex, TestBackend};
use p4testgen_core::testspec::{KeyMatch, TestSpec};

/// The STF emitter.
#[derive(Clone, Copy, Default)]
pub struct StfBackend;

impl TestBackend for StfBackend {
    fn name(&self) -> &str {
        "stf"
    }

    fn prologue(&self, specs: &[TestSpec]) -> String {
        match specs.first() {
            Some(s) => format!("# STF suite for {} ({} tests, seed {})\n", s.program, specs.len(), s.seed),
            None => "# empty STF suite\n".to_string(),
        }
    }

    fn emit_test(&self, spec: &TestSpec) -> Result<String, String> {
        let mut out = format!("\n# test {}\n", spec.id);
        for r in &spec.register_init {
            out.push_str(&format!(
                "register_write {} {} 0x{}\n",
                r.instance, r.index, hex(&r.value)
            ));
        }
        for e in &spec.entries {
            let mut line = format!("add {}", e.table);
            if e.priority > 0 {
                line.push_str(&format!(" {}", e.priority));
            }
            for k in &e.keys {
                match k {
                    KeyMatch::Exact { name, value } => {
                        line.push_str(&format!(" {name}:0x{}", hex(value)));
                    }
                    KeyMatch::Ternary { name, value, mask } => {
                        line.push_str(&format!(" {name}:0x{}&&&0x{}", hex(value), hex(mask)));
                    }
                    KeyMatch::Lpm { name, value, prefix_len } => {
                        line.push_str(&format!(" {name}:0x{}/{prefix_len}", hex(value)));
                    }
                    KeyMatch::Range { .. } => {
                        return Err("STF does not support range entries".to_string());
                    }
                    KeyMatch::Optional { name, value } => match value {
                        Some(v) => line.push_str(&format!(" {name}:0x{}", hex(v))),
                        None => line.push_str(&format!(" {name}:*")),
                    },
                }
            }
            let args: Vec<String> = e
                .action_args
                .iter()
                .map(|(n, v)| format!("{n}:0x{}", hex(v)))
                .collect();
            line.push_str(&format!(" {}({})", e.action, args.join(", ")));
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("packet {} {}\n", spec.input_port, hex(&spec.input_packet)));
        if spec.expects_drop() {
            out.push_str("# expect no packet (drop)\n");
        }
        for o in &spec.outputs {
            out.push_str(&format!("expect {} {}\n", o.port, o.packet.to_hex().to_uppercase()));
        }
        for r in &spec.register_expect {
            out.push_str(&format!(
                "register_check {} {} 0x{}\n",
                r.instance, r.index, hex(&r.value)
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_spec;
    use p4testgen_core::testspec::KeyMatch;

    #[test]
    fn stf_lines_are_well_formed() {
        let out = StfBackend.emit_test(&sample_spec()).unwrap();
        assert!(out.contains("add Ing.forward_table type:0xBEEF Ing.set_out(port:0x0002)"));
        assert!(out.contains("packet 0 000000000000000000000000"));
        assert!(out.contains("expect 2 BEEF"));
    }

    #[test]
    fn stf_rejects_range_entries() {
        let mut spec = sample_spec();
        spec.entries[0].keys = vec![KeyMatch::Range {
            name: "port".into(),
            lo: vec![0],
            hi: vec![9],
        }];
        assert!(StfBackend.emit_test(&spec).is_err());
    }

    #[test]
    fn stf_wildcards_for_tainted_bits() {
        let mut spec = sample_spec();
        spec.outputs[0].packet.mask = vec![0xFF, 0x00];
        let out = StfBackend.emit_test(&spec).unwrap();
        assert!(out.contains("expect 2 BE**"), "{out}");
    }

    #[test]
    fn stf_drop_expectation() {
        let mut spec = sample_spec();
        spec.outputs.clear();
        let out = StfBackend.emit_test(&spec).unwrap();
        assert!(out.contains("expect no packet"));
    }
}
