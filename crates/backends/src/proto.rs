//! The Protobuf-text back end: emits P4Runtime-flavored text-format
//! messages (and a JSON dump) for machine consumption.
//!
//! We do not speak the gRPC wire format (out of scope, see DESIGN.md); the
//! text format mirrors `p4.v1.WriteRequest` / packet metadata structure
//! closely enough for downstream tooling to convert.

use crate::{hex, TestBackend};
use p4testgen_core::testspec::{KeyMatch, TestSpec};

/// The Protobuf-text emitter.
#[derive(Clone, Copy, Default)]
pub struct ProtoBackend;

impl ProtoBackend {
    /// JSON rendering of the full spec (lossless).
    pub fn emit_json(&self, spec: &TestSpec) -> String {
        serde_json::to_string_pretty(spec).expect("TestSpec serializes")
    }
}

impl TestBackend for ProtoBackend {
    fn name(&self) -> &str {
        "proto"
    }

    fn emit_test(&self, spec: &TestSpec) -> Result<String, String> {
        let mut out = format!("test_case {{\n  id: {}\n  program: \"{}\"\n", spec.id, spec.program);
        for e in &spec.entries {
            out.push_str("  entities {\n    table_entry {\n");
            out.push_str(&format!("      table: \"{}\"\n", e.table));
            if e.priority > 0 {
                out.push_str(&format!("      priority: {}\n", e.priority));
            }
            for k in &e.keys {
                out.push_str("      match {\n");
                match k {
                    KeyMatch::Exact { name, value } => {
                        out.push_str(&format!(
                            "        field: \"{name}\"\n        exact {{ value: \"0x{}\" }}\n",
                            hex(value)
                        ));
                    }
                    KeyMatch::Ternary { name, value, mask } => {
                        out.push_str(&format!(
                            "        field: \"{name}\"\n        ternary {{ value: \"0x{}\" mask: \"0x{}\" }}\n",
                            hex(value),
                            hex(mask)
                        ));
                    }
                    KeyMatch::Lpm { name, value, prefix_len } => {
                        out.push_str(&format!(
                            "        field: \"{name}\"\n        lpm {{ value: \"0x{}\" prefix_len: {prefix_len} }}\n",
                            hex(value)
                        ));
                    }
                    KeyMatch::Range { name, lo, hi } => {
                        out.push_str(&format!(
                            "        field: \"{name}\"\n        range {{ low: \"0x{}\" high: \"0x{}\" }}\n",
                            hex(lo),
                            hex(hi)
                        ));
                    }
                    KeyMatch::Optional { name, value } => match value {
                        Some(v) => out.push_str(&format!(
                            "        field: \"{name}\"\n        optional {{ value: \"0x{}\" }}\n",
                            hex(v)
                        )),
                        None => out.push_str(&format!("        field: \"{name}\"\n")),
                    },
                }
                out.push_str("      }\n");
            }
            out.push_str(&format!("      action: \"{}\"\n", e.action));
            for (n, v) in &e.action_args {
                out.push_str(&format!(
                    "      param {{ name: \"{n}\" value: \"0x{}\" }}\n",
                    hex(v)
                ));
            }
            out.push_str("    }\n  }\n");
        }
        out.push_str(&format!(
            "  input_packet {{ port: {} payload: \"0x{}\" }}\n",
            spec.input_port,
            hex(&spec.input_packet)
        ));
        for o in &spec.outputs {
            out.push_str(&format!(
                "  expected_output_packet {{ port: {} payload: \"0x{}\" mask: \"0x{}\" }}\n",
                o.port,
                hex(&o.packet.data),
                hex(&o.packet.mask)
            ));
        }
        if spec.expects_drop() {
            out.push_str("  expected_drop: true\n");
        }
        out.push_str("}\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_spec;

    #[test]
    fn proto_text_structure() {
        let out = ProtoBackend.emit_test(&sample_spec()).unwrap();
        assert!(out.contains("table_entry {"));
        assert!(out.contains("exact { value: \"0xBEEF\" }"));
        assert!(out.contains("expected_output_packet { port: 2"));
    }

    #[test]
    fn json_round_trips() {
        let spec = sample_spec();
        let json = ProtoBackend.emit_json(&spec);
        let back: p4testgen_core::testspec::TestSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
