//! STF parser: reads the Simple Test Framework text format back into test
//! specifications, closing the loop `oracle → STF file → software model`
//! exactly the way BMv2's STF driver consumes P4C test files.
//!
//! Grammar (one directive per line, `#` comments):
//! ```text
//! add <table> [<priority>] <key>:<spec> ... <action>(<param>:<value>, ...)
//! packet <port> <hex>
//! expect <port> <hex with * don't-care nibbles>
//! register_write <instance> <index> <hex>
//! register_check <instance> <index> <hex>
//! ```
//! Key specs: `0xVV` (exact), `0xVV&&&0xMM` (ternary), `0xVV/len` (lpm),
//! `*` (optional wildcard).

use p4testgen_core::testspec::{
    KeyMatch, MaskedBytes, OutputPacketSpec, RegisterSpec, TableEntrySpec, TestSpec,
};

/// A parse failure with its line number.
#[derive(Debug, Clone)]
pub struct StfParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for StfParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "STF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StfParseError {}

fn err(line: usize, message: impl Into<String>) -> StfParseError {
    StfParseError { line, message: message.into() }
}

fn parse_hex_bytes(s: &str, line: usize) -> Result<Vec<u8>, StfParseError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    let padded = if s.len() % 2 == 1 { format!("0{s}") } else { s.to_string() };
    (0..padded.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&padded[i..i + 2], 16)
                .map_err(|_| err(line, format!("bad hex '{s}'")))
    })
        .collect()
}

/// Hex with `*` don't-care nibbles.
fn parse_masked(s: &str, line: usize) -> Result<MaskedBytes, StfParseError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    let padded = if s.len() % 2 == 1 { format!("0{s}") } else { s.to_string() };
    let mut data = Vec::new();
    let mut mask = Vec::new();
    let chars: Vec<char> = padded.chars().collect();
    for pair in chars.chunks(2) {
        let mut d = 0u8;
        let mut m = 0u8;
        for (k, &c) in pair.iter().enumerate() {
            let shift = if k == 0 { 4 } else { 0 };
            if c == '*' {
                continue;
            }
            let nib = c.to_digit(16).ok_or_else(|| err(line, format!("bad hex '{s}'")))? as u8;
            d |= nib << shift;
            m |= 0xF << shift;
        }
        data.push(d);
        mask.push(m);
    }
    Ok(MaskedBytes { data, mask })
}

/// Parse a whole STF file into test specifications. Tests are delimited by
/// `packet` lines: directives before a `packet` configure it; `expect` and
/// `register_check` lines after it describe its expectations.
pub fn parse_stf(source: &str) -> Result<Vec<TestSpec>, StfParseError> {
    let mut tests: Vec<TestSpec> = Vec::new();
    let mut pending_entries: Vec<TableEntrySpec> = Vec::new();
    let mut pending_regs: Vec<RegisterSpec> = Vec::new();
    let mut next_id = 0u64;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let cmd = words.next().unwrap();
        match cmd {
            "add" => {
                pending_entries.push(parse_add(&mut words, lineno)?);
            }
            "register_write" => {
                let instance = words.next().ok_or_else(|| err(lineno, "missing instance"))?;
                let index: u64 = words
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad index"))?;
                let value = parse_hex_bytes(
                    words.next().ok_or_else(|| err(lineno, "missing value"))?,
                    lineno,
                )?;
                pending_regs.push(RegisterSpec { instance: instance.to_string(), index, value });
            }
            "packet" => {
                let port: u32 = words
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad port"))?;
                let data = parse_hex_bytes(
                    words.next().ok_or_else(|| err(lineno, "missing packet bytes"))?,
                    lineno,
                )?;
                if words.next().is_some() {
                    return Err(err(lineno, "trailing tokens after packet bytes"));
                }
                tests.push(TestSpec {
                    id: next_id,
                    program: String::new(),
                    target: String::new(),
                    seed: 0,
                    input_port: port,
                    input_packet: data,
                    entries: std::mem::take(&mut pending_entries),
                    register_init: std::mem::take(&mut pending_regs),
                    register_expect: Vec::new(),
                    outputs: Vec::new(),
                    covered_statements: Vec::new(),
                    trace: Vec::new(),
                });
                next_id += 1;
            }
            "expect" => {
                let t = tests.last_mut().ok_or_else(|| err(lineno, "expect before packet"))?;
                let port: u32 = words
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad port"))?;
                let packet = parse_masked(
                    words.next().ok_or_else(|| err(lineno, "missing bytes"))?,
                    lineno,
                )?;
                if words.next().is_some() {
                    return Err(err(lineno, "trailing tokens after expect bytes"));
                }
                t.outputs.push(OutputPacketSpec { port, packet });
            }
            "register_check" => {
                let t = tests.last_mut().ok_or_else(|| err(lineno, "check before packet"))?;
                let instance = words.next().ok_or_else(|| err(lineno, "missing instance"))?;
                let index: u64 = words
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad index"))?;
                let value = parse_hex_bytes(
                    words.next().ok_or_else(|| err(lineno, "missing value"))?,
                    lineno,
                )?;
                t.register_expect.push(RegisterSpec {
                    instance: instance.to_string(),
                    index,
                    value,
                });
            }
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    Ok(tests)
}

fn parse_add<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<TableEntrySpec, StfParseError> {
    let table = words.next().ok_or_else(|| err(lineno, "missing table"))?.to_string();
    let mut priority = 0u32;
    let mut keys = Vec::new();
    let mut action = String::new();
    let mut action_args = Vec::new();
    let rest: Vec<&str> = words.collect();
    let mut i = 0;
    // Optional numeric priority.
    if let Some(p) = rest.first().and_then(|s| s.parse::<u32>().ok()) {
        priority = p;
        i = 1;
    }
    while i < rest.len() {
        let w = rest[i];
        if let Some(colon) = w.find(':') {
            if w.contains('(') {
                // already the action
            } else {
                let name = w[..colon].to_string();
                let spec = &w[colon + 1..];
                let key = if spec == "*" {
                    KeyMatch::Optional { name, value: None }
                } else if let Some((v, m)) = spec.split_once("&&&") {
                    KeyMatch::Ternary {
                        name,
                        value: parse_hex_bytes(v, lineno)?,
                        mask: parse_hex_bytes(m, lineno)?,
                    }
                } else if let Some((v, plen)) = spec.split_once('/') {
                    KeyMatch::Lpm {
                        name,
                        value: parse_hex_bytes(v, lineno)?,
                        prefix_len: plen.parse().map_err(|_| err(lineno, "bad prefix"))?,
                    }
                } else {
                    KeyMatch::Exact { name, value: parse_hex_bytes(spec, lineno)? }
                };
                keys.push(key);
                i += 1;
                continue;
            }
        }
        // The action: `name(arg:0xVV, arg:0xVV)` — may span several words
        // because of the ", " separators.
        let action_text = rest[i..].join(" ");
        let open = action_text.find('(').ok_or_else(|| err(lineno, "missing action args"))?;
        action = action_text[..open].to_string();
        let close = action_text.rfind(')').ok_or_else(|| err(lineno, "unclosed action"))?;
        for part in action_text[open + 1..close].split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (n, v) = part.split_once(':').ok_or_else(|| err(lineno, "bad param"))?;
            action_args.push((n.to_string(), parse_hex_bytes(v, lineno)?));
        }
        break;
    }
    if action.is_empty() {
        return Err(err(lineno, "entry has no action"));
    }
    Ok(TableEntrySpec { table, keys, action, action_args, priority })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stf::StfBackend;
    use crate::TestBackend;

    #[test]
    fn parse_minimal_suite() {
        let src = r#"
# a comment
add Ing.t dmac:0x001122334455 Ing.fwd(p:0x0002)
packet 0 AABBCCDDEEFF00112233445508 00
expect 2 AABB**DDEEFF*0112233445508 00
"#;
        // note: spaces inside hex are not allowed; this line has a payload
        // word that must fail.
        assert!(parse_stf(src).is_err());
    }

    #[test]
    fn round_trip_through_emitter() {
        let spec = crate::sample_spec();
        let text = StfBackend.emit_test(&spec).unwrap();
        let parsed = parse_stf(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.input_packet, spec.input_packet);
        assert_eq!(p.input_port, spec.input_port);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].table, spec.entries[0].table);
        assert_eq!(p.entries[0].action, spec.entries[0].action);
        assert_eq!(p.entries[0].keys, spec.entries[0].keys);
        assert_eq!(p.entries[0].action_args, spec.entries[0].action_args);
        assert_eq!(p.outputs.len(), 1);
        assert_eq!(p.outputs[0].port, spec.outputs[0].port);
        assert_eq!(p.outputs[0].packet.data, spec.outputs[0].packet.data);
    }

    #[test]
    fn wildcard_nibbles_parse_as_mask() {
        let src = "packet 0 00\nexpect 1 A*\n";
        let tests = parse_stf(src).unwrap();
        let out = &tests[0].outputs[0].packet;
        assert_eq!(out.data, vec![0xA0]);
        assert_eq!(out.mask, vec![0xF0]);
    }

    #[test]
    fn ternary_and_lpm_key_specs() {
        let src =
            "add t 7 a:0x12&&&0xF0 b:0x0A000000/8 c:* act(x:0x01)\npacket 0 00\n";
        let tests = parse_stf(src).unwrap();
        let e = &tests[0].entries[0];
        assert_eq!(e.priority, 7);
        assert!(matches!(e.keys[0], KeyMatch::Ternary { .. }));
        assert!(matches!(e.keys[1], KeyMatch::Lpm { prefix_len: 8, .. }));
        assert!(matches!(e.keys[2], KeyMatch::Optional { value: None, .. }));
    }

    #[test]
    fn register_directives() {
        let src = "register_write r 3 0x2A\npacket 0 00\nregister_check r 3 0x2B\n";
        let tests = parse_stf(src).unwrap();
        assert_eq!(tests[0].register_init[0].value, vec![0x2A]);
        assert_eq!(tests[0].register_expect[0].value, vec![0x2B]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_stf("packet 0 00\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
