//! # p4t-backends — test back ends
//!
//! The paper's P4Testgen emits an abstract test specification which
//! framework-specific back ends concretize (§4 step 3, Table 1): STF for
//! BMv2/eBPF, PTF for BMv2/Tofino, and Protobuf messages. This crate
//! implements all three emitters over
//! [`p4testgen_core::testspec::TestSpec`]:
//!
//! * [`stf`] — the Simple Test Framework text format (`add`/`packet`/
//!   `expect` lines). STF cannot express range matches (§6 notes BMv2 STF
//!   does not support adding range entries), so the emitter reports
//!   unsupported tests rather than emitting wrong ones.
//! * [`ptf`] — a Packet Test Framework-style Python script.
//! * [`proto`] — machine-readable text-format Protobuf-like messages
//!   (P4Runtime-flavored), plus a JSON dump for tooling.
//! * [`stf_parser`] — reads STF text back into test specifications, so a
//!   generated `.stf` file can be executed against the software models the
//!   way BMv2's STF driver consumes P4C test files.

pub mod proto;
pub mod ptf;
pub mod stf;
pub mod stf_parser;

pub use proto::ProtoBackend;
pub use ptf::PtfBackend;
pub use stf::StfBackend;
pub use stf_parser::{parse_stf, StfParseError};

use p4testgen_core::testspec::TestSpec;

/// A test back end: concretizes abstract test specifications into an
/// executable format.
pub trait TestBackend {
    /// Short name ("stf", "ptf", "proto").
    fn name(&self) -> &str;

    /// Render one test. `Err` means the framework cannot express this test
    /// (e.g. STF with range entries) — the caller counts it as skipped.
    fn emit_test(&self, spec: &TestSpec) -> Result<String, String>;

    /// Render a whole suite (header + tests + footer).
    fn emit_suite(&self, specs: &[TestSpec]) -> String {
        let mut out = self.prologue(specs);
        for s in specs {
            match self.emit_test(s) {
                Ok(t) => out.push_str(&t),
                Err(e) => {
                    out.push_str(&format!("# test {} skipped: {e}\n", s.id));
                }
            }
        }
        out
    }

    /// Suite header.
    fn prologue(&self, _specs: &[TestSpec]) -> String {
        String::new()
    }
}

pub(crate) fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02X}")).collect()
}

#[cfg(test)]
pub(crate) fn sample_spec() -> TestSpec {
    use p4testgen_core::testspec::*;
    TestSpec {
        id: 0,
        program: "fig1a".into(),
        target: "v1model".into(),
        seed: 1,
        input_port: 0,
        input_packet: vec![0; 12],
        entries: vec![TableEntrySpec {
            table: "Ing.forward_table".into(),
            keys: vec![KeyMatch::Exact { name: "type".into(), value: vec![0xBE, 0xEF] }],
            action: "Ing.set_out".into(),
            action_args: vec![("port".into(), vec![0x00, 0x02])],
            priority: 0,
        }],
        register_init: vec![],
        register_expect: vec![],
        outputs: vec![OutputPacketSpec {
            port: 2,
            packet: MaskedBytes::exact(vec![0xBE, 0xEF]),
        }],
        covered_statements: vec![1, 2],
        trace: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_render_the_sample() {
        let spec = sample_spec();
        for b in [
            Box::new(StfBackend) as Box<dyn TestBackend>,
            Box::new(PtfBackend),
            Box::new(ProtoBackend),
        ] {
            let out = b.emit_test(&spec).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(out.contains("BEEF") || out.contains("beef"), "{}: {out}", b.name());
        }
    }
}
