//! Back-end integration: render real generated suites and check
//! framework-level invariants (STF range rejection, PTF masks, JSON
//! round-trips) on actual oracle output rather than hand-built specs.

use p4t_backends::{ProtoBackend, PtfBackend, StfBackend, TestBackend};
use p4t_targets::V1Model;
use p4testgen_core::{Testgen, TestgenConfig};

fn generate(src: &str) -> Vec<p4testgen_core::TestSpec> {
    let mut tg = Testgen::new("suite", src, V1Model::new(), TestgenConfig::default()).unwrap();
    let mut tests = Vec::new();
    tg.run(|t| {
        tests.push(t.clone());
        true
    });
    tests
}

const EXACT_PROG: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> x; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control VC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    action fwd(bit<9> p) { sm.egress_spec = p; }
    action nop() { }
    table t {
        key = { hdr.eth.dst: exact @name("dmac"); }
        actions = { fwd; nop; }
        default_action = nop();
    }
    apply { t.apply(); }
}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control CC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Dep(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#;

const RANGE_PROG: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> x; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control VC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Ing(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    action fwd(bit<9> p) { sm.egress_spec = p; }
    action nop() { }
    table t {
        key = { hdr.eth.etherType: range @name("etype"); }
        actions = { fwd; nop; }
        default_action = nop();
    }
    apply { t.apply(); }
}
control Eg(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control CC(inout headers_t hdr, inout meta_t meta) { apply { } }
control Dep(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
"#;

#[test]
fn stf_suite_has_one_block_per_test() {
    let tests = generate(EXACT_PROG);
    let suite = StfBackend.emit_suite(&tests);
    let packets = suite.matches("\npacket ").count();
    assert_eq!(packets, tests.len(), "{suite}");
    // Hit tests carry `add` lines with the dmac key.
    let adds = suite.matches("\nadd Ing.t dmac:").count();
    let with_entries = tests.iter().filter(|t| !t.entries.is_empty()).count();
    assert_eq!(adds, with_entries);
}

#[test]
fn stf_skips_range_tests_with_note() {
    // The paper: "BMv2 STF does not yet support adding range entries. This
    // restriction means that in some cases P4Testgen will cover fewer paths."
    let tests = generate(RANGE_PROG);
    let suite = StfBackend.emit_suite(&tests);
    let with_range = tests.iter().filter(|t| !t.entries.is_empty()).count();
    assert!(with_range > 0, "range tests exist");
    let skips = suite.matches("skipped: STF does not support range entries").count();
    assert_eq!(skips, with_range, "{suite}");
}

#[test]
fn ptf_suite_renders_every_test_including_ranges() {
    let tests = generate(RANGE_PROG);
    let suite = PtfBackend.emit_suite(&tests);
    for t in &tests {
        assert!(suite.contains(&format!("class Test{}(", t.id)), "missing test {}", t.id);
    }
    assert!(suite.contains("self.Range(\"etype\""));
    assert!(suite.contains("import ptf.testutils"));
}

#[test]
fn json_backend_round_trips_every_generated_test() {
    let tests = generate(EXACT_PROG);
    for t in &tests {
        let json = ProtoBackend.emit_json(t);
        let back: p4testgen_core::TestSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(t, &back);
    }
}

#[test]
fn proto_text_mentions_every_entry() {
    let tests = generate(EXACT_PROG);
    let suite = ProtoBackend.emit_suite(&tests);
    let n_entries: usize = tests.iter().map(|t| t.entries.len()).sum();
    assert_eq!(suite.matches("table_entry {").count(), n_entries);
    assert_eq!(suite.matches("test_case {").count(), tests.len());
}
