//! End-to-end test generation for the paper's Fig. 1 examples on v1model.

use p4t_targets::V1Model;
use p4testgen_core::{Testgen, TestgenConfig, TestSpec};

pub const FIG1A: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyIngress(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    action set_out(bit<9> port) {
        meta.output_port = port;
        sm.egress_spec = port;
    }
    action noop() { }
    table forward_table {
        key = { hdr.eth.etherType: exact @name("type"); }
        actions = { noop; set_out; }
        default_action = noop();
    }
    apply {
        hdr.eth.etherType = 0xBEEF;
        forward_table.apply();
    }
}
control MyEgress(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
"#;

fn generate(src: &str, config: TestgenConfig) -> (Vec<TestSpec>, p4testgen_core::RunSummary) {
    let mut tg = Testgen::new("test", src, V1Model::new(), config).expect("program compiles");
    let mut tests = Vec::new();
    let summary = tg.run(|t| {
        tests.push(t.clone());
        true
    });
    (tests, summary)
}

#[test]
fn fig1a_generates_the_papers_four_tests() {
    let (tests, summary) = generate(FIG1A, TestgenConfig::default());
    // The paper's Fig 1c: 4 tests — miss/noop, hit/set_out, hit/noop, and
    // the short-packet path.
    assert_eq!(summary.tests, 4, "expected 4 tests, summary: {summary:?}");
    // Every test's output must carry etherType rewritten to 0xBEEF (except
    // the short-packet path, whose ethernet header never parsed).
    let full_tests: Vec<_> = tests.iter().filter(|t| t.input_packet.len() == 14).collect();
    assert_eq!(full_tests.len(), 3, "three full-packet tests");
    for t in &full_tests {
        assert!(!t.expects_drop());
        let out = &t.outputs[0].packet;
        assert_eq!(out.data.len(), 14);
        assert_eq!(&out.data[12..14], &[0xBE, 0xEF], "etherType rewritten");
    }
    // One test has a synthesized table entry with key 0xBEEF and set_out.
    let set_out = tests
        .iter()
        .find(|t| t.entries.iter().any(|e| e.action.ends_with("set_out")))
        .expect("a set_out test exists");
    let entry = &set_out.entries[0];
    match &entry.keys[0] {
        p4testgen_core::KeyMatch::Exact { name, value } => {
            assert_eq!(name, "type");
            assert_eq!(value, &vec![0xBE, 0xEF], "entry key must match the rewritten type");
        }
        other => panic!("expected exact match, got {other:?}"),
    }
    // The set_out test's output port equals the synthesized action argument.
    let port_arg = &entry.action_args[0];
    assert_eq!(port_arg.0, "port");
    let port_val = u16::from_be_bytes([port_arg.1[0], port_arg.1[1]]) as u32;
    assert_eq!(set_out.outputs[0].port, port_val);
    // There is a hit test that runs noop: same entry shape, no port change.
    let noop_hit = tests
        .iter()
        .find(|t| !t.entries.is_empty() && t.entries[0].action.ends_with("noop"));
    assert!(noop_hit.is_some(), "a noop-entry test exists");
    // The short-packet test: 12 bytes (96 bits: dst+src, no etherType),
    // matching Fig 1c line 7.
    let short = tests
        .iter()
        .find(|t| t.input_packet.len() < 14)
        .expect("short-packet test exists");
    assert_eq!(short.input_packet.len(), 12, "96-bit short packet");
    // On BMv2 a parser error does not drop; the packet is forwarded with the
    // header invalid: nothing emitted, the unparsed content passes through
    // (Fig 1c line 7: 96 bits in, 96 bits out).
    assert!(!short.expects_drop());
    assert_eq!(short.outputs[0].packet.data.len(), 12);
    // Full statement coverage.
    assert!(
        (summary.coverage.percent - 100.0).abs() < 1e-9,
        "coverage: {}",
        summary.coverage
    );
}

#[test]
fn fig1a_all_outputs_are_deterministic() {
    let (tests, _) = generate(FIG1A, TestgenConfig::default());
    for t in &tests {
        for o in &t.outputs {
            assert!(o.packet.is_fully_exact(), "no tainted bits expected: {}", o.packet.to_hex());
        }
    }
}

#[test]
fn fixed_packet_size_precondition_removes_short_paths() {
    let mut config = TestgenConfig::default();
    config.preconditions = p4testgen_core::Preconditions::with_fixed_packet(64);
    let (tests, summary) = generate(FIG1A, config);
    assert_eq!(summary.tests, 3, "short-packet path removed");
    for t in &tests {
        assert_eq!(t.input_packet.len(), 64);
    }
}

#[test]
fn deterministic_across_runs_with_same_seed() {
    let (t1, _) = generate(FIG1A, TestgenConfig::default());
    let (t2, _) = generate(FIG1A, TestgenConfig::default());
    assert_eq!(t1, t2, "same seed must give identical tests");
}

/// The paper's Fig 1b: checksum validation via concolic execution (§5.4).
pub const FIG1B: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> checksum_err; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) {
    apply {
        verify_checksum(hdr.eth.isValid(), { hdr.eth.dst, hdr.eth.src },
                        hdr.eth.etherType, HashAlgorithm.csum16);
    }
}
control MyIngress(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
    apply {
        if (sm.checksum_error == 1) {
            mark_to_drop(sm);
        }
    }
}
control MyEgress(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
"#;

/// RFC 1071 internet checksum over byte slices (reference for assertions).
fn csum16_bytes(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i < bytes.len() {
        let hi = bytes[i] as u32;
        let lo = if i + 1 < bytes.len() { bytes[i + 1] as u32 } else { 0 };
        sum += (hi << 8) | lo;
        i += 2;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[test]
fn fig1b_checksum_tests_via_concolic_execution() {
    let (tests, summary) = generate(FIG1B, TestgenConfig::default());
    // The paper's Fig 1c example 2: 3 tests — short packet (forwarded),
    // checksum match (forwarded), checksum mismatch (dropped).
    assert_eq!(summary.tests, 3, "expected 3 tests: {summary:?}");
    let short = tests.iter().find(|t| t.input_packet.len() < 14).expect("short test");
    assert!(!short.expects_drop(), "short packet skips checksum and forwards");
    let full: Vec<_> = tests.iter().filter(|t| t.input_packet.len() == 14).collect();
    assert_eq!(full.len(), 2);
    let forwarded = full.iter().find(|t| !t.expects_drop()).expect("checksum-match test");
    let dropped = full.iter().find(|t| t.expects_drop()).expect("checksum-mismatch test");
    // The forwarded test's etherType equals the checksum of dst++src;
    // the dropped test's does not.
    let check = |t: &TestSpec| {
        let expected = csum16_bytes(&t.input_packet[0..12]);
        let actual = u16::from_be_bytes([t.input_packet[12], t.input_packet[13]]);
        (expected, actual)
    };
    let (e, a) = check(forwarded);
    assert_eq!(e, a, "forwarded packet must carry a correct checksum");
    let (e, a) = check(dropped);
    assert_ne!(e, a, "dropped packet must carry a broken checksum");
    assert!((summary.coverage.percent - 100.0).abs() < 1e-9);
}
