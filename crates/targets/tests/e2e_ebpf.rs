//! End-to-end test generation for the ebpf_model target (§6.1.3).

use p4t_targets::EbpfModel;
use p4testgen_core::{Testgen, TestgenConfig, TestSpec};

pub const EBPF_FILTER: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
    bit<16> id; bit<3> flags; bit<13> fragOffset;
    bit<8> ttl; bit<8> protocol; bit<16> checksum;
    bit<32> src; bit<32> dst;
}
struct headers_t { ethernet_t eth; ipv4_t ipv4; }

parser prs(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control pipe(inout headers_t hdr, out bool pass) {
    apply {
        pass = false;
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl > 1) {
                pass = true;
            }
        }
    }
}
ebpfFilter(prs(), pipe()) main;
"#;

fn generate(src: &str) -> (Vec<TestSpec>, p4testgen_core::RunSummary) {
    let mut tg =
        Testgen::new("ebpf_test", src, EbpfModel::new(), TestgenConfig::default()).expect("compiles");
    let mut tests = Vec::new();
    let summary = tg.run(|t| {
        tests.push(t.clone());
        true
    });
    (tests, summary)
}

#[test]
fn ebpf_filter_accept_and_drop_paths() {
    let (tests, summary) = generate(EBPF_FILTER);
    assert!(summary.tests >= 4, "expected several paths: {summary:?}");
    // At least one accepted packet: IPv4 with ttl > 1.
    let accepted: Vec<_> = tests.iter().filter(|t| !t.expects_drop()).collect();
    assert!(!accepted.is_empty(), "an accept test exists");
    for t in &accepted {
        assert_eq!(&t.input_packet[12..14], &[0x08, 0x00], "accepted packets are IPv4");
        let ttl = t.input_packet[14 + 8];
        assert!(ttl > 1, "accepted packets have ttl > 1, got {ttl}");
        // The filter does not modify the packet: output == input.
        assert_eq!(t.outputs[0].packet.data, t.input_packet, "eBPF passthrough");
    }
    // Dropped: non-IPv4, ttl <= 1, and short-packet paths.
    let dropped: Vec<_> = tests.iter().filter(|t| t.expects_drop()).collect();
    assert!(dropped.len() >= 2);
    assert!((summary.coverage.percent - 100.0).abs() < 1e-9, "{}", summary.coverage);
}

#[test]
fn ebpf_short_packets_are_dropped() {
    let (tests, _) = generate(EBPF_FILTER);
    // Failing extract drops in the kernel (Appendix A.1): every test whose
    // packet is shorter than Ethernet must be a drop test.
    for t in tests.iter().filter(|t| t.input_packet.len() < 14) {
        assert!(t.expects_drop(), "short packet must drop, got {t:?}");
    }
    assert!(tests.iter().any(|t| t.input_packet.len() < 14), "a short test exists");
}

#[test]
fn ebpf_advance_and_counters() {
    // `advance` skips bytes without affecting the output (the eBPF filter
    // passes the original packet through); CounterArray is control-plane
    // only and must not disturb generation.
    let src = r#"
header preamble_t { bit<32> tag; }
header body_t { bit<8> kind; }
struct headers_t { preamble_t pre; body_t body; }
parser prs(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.pre);
        pkt.advance(16);
        pkt.extract(hdr.body);
        transition accept;
    }
}
control pipe(inout headers_t hdr, out bool pass) {
    CounterArray(32w64, true) counters;
    apply {
        pass = false;
        if (hdr.body.kind == 0x42) {
            counters.increment((bit<32>) hdr.body.kind);
            pass = true;
        }
    }
}
ebpfFilter(prs(), pipe()) main;
"#;
    let (tests, summary) = generate(src);
    assert!((summary.coverage.percent - 100.0).abs() < 1e-9, "{}", summary.coverage);
    let accepted = tests.iter().find(|t| !t.expects_drop()).expect("accept path");
    // Input: 4B preamble + 2B skipped + 1B kind = 7 bytes minimum; the kind
    // byte (offset 6) must be 0x42.
    assert_eq!(accepted.input_packet.len(), 7);
    assert_eq!(accepted.input_packet[6], 0x42);
    // Output = valid headers re-emitted + nothing else consumed after body.
    assert!(!accepted.outputs.is_empty());
    // Short-packet paths (failing either extract or the advance) must drop.
    assert!(tests.iter().filter(|t| t.input_packet.len() < 7).all(|t| t.expects_drop()));
}
