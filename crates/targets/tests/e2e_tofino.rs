//! End-to-end test generation for the tna/t2na targets (§6.1.2) —
//! including the Fig. 4 program (drop/resubmit on TTL) and the packet-sizing
//! behavior of the two-parser pipeline (Fig. 6).

use p4t_targets::{Tofino, TofinoVariant};
use p4testgen_core::{Testgen, TestgenConfig, TestSpec};

/// A Tofino program in the shape of the paper's Fig. 4/6: ingress parser
/// extracts intrinsic metadata + Ethernet + IPv4; the ingress control drops
/// on ttl == 0; the egress parser re-parses metadata + Ethernet.
pub const TOFINO_FIG4: &str = r#"
header tofino_md_t { bit<64> pad; }
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
    bit<16> id; bit<3> flags; bit<13> fragOffset;
    bit<8> ttl; bit<8> protocol; bit<16> checksum;
    bit<32> src; bit<32> dst;
}
struct headers_t { tofino_md_t tofino_md; ethernet_t eth; ipv4_t ipv4; }
struct meta_t { bit<8> depth; }

parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etherType) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    apply {
        ig_tm_md.ucast_egress_port = 9w5;
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                ig_dprsr_md.drop_ctl = 1;
            }
        }
    }
}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.eth);
        pkt.emit(hdr.ipv4);
    }
}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#;

fn generate(src: &str, variant: TofinoVariant) -> (Vec<TestSpec>, p4testgen_core::RunSummary) {
    let target = match variant {
        TofinoVariant::Tna => Tofino::tna(),
        TofinoVariant::T2na => Tofino::t2na(),
    };
    let mut tg = Testgen::new("tofino_test", src, target, TestgenConfig::default()).expect("compiles");
    let mut tests = Vec::new();
    let summary = tg.run(|t| {
        tests.push(t.clone());
        true
    });
    (tests, summary)
}

#[test]
fn tofino_drop_and_forward_paths() {
    let (tests, summary) = generate(TOFINO_FIG4, TofinoVariant::Tna);
    assert!(summary.tests >= 3, "expected several paths: {summary:?}");
    // There is a forwarded IPv4 test with ttl != 0 and a dropped one with 0.
    let fwd = tests
        .iter()
        .find(|t| !t.expects_drop() && t.input_packet.len() > 14 + 8)
        .expect("forwarded test");
    assert_eq!(fwd.outputs[0].port, 5, "forwarded to port 5");
    let dropped: Vec<_> = tests.iter().filter(|t| t.expects_drop()).collect();
    assert!(!dropped.is_empty(), "a ttl==0 drop test exists");
    assert!((summary.coverage.percent - 100.0).abs() < 1e-9, "{}", summary.coverage);
}

#[test]
fn tofino_min_packet_size_precondition() {
    // Tofino packets are at least 64 bytes (Appendix A.1); the prepended
    // intrinsic metadata and FCS are NOT part of the test's input packet.
    let (tests, _) = generate(TOFINO_FIG4, TofinoVariant::Tna);
    for t in &tests {
        assert!(
            t.input_packet.len() >= 64,
            "input below the 64-byte Tofino minimum: {}",
            t.input_packet.len()
        );
    }
}

#[test]
fn tofino_output_excludes_intrinsic_metadata() {
    // The 64 bits of intrinsic metadata are parseable but are not emitted:
    // the egress packet starts with the Ethernet header.
    let (tests, _) = generate(TOFINO_FIG4, TofinoVariant::Tna);
    let fwd = tests.iter().find(|t| !t.expects_drop()).expect("forwarded test");
    let out = &fwd.outputs[0].packet;
    // Output = eth (14B) + payload; never the tofino_md 8 bytes.
    assert!(out.data.len() >= 14);
    // dst comes straight from the input packet's first byte.
    assert_eq!(out.data[0], fwd.input_packet[0], "output starts at Ethernet");
}

#[test]
fn t2na_accepts_ghost_pipeline() {
    let ghost_prog = format!(
        "{}\n{}",
        TOFINO_FIG4.replace(
            "Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;",
            ""
        ),
        r#"
control Ghost(inout meta_t gmeta) { apply { } }
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep(), Ghost()) main;
"#
    );
    let (tests, summary) = generate(&ghost_prog, TofinoVariant::T2na);
    assert!(summary.tests >= 3, "t2na with ghost runs: {summary:?}");
    // t2na prepends 128 bits, so programs still work identically.
    assert!(!tests.is_empty());
    // tna must reject the 7-block pipeline.
    let err = Testgen::new("x", &ghost_prog, Tofino::tna(), TestgenConfig::default());
    assert!(err.is_err(), "tna must reject ghost pipelines");
}

#[test]
fn tofino_tainted_metadata_read_blocks_entry_synthesis() {
    // A program keying a table on the tainted intrinsic metadata must not
    // synthesize entries for it (flaky tests), falling back to the default.
    let src = r#"
header tofino_md_t { bit<64> pad; }
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { tofino_md_t tofino_md; ethernet_t eth; }
struct meta_t { bit<8> x; }
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    action fwd(bit<9> p) { ig_tm_md.ucast_egress_port = p; }
    action nop() { ig_tm_md.ucast_egress_port = 9w1; }
    table t {
        key = { hdr.tofino_md.pad: exact; }
        actions = { fwd; nop; }
        default_action = nop();
    }
    apply { t.apply(); }
}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#;
    let (tests, _) = generate(src, TofinoVariant::Tna);
    // No synthesized entries anywhere: the key is tainted (it parses the
    // chip-prepended metadata, which is unpredictable).
    for t in &tests {
        assert!(
            t.entries.is_empty(),
            "tainted exact key must not synthesize entries: {:?}",
            t.entries
        );
    }
    assert!(!tests.is_empty());
}

#[test]
fn tofino_bypass_egress_skips_egress_control() {
    // A program that sets bypass_egress: the egress control's rewrite must
    // not appear in the output of the bypass path.
    let src = r#"
header tofino_md_t { bit<64> pad; }
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { tofino_md_t tofino_md; ethernet_t eth; }
struct meta_t { bit<8> x; }
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {
    state start { pkt.extract(hdr.tofino_md); pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    apply {
        ig_tm_md.ucast_egress_port = 9w2;
        if (hdr.eth.etherType == 0xB1B1) {
            ig_tm_md.bypass_egress = 1;
        }
    }
}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { hdr.eth.src = 48w0xEEEEEEEEEEEE; }
}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#;
    let (tests, _) = generate(src, TofinoVariant::Tna);
    let bypass = tests
        .iter()
        .find(|t| !t.expects_drop() && t.input_packet.len() >= 14 && t.input_packet[12..14] == [0xB1, 0xB1])
        .expect("bypass path test");
    // Egress rewrite must NOT have happened: src bytes stay from the input.
    assert_ne!(&bypass.outputs[0].packet.data[6..12], &[0xEE; 6], "egress must be skipped");
    let normal = tests
        .iter()
        .find(|t| !t.expects_drop() && t.input_packet.len() >= 14 && t.input_packet[12..14] != [0xB1, 0xB1])
        .expect("non-bypass test");
    assert_eq!(&normal.outputs[0].packet.data[6..12], &[0xEE; 6], "egress rewrite applies");
}

#[test]
fn tofino_parser_err_read_prevents_drop() {
    // Appendix A.1: a too-short packet is dropped in the ingress parser,
    // *unless* the ingress control reads parser_err — then execution
    // continues with the offending header unspecified.
    let reads_err = r#"
header tofino_md_t { bit<64> pad; }
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
// A jumbo header pushing the parse chain past the 64-byte minimum, so a
// too-short packet is actually possible on Tofino.
header jumbo_t {
    bit<128> a; bit<128> b; bit<128> c; bit<112> d; bit<16> tag;
}
struct headers_t { tofino_md_t tofino_md; ethernet_t eth; jumbo_t jumbo; }
struct meta_t { bit<8> x; }
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(hdr.tofino_md);
        pkt.extract(hdr.eth);
        pkt.extract(hdr.jumbo);
        transition accept;
    }
}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    apply {
        ig_tm_md.ucast_egress_port = 9w2;
        if (ig_prsr_md.parser_err != 0) {
            ig_tm_md.ucast_egress_port = 9w8;
        }
    }
}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#;
    let (tests, _) = generate(reads_err, TofinoVariant::Tna);
    // The short-packet path must NOT be a drop (parser_err read) and must
    // leave on port 8.
    let short = tests
        .iter()
        .find(|t| t.outputs.first().is_some_and(|o| o.port == 8))
        .expect("parser-error path continues to ingress");
    assert!(!short.expects_drop());
}
