//! The v1model target extension (§6.1.1): BMv2's architecture, including
//! `mark_to_drop`, checksums, hashes, registers, meters, `random`,
//! `resubmit`/`recirculate`, and `clone`.
//!
//! v1model-specific behaviors modeled here (Appendix A.1):
//! * uninitialized variables read as 0 (BMv2 zero-initializes);
//! * the drop port is 511; `mark_to_drop` sets `egress_spec = 511`;
//! * a parser error does not drop the packet — execution skips to ingress
//!   with the offending header invalid and `sm.parser_error` set;
//! * `clone` duplicates the packet to a mirror session whose egress port is
//!   control-plane configuration (modeled as a `$clone_session` entry);
//! * `resubmit` re-injects the *original* packet into the ingress parser;
//!   `recirculate` re-injects the deparsed packet (both bounded);
//! * meter colors are control-plane state installed by the test spec (§6:
//!   frameworks "initialize externs such as registers, meters, counters").

use crate::common::{algo_of, concolic_hash, push_output, register_read, register_write};
use p4testgen_core::state::{ExecState, FinishReason, SynthEntry, SynthKeyMatch};
use p4testgen_core::sym::Sym;
use p4testgen_core::target::{ExecCtx, ExtArg, ExternOutcome, PipeStep, Target, UninitPolicy};
use p4t_frontend::types::Type;
use p4t_ir::{IrBlock, IrProgram};

/// BMv2's drop port.
pub const DROP_PORT: u128 = 511;
/// Maximum modeled recirculation depth.
pub const MAX_RECIRC: u64 = 2;

/// The v1model target.
#[derive(Clone, Default)]
pub struct V1Model;

impl V1Model {
    pub fn new() -> Self {
        V1Model
    }
}

/// The v1model architecture prelude, parsed before every program.
pub const V1MODEL_PRELUDE: &str = r#"
enum HashAlgorithm { crc32, crc16, csum16, xor16, identity, random_alg }
enum CounterType { packets, bytes, packets_and_bytes }
enum MeterType { packets, bytes }
enum CloneType { I2E, E2E }

struct standard_metadata_t {
    bit<9>  ingress_port;
    bit<9>  egress_spec;
    bit<9>  egress_port;
    bit<32> instance_type;
    bit<32> packet_length;
    bit<32> enq_timestamp;
    bit<19> enq_qdepth;
    bit<32> deq_timedelta;
    bit<19> deq_qdepth;
    bit<48> ingress_global_timestamp;
    bit<48> egress_global_timestamp;
    bit<16> mcast_grp;
    bit<16> egress_rid;
    bit<1>  checksum_error;
    error   parser_error;
    bit<3>  priority;
}

extern void mark_to_drop(inout standard_metadata_t standard_metadata);
extern void verify_checksum<T, O>(in bool condition, in T data, in O checksum, HashAlgorithm algo);
extern void update_checksum<T, O>(in bool condition, in T data, inout O checksum, HashAlgorithm algo);
extern void verify_checksum_with_payload<T, O>(in bool condition, in T data, in O checksum, HashAlgorithm algo);
extern void update_checksum_with_payload<T, O>(in bool condition, in T data, inout O checksum, HashAlgorithm algo);
extern void hash<O, T, D, M>(out O result, in HashAlgorithm algo, in T base, in D data, in M max);
extern void random<T>(out T result, in T lo, in T hi);
extern void truncate(in bit<32> length);
extern void resubmit_preserving_field_list(bit<8> index);
extern void recirculate_preserving_field_list(bit<8> index);
extern void clone(in CloneType type, in bit<32> session);
extern void clone_preserving_field_list(in CloneType type, in bit<32> session, bit<8> index);
extern void digest<T>(in bit<32> receiver, in T data);
extern void assert(in bool check);
extern void assume(in bool check);
extern void log_msg(string msg);

extern register<T> {
    register(bit<32> size);
    void read(out T result, in bit<32> index);
    void write(in bit<32> index, in T value);
}
extern counter {
    counter(bit<32> size, CounterType type);
    void count(in bit<32> index);
}
extern direct_counter {
    direct_counter(CounterType type);
    void count();
}
extern meter {
    meter(bit<32> size, MeterType type);
    void execute_meter<T>(in bit<32> index, out T result);
}
extern direct_meter<T> {
    direct_meter(MeterType type);
    void read(out T result);
}
"#;

/// Bind a block's parameters positionally onto global pipeline state,
/// skipping packet parameters (the Fig. 3 structure).
pub fn bind_params(prog: &IrProgram, block: &str, names: &[&str]) -> Result<Vec<Option<String>>, String> {
    let b = prog
        .blocks
        .get(block)
        .ok_or_else(|| format!("program has no block named '{block}'"))?;
    let params = match b {
        IrBlock::Parser(p) => &p.params,
        IrBlock::Control(c) => &c.params,
    };
    let mut out = Vec::new();
    let mut it = names.iter();
    for p in params {
        match p.ty {
            Type::PacketIn | Type::PacketOut => out.push(None),
            _ => out.push(it.next().map(|s| s.to_string())),
        }
    }
    Ok(out)
}

impl V1Model {
    /// `verify_checksum(cond, data, checksum, algo)` (§5.4): the computed
    /// checksum is an uninterpreted concolic result `R`. We fork three ways:
    /// match (`cond ∧ checksum == R`, error stays 0), mismatch
    /// (`cond ∧ checksum != R`, error set), and skipped (`¬cond`). Forcing
    /// `checksum == R` on the match path is the paper's domain-specific
    /// optimization: it is satisfiable whenever the reference value is
    /// derived from symbolic input.
    fn do_verify_checksum(&self, name: &str, args: &[ExtArg], ctx: &mut ExecCtx, st: &mut ExecState) {
        let cond = args[0].value().clone();
        let mut data = args[1].values();
        if name.ends_with("_with_payload") {
            if let Some(payload) = st.packet.live_value(ctx.pool) {
                data.push(payload);
            }
        }
        let checksum = args[2].value().clone();
        let func = algo_of(ctx, &args[3]);
        let r = concolic_hash(ctx, st, func, &data, checksum.width());
        let eq = ctx.pool.eq(checksum.term, r.term);
        let neq = ctx.pool.not(eq);
        let not_cond = ctx.pool.not(cond.term);
        let match_c = ctx.pool.and(cond.term, eq);
        let mismatch_c = ctx.pool.and(cond.term, neq);
        let err1 = ctx.constant(1, 1);
        // Mismatch fork: checksum error raised.
        if !ctx.pool.is_const_false(mismatch_c) {
            let mut m = ctx.fork(st, mismatch_c);
            m.write_global("sm.checksum_error", err1);
            m.log(format!("{name}: checksum mismatch"));
            ctx.forks.push(m);
        }
        // Skipped fork: condition false, nothing computed.
        if !ctx.pool.is_const_false(not_cond) {
            let s = ctx.fork(st, not_cond);
            ctx.forks.push(s);
        }
        // This state continues as the match path.
        if ctx.pool.is_const_false(match_c) {
            st.finish(FinishReason::Infeasible);
        } else {
            st.add_constraint(ctx.pool, match_c);
            st.log(format!("{name}: checksum matches"));
        }
    }

    /// `update_checksum(cond, data, checksum, algo)`: checksum becomes the
    /// concolic result when the condition holds.
    fn do_update_checksum(&self, name: &str, args: &[ExtArg], ctx: &mut ExecCtx, st: &mut ExecState) {
        let cond = args[0].value().clone();
        let mut data = args[1].values();
        if name.ends_with("_with_payload") {
            if let Some(payload) = st.packet.live_value(ctx.pool) {
                data.push(payload);
            }
        }
        let ExtArg::Out(out_path, out_w) = &args[2] else {
            return;
        };
        let old = p4testgen_core::exec::read_slot(ctx, st, self, out_path, *out_w);
        let r = concolic_hash(ctx, st, "$update", &data, *out_w);
        // Reuse the named algorithm for the binding.
        let func = algo_of(ctx, &args[3]);
        if let Some(last) = st.concolics.last_mut() {
            last.func = func.to_string();
        }
        let t = ctx.pool.ite(cond.term, r.term, old.term);
        st.write(out_path, Sym::with_taint(t, old.taint.or(&r.taint)));
        st.log(format!("{name}: checksum updated"));
    }
}

impl Target for V1Model {
    fn name(&self) -> &str {
        "v1model"
    }

    fn prelude(&self) -> &str {
        V1MODEL_PRELUDE
    }

    fn pipeline(&self, prog: &IrProgram) -> Result<Vec<PipeStep>, String> {
        if prog.package != "V1Switch" {
            return Err(format!("v1model expects a V1Switch package, got '{}'", prog.package));
        }
        let args = &prog.package_args;
        if args.len() != 6 {
            return Err(format!("V1Switch expects 6 blocks, got {}", args.len()));
        }
        Ok(vec![
            PipeStep::Block { block: args[0].clone(), bindings: bind_params(prog, &args[0], &["hdr", "meta", "sm"])? },
            PipeStep::Block { block: args[1].clone(), bindings: bind_params(prog, &args[1], &["hdr", "meta"])? },
            PipeStep::Block { block: args[2].clone(), bindings: bind_params(prog, &args[2], &["hdr", "meta", "sm"])? },
            PipeStep::Hook("traffic_manager".to_string()),
            PipeStep::Block { block: args[3].clone(), bindings: bind_params(prog, &args[3], &["hdr", "meta", "sm"])? },
            PipeStep::Block { block: args[4].clone(), bindings: bind_params(prog, &args[4], &["hdr", "meta"])? },
            PipeStep::Block { block: args[5].clone(), bindings: bind_params(prog, &args[5], &["hdr"])? },
            PipeStep::FlushEmit,
            PipeStep::Hook("recirculate_check".to_string()),
        ])
    }

    fn init(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        // Zero the standard metadata, then give the ingress port a symbolic
        // value (also recorded in the conventional $input_port slot).
        for (field, width) in [
            ("egress_spec", 9u32),
            ("egress_port", 9),
            ("instance_type", 32),
            ("mcast_grp", 16),
            ("egress_rid", 16),
            ("checksum_error", 1),
            ("priority", 3),
        ] {
            let z = ctx.constant(width, 0);
            st.write_global(&format!("sm.{field}"), z);
        }
        let port = ctx.fresh("input_port", 9);
        // 511 is the BMv2 drop port and cannot be an ingress port.
        let drop = ctx.constant(9, DROP_PORT);
        let ne = ctx.pool.neq(port.term, drop.term);
        st.add_constraint(ctx.pool, ne);
        st.write_global("sm.ingress_port", port.clone());
        st.write_global("$input_port", port);
        let err = ctx.constant(p4t_frontend::types::ERROR_WIDTH, 0);
        st.write_global("sm.parser_error", err);
    }

    fn uninit_policy(&self) -> UninitPolicy {
        // BMv2 implicitly initializes all variables to 0 (Appendix A.1).
        UninitPolicy::Zero
    }

    fn hook(&self, name: &str, ctx: &mut ExecCtx, st: &mut ExecState) {
        match name {
            "parser_reject" => {
                // BMv2 does not drop on parser errors: record the error and
                // continue with ingress.
                if let Some(err) = st.read_global("$parser_error").cloned() {
                    st.write_global("sm.parser_error", err);
                }
                st.log("v1model: parser reject -> continue to ingress".to_string());
            }
            "traffic_manager" => {
                // Resubmit (Fig. 4/5): the *original* packet re-enters the
                // ingress parser, bypassing the deparser entirely.
                if st.flag("resubmit") == 1 && st.flag("recirc_count") < MAX_RECIRC {
                    st.set_flag("resubmit", 0);
                    st.bump_flag("recirc_count");
                    st.log("resubmit: original packet re-enters ingress".to_string());
                    st.packet.resubmit_original();
                    let z = ctx.constant(9, 0);
                    st.write_global("sm.egress_spec", z);
                    st.continuations.clear();
                    st.continuations.push(p4testgen_core::Cmd::PipeStep(0));
                    return;
                }
                let spec = st
                    .read_global("sm.egress_spec")
                    .cloned()
                    .unwrap_or_else(|| ctx.constant(9, 0));
                let drop = ctx.constant(9, DROP_PORT);
                let is_drop = ctx.pool.eq(spec.term, drop.term);
                match ctx.pool.as_const(is_drop) {
                    Some(v) if v.is_true() => {
                        st.log("traffic manager: drop".to_string());
                        st.finish(FinishReason::Dropped);
                    }
                    Some(_) => {
                        st.write_global("sm.egress_port", spec);
                    }
                    None => {
                        // A symbolic egress_spec comes from synthesized
                        // control-plane values; constrain it away from the
                        // drop port rather than forking a flaky drop test
                        // (explicit drops still arrive here as constants).
                        let not_drop = ctx.pool.not(is_drop);
                        st.add_constraint(ctx.pool, not_drop);
                        st.write_global("sm.egress_port", spec);
                    }
                }
            }
            "recirculate_check" => {
                if st.flag("recirculate") == 1 && st.flag("recirc_count") < MAX_RECIRC {
                    st.set_flag("recirculate", 0);
                    st.bump_flag("recirc_count");
                    st.log("recirculate: re-entering pipeline".to_string());
                    // The deparsed packet (now in L) re-enters the parser.
                    // Metadata is reset except for preserved fields.
                    let z = ctx.constant(9, 0);
                    st.write_global("sm.egress_spec", z);
                    st.continuations.push(p4testgen_core::Cmd::PipeStep(0));
                }
            }
            other => {
                st.log(format!("v1model: unknown hook '{other}' ignored"));
            }
        }
    }

    fn extern_call(
        &self,
        name: &str,
        instance: Option<&str>,
        args: &[ExtArg],
        ctx: &mut ExecCtx,
        st: &mut ExecState,
    ) -> ExternOutcome {
        match name {
            "mark_to_drop" => {
                let drop = ctx.constant(9, DROP_PORT);
                st.write_global("sm.egress_spec", drop);
                let z = ctx.constant(16, 0);
                st.write_global("sm.mcast_grp", z);
                ExternOutcome::Handled
            }
            "verify_checksum" | "verify_checksum_with_payload" => {
                self.do_verify_checksum(name, args, ctx, st);
                ExternOutcome::Handled
            }
            "update_checksum" | "update_checksum_with_payload" => {
                self.do_update_checksum(name, args, ctx, st);
                ExternOutcome::Handled
            }
            "hash" => {
                // hash(out result, algo, base, data, max)
                let ExtArg::Out(out_path, out_w) = &args[0] else {
                    return ExternOutcome::Handled;
                };
                let func = algo_of(ctx, &args[1]);
                let base = args[2].value().clone();
                let data = args[3].values();
                let max = args[4].value().clone();
                let r = concolic_hash(ctx, st, func, &data, *out_w);
                // result = base + (R % max), all in the output width;
                // max == 0 yields base (BMv2 behavior).
                let base_c = ctx.pool.cast(base.term, *out_w as usize);
                let max_c = ctx.pool.cast(max.term, *out_w as usize);
                let rem = ctx.pool.bin(p4t_smt::BinOp::URem, r.term, max_c);
                let sum = ctx.pool.add(base_c, rem);
                let zero = ctx.constant(*out_w, 0);
                let is_zero = ctx.pool.eq(max_c, zero.term);
                let result = ctx.pool.ite(is_zero, base_c, sum);
                st.write(out_path, Sym::clean(result, *out_w));
                ExternOutcome::Handled
            }
            "random" => {
                // Unpredictable output: fully tainted (§5.3).
                let ExtArg::Out(out_path, out_w) = &args[0] else {
                    return ExternOutcome::Handled;
                };
                let r = ctx.havoc("random", *out_w);
                st.write(out_path, r);
                ExternOutcome::Handled
            }
            "read" if instance.is_some() => {
                // register.read(out result, in index)
                let ExtArg::Out(p, w) = &args[0] else {
                    return ExternOutcome::Handled;
                };
                let idx = args[1].value().clone();
                register_read(ctx, st, instance.unwrap(), &idx, &(p.clone(), *w));
                ExternOutcome::Handled
            }
            "write" if instance.is_some() => {
                let idx = args[0].value().clone();
                let val = args[1].value().clone();
                register_write(st, instance.unwrap(), &idx, &val);
                ExternOutcome::Handled
            }
            "count" => {
                st.log(format!("counter {:?} counted", instance));
                ExternOutcome::Handled
            }
            "execute_meter" | "read_meter" => {
                // Meter state is control-plane configuration (§6: "P4Testgen
                // can also initialize externs such as registers, meters,
                // counters"): the color is a fresh clean variable whose
                // chosen value the test spec installs before injection.
                if let Some(ExtArg::Out(p, w)) = args.iter().find(|a| matches!(a, ExtArg::Out(..))) {
                    let idx = match &args[0] {
                        ExtArg::Val(v) => v.clone(),
                        _ => ctx.constant(32, 0),
                    };
                    register_read(ctx, st, instance.unwrap_or("meter"), &idx, &(p.clone(), *w));
                }
                ExternOutcome::Handled
            }
            "truncate" => {
                if let ExtArg::Val(len) = &args[0] {
                    if let Some(bytes) = ctx.pool.as_const(len.term).and_then(|v| v.to_u64()) {
                        st.set_flag("truncate_bytes", bytes);
                    }
                }
                ExternOutcome::Handled
            }
            "resubmit_preserving_field_list" => {
                st.set_flag("resubmit", 1);
                st.log("resubmit requested".to_string());
                ExternOutcome::Handled
            }
            "recirculate_preserving_field_list" => {
                st.set_flag("recirculate", 1);
                st.log("recirculate requested".to_string());
                ExternOutcome::Handled
            }
            "clone" | "clone_preserving_field_list" => {
                let session = args[1].value().clone();
                st.write_global("$clone_session", session);
                st.set_flag("clone_pending", 1);
                st.log("clone requested".to_string());
                ExternOutcome::Handled
            }
            "assert" | "assume" => {
                // Both restrict the path (assume semantics during generation;
                // the concrete models treat failed asserts as crashes).
                if let ExtArg::Val(c) = &args[0] {
                    st.add_constraint(ctx.pool, c.term);
                }
                ExternOutcome::Handled
            }
            "digest" | "log_msg" => {
                st.log(format!("extern {name} (no-op in test generation)"));
                ExternOutcome::Handled
            }
            _ => ExternOutcome::Unknown,
        }
    }

    fn finalize(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        // Truncation applies to the final packet.
        let trunc = st.flag("truncate_bytes");
        if trunc > 0 {
            if let Some(live) = st.packet.live_value(ctx.pool) {
                let keep_bits = (trunc * 8).min(live.width() as u64) as u32;
                if keep_bits < live.width() {
                    let w = live.width();
                    let t = ctx.pool.extract((w - 1) as usize, (w - keep_bits) as usize, live.term);
                    let taint = live.taint.extract((w - 1) as usize, (w - keep_bits) as usize);
                    st.packet.clear_live();
                    st.packet.append_target(Sym::with_taint(t, taint));
                }
            }
        }
        let port = st
            .read_global("sm.egress_port")
            .cloned()
            .unwrap_or_else(|| ctx.constant(9, 0));
        push_output(ctx, st, port);
        // Clone output: a second copy of the final packet on the mirror
        // session's port (control-plane configured).
        if st.flag("clone_pending") == 1 {
            let session = st
                .read_global("$clone_session")
                .cloned()
                .unwrap_or_else(|| ctx.constant(32, 0));
            let clone_port = ctx.fresh("clone_port", 9);
            let drop = ctx.constant(9, DROP_PORT);
            let ne = ctx.pool.neq(clone_port.term, drop.term);
            st.add_constraint(ctx.pool, ne);
            st.entries.push(SynthEntry {
                table: "$clone_session".to_string(),
                keys: vec![SynthKeyMatch {
                    key_name: "session".to_string(),
                    match_kind: "exact".to_string(),
                    width: 32,
                    value: Some(session.term),
                    mask: None,
                    hi: None,
                    prefix_len: None,
                }],
                action: "mirror".to_string(),
                args: vec![("port".to_string(), clone_port.term, 9)],
                priority: 0,
            });
            push_output(ctx, st, clone_port);
        }
    }
}
