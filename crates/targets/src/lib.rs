//! # p4t-targets — target extensions for p4testgen
//!
//! The paper instantiates P4Testgen for four architectures (Table 1); this
//! crate provides all four, each implementing the
//! [`Target`](p4testgen_core::Target) trait from `p4testgen-core` without
//! touching the core executor — the extensibility claim the paper validates:
//!
//! * [`v1model`] — BMv2's architecture (§6.1.1), including `clone`,
//!   recirculation, checksums, and P4-constraints support.
//! * [`tofino`] — the `tna` (Tofino 1) and `t2na` (Tofino 2) architectures
//!   (§6.1.2): prepended intrinsic metadata, frame check sequences,
//!   64-byte minimum packets, drop-on-parser-error in the ingress parser,
//!   and (for t2na) the ghost thread.
//! * [`ebpf`] — the `ebpf_model` end-host target (§6.1.3): parser + filter,
//!   no deparser, implicit header emission.
//!
//! [`quirks`] documents the expected cross-target behavioral differences
//! the differential harness tolerates (`p4testgen diff --cross`).

pub mod common;
pub mod ebpf;
pub mod quirks;
pub mod tofino;
pub mod v1model;

pub use ebpf::EbpfModel;
pub use quirks::{match_quirk, DivergenceContext, Quirk, SideObservation};
pub use tofino::{Tofino, TofinoVariant};
pub use v1model::V1Model;
