//! The cross-target quirk list: documented, machine-readable reasons two
//! architectures legitimately disagree on the same program and input.
//!
//! The differential harness (`p4testgen diff --cross`) runs programs from
//! the target-intersection subset under every architecture's semantics and
//! compares outcomes. Architectures are *supposed* to differ in specific,
//! well-understood ways — BMv2 zero-initializes, Tofino drops sub-minimum
//! frames, the eBPF model has no egress port concept. Each such difference
//! is an entry here with an identifier, the targets it applies to, and a
//! matcher over the observed divergence; a divergence explained by an
//! entry is reported as `quirk-suppressed` instead of failing the run.
//! Anything *not* on this list is a real soundness finding.
//!
//! The list is exported as JSON (`catalog_json`) so external tooling can
//! audit exactly which disagreements the harness tolerates.

use serde_json::Value;

/// What the differential harness observed for one (test, target) pair,
/// reduced to the facts the quirk matchers need.
#[derive(Clone, Debug, Default)]
pub struct SideObservation {
    pub target: String,
    /// No output packets were produced.
    pub dropped: bool,
    /// The run aborted with a trap/exception message.
    pub trap: Option<String>,
    /// Output packet lengths in port order.
    pub output_lens: Vec<usize>,
    /// Output ports in emission order.
    pub ports: Vec<u32>,
    /// The parser rejected the input (parser error was raised).
    pub parser_rejected: bool,
}

/// The context for one observed cross-target divergence.
#[derive(Clone, Debug, Default)]
pub struct DivergenceContext {
    pub input_len: usize,
    pub a: SideObservation,
    pub b: SideObservation,
}

/// One documented architectural difference.
pub struct Quirk {
    /// Stable identifier, referenced from divergence reports.
    pub id: &'static str,
    /// Targets whose presence on either side makes the quirk applicable.
    pub targets: &'static [&'static str],
    /// Human-readable explanation, mirrored into `catalog_json`.
    pub description: &'static str,
    matcher: fn(&DivergenceContext) -> bool,
}

fn involves(ctx: &DivergenceContext, names: &[&str]) -> bool {
    names.contains(&ctx.a.target.as_str()) || names.contains(&ctx.b.target.as_str())
}

fn tofino_side(ctx: &DivergenceContext) -> Option<&SideObservation> {
    [&ctx.a, &ctx.b]
        .into_iter()
        .find(|s| s.target == "tna" || s.target == "t2na")
}

fn ebpf_side(ctx: &DivergenceContext) -> Option<&SideObservation> {
    [&ctx.a, &ctx.b].into_iter().find(|s| s.target == "ebpf_model")
}

/// The documented quirk catalog, in match-priority order: the first entry
/// whose targets and matcher both apply explains the divergence.
pub fn catalog() -> Vec<Quirk> {
    vec![
        Quirk {
            id: "tofino-min-frame",
            targets: &["tna", "t2na"],
            description: "Tofino requires 64-byte minimum frames; shorter inputs are \
                          discarded before the ingress parser runs, while v1model and \
                          ebpf_model process them normally.",
            matcher: |ctx| {
                ctx.input_len < 64
                    && tofino_side(ctx).is_some_and(|t| t.dropped)
            },
        },
        Quirk {
            id: "tofino-wire-format",
            targets: &["tna", "t2na"],
            description: "Tofino prepends intrinsic metadata ahead of the frame and \
                          appends a frame check sequence, so output packet lengths \
                          differ structurally from v1model/ebpf_model outputs even \
                          when the forwarding decision agrees.",
            matcher: |ctx| {
                tofino_side(ctx).is_some()
                    && !ctx.a.dropped
                    && !ctx.b.dropped
                    && ctx.a.output_lens != ctx.b.output_lens
            },
        },
        Quirk {
            id: "parser-reject-policy",
            targets: &["v1model", "tna", "t2na", "ebpf_model"],
            description: "On a parser error v1model records the error and continues \
                          to ingress; the Tofino ingress parser drops the packet \
                          (unless the program reads parser_err); ebpf_model rejects. \
                          The same malformed input therefore legitimately diverges in \
                          drop behavior across targets.",
            matcher: |ctx| {
                (ctx.a.parser_rejected || ctx.b.parser_rejected)
                    && ctx.a.dropped != ctx.b.dropped
            },
        },
        Quirk {
            id: "tofino-no-egress-port-drop",
            targets: &["tna", "t2na"],
            description: "Tofino drops packets whose ingress control never assigns \
                          ig_tm_md.ucast_egress_port; v1model forwards to egress_spec's \
                          zero-initialized default port 0 in the same situation.",
            matcher: |ctx| {
                tofino_side(ctx).is_some_and(|t| t.dropped)
                    && [&ctx.a, &ctx.b]
                        .into_iter()
                        .any(|s| !s.dropped && s.ports.iter().all(|&p| p == 0))
            },
        },
        Quirk {
            id: "ebpf-port-zero",
            targets: &["ebpf_model"],
            description: "ebpf_model is a filter, not a switch: accepted packets \
                          always leave on port 0, so port assignments made by other \
                          targets' forwarding logic cannot be observed.",
            matcher: |ctx| {
                ebpf_side(ctx).is_some_and(|e| !e.dropped && e.ports.iter().all(|&p| p == 0))
                    && [&ctx.a, &ctx.b].into_iter().any(|s| {
                        s.target != "ebpf_model" && !s.dropped && s.ports.iter().any(|&p| p != 0)
                    })
            },
        },
        Quirk {
            id: "uninitialized-read-policy",
            targets: &["v1model", "tna", "t2na", "ebpf_model"],
            description: "BMv2 implicitly zero-initializes locals and metadata \
                          (v1model Appendix A.1); Tofino and ebpf_model leave them \
                          unspecified. Outputs that embed uninitialized reads differ \
                          bit-for-bit across targets; within one target those bits \
                          are already don't-care-masked by the generated tests.",
            matcher: |ctx| {
                involves(ctx, &["v1model"])
                    && !ctx.a.dropped
                    && !ctx.b.dropped
                    && ctx.a.ports == ctx.b.ports
                    && ctx.a.output_lens == ctx.b.output_lens
                    && ctx.a.trap.is_none()
                    && ctx.b.trap.is_none()
            },
        },
    ]
}

/// Find the first catalog entry explaining the divergence, if any.
pub fn match_quirk(ctx: &DivergenceContext) -> Option<&'static str> {
    catalog()
        .into_iter()
        .find(|q| {
            (q.targets.contains(&ctx.a.target.as_str())
                || q.targets.contains(&ctx.b.target.as_str()))
                && (q.matcher)(ctx)
        })
        .map(|q| q.id)
}

/// The catalog as JSON, for report headers and external audit.
pub fn catalog_json() -> Value {
    Value::Array(
        catalog()
            .into_iter()
            .map(|q| {
                Value::Object(vec![
                    ("id".into(), Value::String(q.id.into())),
                    (
                        "targets".into(),
                        Value::Array(
                            q.targets.iter().map(|t| Value::String((*t).into())).collect(),
                        ),
                    ),
                    ("description".into(), Value::String(q.description.into())),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(target: &str, dropped: bool, ports: &[u32], lens: &[usize]) -> SideObservation {
        SideObservation {
            target: target.into(),
            dropped,
            trap: None,
            output_lens: lens.to_vec(),
            ports: ports.to_vec(),
            parser_rejected: false,
        }
    }

    #[test]
    fn min_frame_quirk_matches_short_tofino_drop() {
        let ctx = DivergenceContext {
            input_len: 20,
            a: side("v1model", false, &[1], &[20]),
            b: side("tna", true, &[], &[]),
        };
        assert_eq!(match_quirk(&ctx), Some("tofino-min-frame"));
    }

    #[test]
    fn long_frame_tofino_drop_is_not_min_frame() {
        let ctx = DivergenceContext {
            input_len: 80,
            a: side("v1model", false, &[0], &[80]),
            b: side("tna", true, &[], &[]),
        };
        // Still explained, but by the no-egress-port rule, not min-frame.
        assert_eq!(match_quirk(&ctx), Some("tofino-no-egress-port-drop"));
    }

    #[test]
    fn parser_reject_policy_needs_a_reject() {
        let mut ctx = DivergenceContext {
            input_len: 80,
            a: side("v1model", false, &[1], &[80]),
            b: side("ebpf_model", true, &[], &[]),
        };
        assert_eq!(match_quirk(&ctx), None);
        ctx.b.parser_rejected = true;
        assert_eq!(match_quirk(&ctx), Some("parser-reject-policy"));
    }

    #[test]
    fn ebpf_port_zero_quirk() {
        let ctx = DivergenceContext {
            input_len: 80,
            a: side("v1model", false, &[7], &[80]),
            b: side("ebpf_model", false, &[0], &[80]),
        };
        assert_eq!(match_quirk(&ctx), Some("ebpf-port-zero"));
    }

    #[test]
    fn catalog_json_is_complete() {
        let v = catalog_json();
        let Value::Array(items) = &v else { panic!("not an array") };
        assert_eq!(items.len(), catalog().len());
        for item in items {
            let Value::Object(fields) = item else { panic!("not an object") };
            for key in ["id", "targets", "description"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
    }

    #[test]
    fn unrelated_divergence_is_not_suppressed() {
        // Same shape, same ports, a genuine value difference on v1model-only
        // comparison must not match any quirk... except the uninitialized
        // read rule, which requires v1model *against another target*.
        let ctx = DivergenceContext {
            input_len: 80,
            a: side("tna", false, &[1], &[80]),
            b: side("t2na", false, &[2], &[80]),
        };
        assert_eq!(match_quirk(&ctx), None);
    }
}
