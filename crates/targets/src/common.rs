//! Helpers shared by the target extensions: register/counter/meter
//! recording, concolic hash dispatch, and output finalization.

use p4testgen_core::state::{ConcolicBinding, ExecState, RegisterOp, SymOutput};
use p4testgen_core::sym::Sym;
use p4testgen_core::target::{ExecCtx, ExtArg};
use p4t_smt::TermId;

/// Record a register read: the result is a fresh variable; the test spec
/// initializes the register to whatever the solver chooses (§6: "P4Testgen
/// can also initialize externs such as registers ... and validate their
/// state after test execution").
pub fn register_read(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    instance: &str,
    index: &Sym,
    out: &(p4t_ir::Path, u32),
) {
    let (path, width) = out;
    let result = ctx.fresh(&format!("{instance}_read"), *width);
    st.register_ops.push(RegisterOp::Read {
        instance: instance.to_string(),
        index: index.term,
        result: result.term,
        width: *width,
    });
    st.write(path, result);
}

/// Record a register write for post-test validation.
pub fn register_write(st: &mut ExecState, instance: &str, index: &Sym, value: &Sym) {
    st.register_ops.push(RegisterOp::Write {
        instance: instance.to_string(),
        index: index.term,
        value: value.term,
        width: value.width(),
    });
}

/// Model a hash extern concolically (§5.4): the result is an unconstrained
/// variable bound to `func(args...)` at emission time.
pub fn concolic_hash(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    func: &str,
    inputs: &[Sym],
    out_width: u32,
) -> Sym {
    let result = ctx.fresh(&format!("concolic_{func}"), out_width);
    st.concolics.push(ConcolicBinding {
        func: func.to_string(),
        args: inputs.iter().map(|s| s.term).collect(),
        result: result.term,
    });
    result
}

/// Map a hash-algorithm enum value (by its declared member value) to the
/// concolic function name.
pub fn algo_name(algo_value: u128) -> &'static str {
    match algo_value {
        0 => "crc32",
        1 => "crc16",
        2 => "csum16",
        3 => "xor16",
        _ => "identity",
    }
}

/// Extract the concrete enum value of an algorithm argument, defaulting to
/// csum16 when symbolic.
pub fn algo_of(ctx: &ExecCtx, arg: &ExtArg) -> &'static str {
    match arg {
        ExtArg::Val(s) => match ctx.pool.as_const(s.term).and_then(|v| v.to_u128()) {
            Some(v) => algo_name(v),
            None => "csum16",
        },
        _ => "csum16",
    }
}

/// Push an output packet (port + current live packet) onto the state.
pub fn push_output(ctx: &mut ExecCtx, st: &mut ExecState, port: Sym) {
    let payload = st.packet.live_value(ctx.pool);
    st.outputs.push(SymOutput { port, payload });
}

/// Read a conventional global slot as a term, if present.
pub fn read_term(st: &ExecState, path: &str) -> Option<TermId> {
    st.read_global(path).map(|s| s.term)
}
