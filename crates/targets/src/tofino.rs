//! The Tofino target extensions: `tna` (Tofino 1) and `t2na` (Tofino 2)
//! (§6.1.2, Appendix A.1).
//!
//! Tofino-specific behaviors modeled here:
//! * the chip prepends intrinsic metadata to the packet (64 bits on tna,
//!   128 on t2na, modeled tainted) and the software model appends a 32-bit
//!   Ethernet frame check sequence — both parseable but excluded from the
//!   emitted egress packet;
//! * packets shorter than 64 bytes are dropped; short packets are dropped in
//!   the *ingress* parser but not the egress parser;
//! * if the egress port variable is never written, the packet is dropped;
//! * a two-parser pipeline: ingress parser/control/deparser, then egress
//!   parser/control/deparser, with the traffic manager between them — the
//!   egress parser re-parses the ingress deparser's output (the Fig. 6
//!   scenario where the egress parser can grow I);
//! * t2na adds the ghost thread (logged when present) and extra metadata.

use crate::common::{concolic_hash, push_output, register_read, register_write};
use crate::v1model::bind_params;
use p4testgen_core::state::{ExecState, FinishReason};
use p4testgen_core::sym::Sym;
use p4testgen_core::target::{ExecCtx, ExtArg, ExternOutcome, PipeStep, Target, UninitPolicy};
use p4t_ir::IrProgram;

/// Which Tofino generation to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TofinoVariant {
    Tna,
    T2na,
}

/// The Tofino target (both generations).
#[derive(Clone)]
pub struct Tofino {
    pub variant: TofinoVariant,
    /// Honor `@auto_init_metadata` (zero-initialize target metadata),
    /// one of the paper's taint-spread mitigations (§5.3).
    pub auto_init_metadata: bool,
}

impl Tofino {
    pub fn tna() -> Self {
        Tofino { variant: TofinoVariant::Tna, auto_init_metadata: false }
    }

    pub fn t2na() -> Self {
        Tofino { variant: TofinoVariant::T2na, auto_init_metadata: false }
    }

    /// Bits of intrinsic metadata prepended to every packet ([TNA spec §5.1]:
    /// 128–256 bits; we model the common phase-0 configuration).
    fn prepended_metadata_bits(&self) -> u32 {
        match self.variant {
            TofinoVariant::Tna => 64,
            TofinoVariant::T2na => 128,
        }
    }
}

/// Architecture prelude shared by tna and t2na.
pub const TNA_PRELUDE: &str = r#"
enum HashAlgorithm_t { IDENTITY, CRC16, CRC32, CUSTOM }
enum MeterColor_t { GREEN, YELLOW, RED }

struct ingress_intrinsic_metadata_t {
    bit<1>  resubmit_flag;
    bit<1>  _pad1;
    bit<2>  packet_version;
    bit<3>  _pad2;
    bit<9>  ingress_port;
    bit<48> ingress_mac_tstamp;
}
struct ingress_intrinsic_metadata_for_tm_t {
    bit<9>  ucast_egress_port;
    bit<1>  bypass_egress;
    bit<1>  deflect_on_drop;
    bit<3>  ingress_cos;
    bit<5>  qid;
    bit<3>  icos_for_copy_to_cpu;
    bit<1>  copy_to_cpu;
    bit<2>  packet_color;
    bit<16> mcast_grp_a;
    bit<16> mcast_grp_b;
    bit<16> rid;
}
struct ingress_intrinsic_metadata_for_deparser_t {
    bit<3> drop_ctl;
    bit<3> digest_type;
    bit<3> resubmit_type;
    bit<3> mirror_type;
}
struct ingress_intrinsic_metadata_from_parser_t {
    bit<48> global_tstamp;
    bit<32> global_ver;
    bit<16> parser_err;
}
struct egress_intrinsic_metadata_t {
    bit<9>  egress_port;
    bit<19> enq_qdepth;
    bit<2>  enq_congest_stat;
    bit<18> enq_tstamp;
    bit<19> deq_qdepth;
    bit<16> egress_rid;
    bit<7>  egress_qid;
    bit<3>  egress_cos;
    bit<16> pkt_length;
}
struct egress_intrinsic_metadata_from_parser_t {
    bit<48> global_tstamp;
    bit<32> global_ver;
    bit<16> parser_err;
}
struct egress_intrinsic_metadata_for_deparser_t {
    bit<3> drop_ctl;
    bit<3> mirror_type;
    bit<1> coalesce_flush;
    bit<7> coalesce_length;
}
struct egress_intrinsic_metadata_for_output_port_t {
    bit<1> capture_tstamp_on_tx;
    bit<1> update_delay_on_tx;
    bit<1> force_tx_error;
}

extern Register<T, I> {
    Register(bit<32> size);
    T read(in I index);
    void write(in I index, in T value);
}
extern Counter<W, I> {
    Counter(bit<32> size, bit<8> type);
    void count(in I index);
}
extern DirectCounter<W> {
    DirectCounter(bit<8> type);
    void count();
}
extern Meter<I> {
    Meter(bit<32> size, bit<8> type);
    bit<8> execute(in I index);
}
extern Hash<W> {
    Hash(HashAlgorithm_t algo);
    W get<D>(in D data);
}
extern Checksum {
    Checksum();
    void add<T>(in T data);
    void subtract<T>(in T data);
    bit<16> get();
    bool verify();
}
extern Random<W> {
    Random();
    W get();
}
extern Mirror {
    Mirror();
    void emit<T>(in bit<10> session_id, in T hdr);
}
extern Resubmit {
    Resubmit();
    void emit<T>(in T hdr);
}
extern Digest<T> {
    Digest();
    void pack(in T data);
}
"#;

impl Target for Tofino {
    fn name(&self) -> &str {
        match self.variant {
            TofinoVariant::Tna => "tna",
            TofinoVariant::T2na => "t2na",
        }
    }

    fn prelude(&self) -> &str {
        TNA_PRELUDE
    }

    fn pipeline(&self, prog: &IrProgram) -> Result<Vec<PipeStep>, String> {
        if prog.package != "Pipeline" {
            return Err(format!(
                "{} expects a Pipeline package, got '{}'",
                self.name(),
                prog.package
            ));
        }
        let args = &prog.package_args;
        // Pipeline(IngressParser, Ingress, IngressDeparser,
        //          EgressParser, Egress, EgressDeparser [, Ghost])
        if args.len() != 6 && args.len() != 7 {
            return Err(format!(
                "Pipeline expects 6 (tna) or 7 (t2na) blocks, got {}",
                args.len()
            ));
        }
        if args.len() == 7 && self.variant == TofinoVariant::Tna {
            return Err("ghost control requires t2na".to_string());
        }
        let mut steps = vec![
            PipeStep::Block {
                block: args[0].clone(),
                bindings: bind_params(prog, &args[0], &["hdr", "meta", "ig_intr_md"])?,
            },
            PipeStep::Block {
                block: args[1].clone(),
                bindings: bind_params(
                    prog,
                    &args[1],
                    &["hdr", "meta", "ig_intr_md", "ig_prsr_md", "ig_dprsr_md", "ig_tm_md"],
                )?,
            },
            PipeStep::Block {
                block: args[2].clone(),
                bindings: bind_params(prog, &args[2], &["hdr", "meta", "ig_dprsr_md"])?,
            },
            PipeStep::FlushEmit,
            PipeStep::Hook("traffic_manager".to_string()),
        ];
        if args.len() == 7 {
            steps.push(PipeStep::Hook("ghost".to_string()));
        }
        steps.extend([
            PipeStep::Block {
                block: args[3].clone(),
                bindings: bind_params(prog, &args[3], &["hdr", "emeta", "eg_intr_md"])?,
            },
            PipeStep::Hook("egress_parser_done".to_string()),
            PipeStep::Block {
                block: args[4].clone(),
                bindings: bind_params(
                    prog,
                    &args[4],
                    &["hdr", "emeta", "eg_intr_md", "eg_prsr_md", "eg_dprsr_md", "eg_oport_md"],
                )?,
            },
            PipeStep::Block {
                block: args[5].clone(),
                bindings: bind_params(prog, &args[5], &["hdr", "emeta", "eg_dprsr_md"])?,
            },
            PipeStep::FlushEmit,
        ]);
        Ok(steps)
    }

    fn init(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        // The chip prepends intrinsic metadata; the software model appends
        // an Ethernet FCS. Both are parseable but unpredictable: tainted.
        let meta_bits = self.prepended_metadata_bits();
        let meta = ctx.havoc("tofino_intrinsic", meta_bits);
        st.packet.prepend_target(meta);
        // Packets must be at least 64 bytes (shorter ones are dropped before
        // the pipeline); pre-allocate the minimum as a fixed precondition
        // (§6: target-specific preconditions restrict the initial packets).
        st.packet.grow_input(ctx.pool, 64 * 8);
        let fcs = ctx.havoc("tofino_fcs", 32);
        st.packet.append_target(fcs);
        let port = ctx.fresh("input_port", 9);
        st.write_global("ig_intr_md.ingress_port", port.clone());
        st.write_global("$input_port", port);
        let z3 = ctx.constant(3, 0);
        st.write_global("ig_dprsr_md.drop_ctl", z3.clone());
        st.write_global("eg_dprsr_md.drop_ctl", z3);
        let z1 = ctx.constant(1, 0);
        st.write_global("ig_tm_md.bypass_egress", z1);
        let zerr = ctx.constant(16, 0);
        st.write_global("ig_prsr_md.parser_err", zerr.clone());
        st.write_global("eg_prsr_md.parser_err", zerr);
        st.set_flag("in_ingress", 1);
    }

    fn uninit_policy(&self) -> UninitPolicy {
        if self.auto_init_metadata {
            UninitPolicy::Zero
        } else {
            UninitPolicy::Taint
        }
    }

    fn uninit_policy_for(&self, global_path: &str) -> UninitPolicy {
        // User metadata is zero-initialized by the Tofino compiler's
        // standard configuration; intrinsic metadata and locals are
        // undefined unless @auto_init_metadata is set (§5.3 mitigation 3).
        if global_path.starts_with("meta.")
            || global_path.starts_with("emeta.")
            || global_path == "meta"
            || global_path == "emeta"
        {
            UninitPolicy::Zero
        } else {
            self.uninit_policy()
        }
    }

    fn min_packet_bytes(&self) -> u32 {
        64
    }

    fn hook(&self, name: &str, ctx: &mut ExecCtx, st: &mut ExecState) {
        match name {
            "parser_reject" => {
                // Short packets are dropped in the ingress parser, but not
                // the egress parser (Appendix A.1). Programs that read
                // parser_err see the error and continue instead.
                if let Some(err) = st.read_global("$parser_error").cloned() {
                    if st.flag("in_ingress") == 1 {
                        st.write_global("ig_prsr_md.parser_err", err);
                        if program_reads_parser_err(ctx.prog) {
                            st.log(
                                "tna: parser error, program reads parser_err -> continue"
                                    .to_string(),
                            );
                        } else {
                            st.log("tna: parser error in ingress parser -> drop".to_string());
                            st.finish(FinishReason::Dropped);
                        }
                    } else {
                        st.write_global("eg_prsr_md.parser_err", err);
                        st.log("tna: parser error in egress parser -> continue".to_string());
                    }
                }
            }
            "traffic_manager" => {
                // Drop check: ig_dprsr_md.drop_ctl != 0 drops the packet.
                let drop_ctl = st
                    .read_global("ig_dprsr_md.drop_ctl")
                    .cloned()
                    .unwrap_or_else(|| ctx.constant(3, 0));
                let zero = ctx.constant(3, 0);
                let is_drop = ctx.pool.neq(drop_ctl.term, zero.term);
                match ctx.pool.as_const(is_drop) {
                    Some(v) if v.is_true() => {
                        st.finish(FinishReason::Dropped);
                        return;
                    }
                    Some(_) => {}
                    None => {
                        let mut d = ctx.fork(st, is_drop);
                        d.log("tna: drop_ctl set -> drop".to_string());
                        d.finish(FinishReason::Dropped);
                        ctx.forks.push(d);
                        let nd = ctx.pool.not(is_drop);
                        st.add_constraint(ctx.pool, nd);
                    }
                }
                // If the egress port was never written, the packet is
                // considered dropped (Appendix A.1).
                match st.read_global("ig_tm_md.ucast_egress_port").cloned() {
                    None => {
                        st.log("tna: egress port never written -> drop".to_string());
                        st.finish(FinishReason::Dropped);
                        return;
                    }
                    Some(port) => {
                        // Stash the port: the egress parser's `out` intrinsic
                        // metadata parameter resets eg_intr_md on entry; the
                        // egress_parser_done hook restores it.
                        st.write_global("$egress_port", port);
                    }
                }
                st.set_flag("in_ingress", 0);
                // bypass_egress skips egress processing entirely.
                let bypass = st
                    .read_global("ig_tm_md.bypass_egress")
                    .cloned()
                    .unwrap_or_else(|| ctx.constant(1, 0));
                let mut skip = false;
                match ctx.pool.as_const(bypass.term) {
                    Some(v) if v.is_true() => skip = true,
                    Some(_) => {}
                    None => {
                        let mut b = ctx.fork(st, bypass.term);
                        b.log("tna: bypass_egress -> skip egress".to_string());
                        let plen = self.pipeline(ctx.prog).map(|p| p.len()).unwrap_or(1);
                        skip_to_pipeline_end(&mut b, plen);
                        ctx.forks.push(b);
                        let nb = ctx.pool.not(bypass.term);
                        st.add_constraint(ctx.pool, nb);
                    }
                }
                if skip {
                    st.log("tna: bypass_egress -> skip egress".to_string());
                    let plen = self.pipeline(ctx.prog).map(|p| p.len()).unwrap_or(1);
                    skip_to_pipeline_end(st, plen);
                }
            }
            "egress_parser_done" => {
                if let Some(port) = st.read_global("$egress_port").cloned() {
                    st.write_global("eg_intr_md.egress_port", port);
                }
            }
            "ghost" => {
                // t2na ghost thread: can mutate register state in parallel.
                // Register reads are already free variables constrained only
                // by the control-plane initialization, which subsumes a
                // ghost-written value; we log the interleaving point.
                st.log("t2na: ghost thread interleaving point".to_string());
            }
            other => {
                st.log(format!("tna: unknown hook '{other}' ignored"));
            }
        }
    }

    fn extern_call(
        &self,
        name: &str,
        instance: Option<&str>,
        args: &[ExtArg],
        ctx: &mut ExecCtx,
        st: &mut ExecState,
    ) -> ExternOutcome {
        match name {
            "read" if instance.is_some() => {
                // TNA Register.read(index): value-returning, so lowering
                // appended an Out temp as the final argument.
                if let Some(ExtArg::Out(p, w)) = args.last() {
                    let idx = args[0].value().clone();
                    register_read(ctx, st, instance.unwrap(), &idx, &(p.clone(), *w));
                }
                ExternOutcome::Handled
            }
            "write" if instance.is_some() => {
                let idx = args[0].value().clone();
                let val = args[1].value().clone();
                register_write(st, instance.unwrap(), &idx, &val);
                ExternOutcome::Handled
            }
            "get" if instance.is_some() => {
                // Hash.get(data) (concolic) or Random.get() (taint).
                if let Some(ExtArg::Out(p, w)) = args.last() {
                    if args.len() >= 2 {
                        let data = args[0].values();
                        let r = concolic_hash(ctx, st, "crc32", &data, *w);
                        st.write(p, r);
                    } else {
                        let r = ctx.havoc("random", *w);
                        st.write(p, r);
                    }
                }
                ExternOutcome::Handled
            }
            "add" | "subtract" => {
                // Checksum unit accumulation: remember the inputs.
                let inst = instance.unwrap_or("");
                let n = st.bump_flag(&format!("csum_inputs_{inst}"));
                for (i, v) in args[0].values().into_iter().enumerate() {
                    st.write_global(&format!("$csum.{inst}.{n:04}.{i:04}"), v);
                }
                ExternOutcome::Handled
            }
            "verify" if instance.is_some() => {
                // Checksum.verify(): true iff the accumulated data checksums
                // to zero — concolic.
                if let Some(ExtArg::Out(p, _)) = args.last() {
                    let inputs = collect_csum_inputs(st, instance.unwrap_or(""));
                    let r = concolic_hash(ctx, st, "csum16", &inputs, 16);
                    let zero = ctx.constant(16, 0);
                    let ok = ctx.pool.eq(r.term, zero.term);
                    let taint = r.taint.extract(0, 0);
                    st.write(p, Sym::with_taint(ok, taint));
                }
                ExternOutcome::Handled
            }
            "execute" => {
                // Meter color is control-plane configuration, like register
                // contents: deterministic per test.
                if let Some(ExtArg::Out(p, w)) = args.last() {
                    let idx = match args.first() {
                        Some(ExtArg::Val(v)) if args.len() > 1 => v.clone(),
                        _ => ctx.constant(32, 0),
                    };
                    register_read(ctx, st, instance.unwrap_or("meter"), &idx, &(p.clone(), *w));
                }
                ExternOutcome::Handled
            }
            "count" => ExternOutcome::Handled,
            "emit" if instance.is_some() => {
                // Mirror.emit / Resubmit.emit (Fig. 4's resubmit path): the
                // packet re-enters the ingress pipeline; bounded.
                if st.flag("resubmit_count") < 1 {
                    st.bump_flag("resubmit_count");
                    st.log(format!("{}: resubmit/mirror emit", instance.unwrap()));
                }
                ExternOutcome::Handled
            }
            "pack" => ExternOutcome::Handled, // Digest: control-plane only
            _ => ExternOutcome::Unknown,
        }
    }

    fn finalize(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        // Egress drop_ctl check.
        let drop_ctl = st
            .read_global("eg_dprsr_md.drop_ctl")
            .cloned()
            .unwrap_or_else(|| ctx.constant(3, 0));
        let zero = ctx.constant(3, 0);
        let is_drop = ctx.pool.neq(drop_ctl.term, zero.term);
        match ctx.pool.as_const(is_drop) {
            Some(v) if v.is_true() => {
                st.finish(FinishReason::Dropped);
                return;
            }
            Some(_) => {}
            None => {
                let mut d = ctx.fork(st, is_drop);
                d.finish(FinishReason::Dropped);
                ctx.forks.push(d);
                let nd = ctx.pool.not(is_drop);
                st.add_constraint(ctx.pool, nd);
            }
        }
        let port = st
            .read_global("$egress_port")
            .or_else(|| st.read_global("eg_intr_md.egress_port"))
            .cloned()
            .unwrap_or_else(|| ctx.constant(9, 0));
        push_output(ctx, st, port);
    }
}

/// Jump to the end of the pipeline: clear queued continuations and resume
/// at the final step (the trailing FlushEmit), after which finalize runs.
fn skip_to_pipeline_end(st: &mut ExecState, pipeline_len: usize) {
    use p4testgen_core::Cmd;
    st.continuations.clear();
    st.continuations.push(Cmd::PipeStep(pipeline_len - 1));
}

/// Whether the program reads the ingress `parser_err` field, which changes
/// Tofino's drop-on-parser-error behavior (Appendix A.1).
fn program_reads_parser_err(prog: &IrProgram) -> bool {
    prog.blocks.values().any(|b| match b {
        p4t_ir::IrBlock::Control(c) => {
            c.apply.iter().any(stmt_reads_parser_err)
                || c.actions.values().any(|a| a.body.iter().any(stmt_reads_parser_err))
        }
        _ => false,
    })
}

fn collect_csum_inputs(st: &ExecState, instance: &str) -> Vec<Sym> {
    let prefix = format!("$csum.{instance}.");
    let mut items: Vec<(String, Sym)> = st
        .slots()
        .filter(|(k, _)| k.starts_with(&prefix))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    items.sort_by(|a, b| a.0.cmp(&b.0));
    items.into_iter().map(|(_, v)| v).collect()
}

fn stmt_reads_parser_err(s: &p4t_ir::IrStmt) -> bool {
    fn expr_reads(e: &p4t_ir::IrExpr) -> bool {
        match e {
            p4t_ir::IrExpr::Read { path, .. } => path.as_str().contains("parser_err"),
            p4t_ir::IrExpr::Unary { arg, .. } => expr_reads(arg),
            p4t_ir::IrExpr::Binary { lhs, rhs, .. } => expr_reads(lhs) || expr_reads(rhs),
            p4t_ir::IrExpr::Slice { base, .. } => expr_reads(base),
            p4t_ir::IrExpr::Cast { arg, .. } | p4t_ir::IrExpr::SignCast { arg, .. } => {
                expr_reads(arg)
            }
            p4t_ir::IrExpr::Mux { cond, then_e, else_e, .. } => {
                expr_reads(cond) || expr_reads(then_e) || expr_reads(else_e)
            }
            _ => false,
        }
    }
    match s {
        p4t_ir::IrStmt::Assign { value, .. } => expr_reads(value),
        p4t_ir::IrStmt::If { cond, then_s, else_s, .. } => {
            expr_reads(cond)
                || then_s.iter().any(stmt_reads_parser_err)
                || else_s.iter().any(stmt_reads_parser_err)
        }
        _ => false,
    }
}
