//! The `ebpf_model` target extension (§6.1.3): an end-host filter target.
//!
//! ebpf_model-specific behaviors (Appendix A.1):
//! * only two blocks — a parser and a `filter` control; no deparser;
//! * the filter's `accept` out-parameter decides the verdict: `false` drops
//!   the packet;
//! * because there is no deparser, deparsing is implicit: every valid header
//!   is re-emitted in declaration order, followed by the unparsed payload
//!   ("extract or advance have no effect on the size of the outgoing
//!   packet" — the original packet passes through);
//! * a failing `extract`/`advance` drops the packet in the kernel.

use p4testgen_core::state::{ExecState, FinishReason, SymOutput};
use p4testgen_core::sym::Sym;
use p4testgen_core::target::{ExecCtx, ExtArg, ExternOutcome, PipeStep, Target, UninitPolicy};
use p4t_frontend::types::Type;
use p4t_ir::{IrBlock, IrProgram, Path};

/// The ebpf_model target.
#[derive(Clone, Default)]
pub struct EbpfModel;

impl EbpfModel {
    pub fn new() -> Self {
        EbpfModel
    }
}

/// Architecture prelude for ebpf_model.
pub const EBPF_PRELUDE: &str = r#"
extern CounterArray {
    CounterArray(bit<32> max_index, bool sparse);
    void increment(in bit<32> index);
    void add(in bit<32> index, in bit<32> value);
}
extern array_table {
    array_table(bit<32> size);
}
extern hash_table {
    hash_table(bit<32> size);
}
"#;

impl Target for EbpfModel {
    fn name(&self) -> &str {
        "ebpf_model"
    }

    fn prelude(&self) -> &str {
        EBPF_PRELUDE
    }

    fn pipeline(&self, prog: &IrProgram) -> Result<Vec<PipeStep>, String> {
        if prog.package != "ebpfFilter" {
            return Err(format!(
                "ebpf_model expects an ebpfFilter package, got '{}'",
                prog.package
            ));
        }
        let args = &prog.package_args;
        if args.len() != 2 {
            return Err(format!("ebpfFilter expects 2 blocks, got {}", args.len()));
        }
        Ok(vec![
            PipeStep::Block {
                block: args[0].clone(),
                bindings: crate::v1model::bind_params(prog, &args[0], &["hdr"])?,
            },
            PipeStep::Block {
                block: args[1].clone(),
                bindings: crate::v1model::bind_params(prog, &args[1], &["hdr", "accept"])?,
            },
            PipeStep::Hook("verdict".to_string()),
        ])
    }

    fn init(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        let accept = ctx.constant(1, 0);
        st.write_global("accept", accept);
        let port = ctx.constant(9, 0); // eBPF has no port concept; use 0.
        st.write_global("$input_port", port);
    }

    fn uninit_policy(&self) -> UninitPolicy {
        UninitPolicy::Taint
    }

    fn hook(&self, name: &str, ctx: &mut ExecCtx, st: &mut ExecState) {
        match name {
            "parser_reject" => {
                // A failing extract drops the packet in the kernel.
                st.log("ebpf: parser error -> drop".to_string());
                st.finish(FinishReason::Dropped);
            }
            "verdict" => {
                let accept = st
                    .read_global("accept")
                    .cloned()
                    .unwrap_or_else(|| ctx.constant(1, 0));
                match ctx.pool.as_const(accept.term) {
                    Some(v) if v.is_true() => self.accept_packet(ctx, st),
                    Some(_) => {
                        st.log("ebpf: filter rejected packet".to_string());
                        st.finish(FinishReason::Dropped);
                    }
                    None => {
                        let mut acc = ctx.fork(st, accept.term);
                        self.accept_packet(ctx, &mut acc);
                        acc.finish(FinishReason::Completed);
                        ctx.forks.push(acc);
                        let na = ctx.pool.not(accept.term);
                        let mut rej = ctx.fork(st, na);
                        rej.finish(FinishReason::Dropped);
                        ctx.forks.push(rej);
                        st.finish(FinishReason::Infeasible);
                    }
                }
            }
            other => {
                st.log(format!("ebpf: unknown hook '{other}' ignored"));
            }
        }
    }

    fn extern_call(
        &self,
        name: &str,
        instance: Option<&str>,
        _args: &[ExtArg],
        _ctx: &mut ExecCtx,
        st: &mut ExecState,
    ) -> ExternOutcome {
        match name {
            "increment" | "add" => {
                st.log(format!("ebpf counter {:?} {name}", instance));
                ExternOutcome::Handled
            }
            _ => ExternOutcome::Unknown,
        }
    }

    fn finalize(&self, _ctx: &mut ExecCtx, _st: &mut ExecState) {
        // The verdict hook already produced the output or the drop.
    }

    fn port_width(&self) -> u32 {
        9
    }
}

impl EbpfModel {
    /// Implicit deparsing: emit every valid header of the parsed header
    /// struct in declaration order, then the unparsed payload (§6.1.3).
    fn accept_packet(&self, ctx: &mut ExecCtx, st: &mut ExecState) {
        let prog = ctx.prog;
        // Find the parser's header struct type from its out parameter.
        let header_ty = prog.blocks.values().find_map(|b| match b {
            IrBlock::Parser(p) => p.params.iter().find_map(|prm| match &prm.ty {
                Type::Struct(s) => Some(s.clone()),
                _ => None,
            }),
            _ => None,
        });
        let mut parts: Vec<Sym> = Vec::new();
        if let Some(ty) = header_ty {
            collect_valid_headers(ctx, st, &ty, &Path::new("hdr"), &mut parts);
        }
        // Followed by the remaining live packet (the unparsed payload).
        if let Some(rest) = st.packet.live_value(ctx.pool) {
            parts.push(rest);
        }
        let payload = parts.into_iter().reduce(|a, b| {
            let t = ctx.pool.concat(a.term, b.term);
            Sym::with_taint(t, a.taint.concat(&b.taint))
        });
        let port = ctx.constant(9, 0);
        st.outputs.push(SymOutput { port, payload });
        st.log("ebpf: filter accepted packet".to_string());
    }
}

/// Concatenate the fields of every *concretely valid* header below a struct
/// type. Symbolically valid headers would need a fork; the filter model only
/// emits headers whose validity is decided by the path already taken.
fn collect_valid_headers(
    ctx: &mut ExecCtx,
    st: &mut ExecState,
    ty_name: &str,
    base: &Path,
    out: &mut Vec<Sym>,
) {
    let prog = ctx.prog;
    let Some(fields) = prog.env.fields_of(ty_name) else {
        return;
    };
    let fields: Vec<_> = fields.to_vec();
    for f in fields {
        let fp = base.child(&f.name);
        match &f.ty {
            Type::Header(hn) => {
                let valid = st
                    .read_global(fp.valid().as_str())
                    .and_then(|s| ctx.pool.as_const(s.term))
                    .map(|v| v.is_true())
                    .unwrap_or(false);
                if valid {
                    let mut header_bits: Option<Sym> = None;
                    let hfields: Vec<_> = prog.env.fields_of(hn).unwrap_or(&[]).to_vec();
                    for hf in hfields {
                        let w = hf.ty.width(&prog.env).unwrap_or(0);
                        if w == 0 {
                            continue;
                        }
                        let v = st
                            .read_global(fp.child(&hf.name).as_str())
                            .cloned()
                            .unwrap_or_else(|| ctx.constant(w, 0));
                        header_bits = Some(match header_bits {
                            None => v,
                            Some(a) => {
                                let t = ctx.pool.concat(a.term, v.term);
                                Sym::with_taint(t, a.taint.concat(&v.taint))
                            }
                        });
                    }
                    if let Some(h) = header_bits {
                        out.push(h);
                    }
                }
            }
            Type::Struct(sn) => collect_valid_headers(ctx, st, sn, &fp, out),
            _ => {}
        }
    }
}
