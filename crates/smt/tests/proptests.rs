//! Property-based tests for the SMT substrate.
//!
//! Three layers of cross-validation:
//! 1. `BitVec` arithmetic against native `u128` reference semantics;
//! 2. term-pool constant folding against `eval` (the reference evaluator);
//! 3. the bit-blaster + SAT solver against `eval`: any model returned for a
//!    satisfiable random formula must actually satisfy it.

use proptest::prelude::*;
use p4t_smt::{eval, Assignment, BitVec, CheckResult, Solver, TermId, TermPool};

fn mask(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #[test]
    fn bitvec_add_matches_u128(a: u128, b: u128, w in 1u32..=128) {
        let av = BitVec::from_u128(w as usize, a);
        let bv = BitVec::from_u128(w as usize, b);
        let expect = (a & mask(w)).wrapping_add(b & mask(w)) & mask(w);
        prop_assert_eq!(av.add(&bv).to_u128(), Some(expect));
    }

    #[test]
    fn bitvec_sub_matches_u128(a: u128, b: u128, w in 1u32..=128) {
        let av = BitVec::from_u128(w as usize, a);
        let bv = BitVec::from_u128(w as usize, b);
        let expect = (a & mask(w)).wrapping_sub(b & mask(w)) & mask(w);
        prop_assert_eq!(av.sub(&bv).to_u128(), Some(expect));
    }

    #[test]
    fn bitvec_mul_matches_u128(a: u128, b: u128, w in 1u32..=128) {
        let av = BitVec::from_u128(w as usize, a);
        let bv = BitVec::from_u128(w as usize, b);
        let expect = (a & mask(w)).wrapping_mul(b & mask(w)) & mask(w);
        prop_assert_eq!(av.mul(&bv).to_u128(), Some(expect));
    }

    #[test]
    fn bitvec_div_rem_invariant(a: u128, b: u128, w in 1u32..=64) {
        // a == b * (a/b) + (a%b) when b != 0 (all mod 2^w).
        let am = a & mask(w);
        let bm = b & mask(w);
        prop_assume!(bm != 0);
        let av = BitVec::from_u128(w as usize, am);
        let bv = BitVec::from_u128(w as usize, bm);
        let q = av.udiv(&bv);
        let r = av.urem(&bv);
        let back = bv.mul(&q).add(&r);
        prop_assert_eq!(back.to_u128(), Some(am));
        prop_assert!(r.ult(&bv));
    }

    #[test]
    fn bitvec_shifts_match_u128(a: u128, sh in 0u32..140, w in 1u32..=128) {
        let av = BitVec::from_u128(w as usize, a);
        let expect_l = if sh >= w { 0 } else { ((a & mask(w)) << sh) & mask(w) };
        let expect_r = if sh >= w { 0 } else { (a & mask(w)) >> sh };
        prop_assert_eq!(av.shl_const(sh as usize).to_u128(), Some(expect_l));
        prop_assert_eq!(av.lshr_const(sh as usize).to_u128(), Some(expect_r));
    }

    #[test]
    fn bitvec_concat_extract_roundtrip(a: u128, b: u128, wa in 1u32..=64, wb in 1u32..=64) {
        let av = BitVec::from_u128(wa as usize, a);
        let bv = BitVec::from_u128(wb as usize, b);
        let c = av.concat(&bv);
        prop_assert_eq!(c.width(), (wa + wb) as usize);
        prop_assert_eq!(c.extract((wa + wb - 1) as usize, wb as usize), av);
        prop_assert_eq!(c.extract((wb - 1) as usize, 0), bv);
    }

    #[test]
    fn bitvec_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let v = BitVec::from_bytes_be(&bytes);
        prop_assert_eq!(v.to_bytes_be(), bytes);
    }

    #[test]
    fn bitvec_comparisons_match_u128(a: u128, b: u128, w in 1u32..=128) {
        let am = a & mask(w);
        let bm = b & mask(w);
        let av = BitVec::from_u128(w as usize, am);
        let bv = BitVec::from_u128(w as usize, bm);
        prop_assert_eq!(av.ult(&bv), am < bm);
        prop_assert_eq!(av.ule(&bv), am <= bm);
    }

    #[test]
    fn bitvec_not_involution(a: u128, w in 1u32..=128) {
        let v = BitVec::from_u128(w as usize, a);
        prop_assert_eq!(v.not().not(), v);
    }
}

// ---- random term formulas: folding vs eval vs solver ----------------------

/// A tiny expression AST we can generate and translate both to terms and to
/// a reference computation.
#[derive(Clone, Debug)]
enum E {
    Var(usize),
    Const(u64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Not(Box<E>),
    Mul(Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(E::Var),
        any::<u64>().prop_map(E::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

const W: u32 = 16;

fn to_term(e: &E, pool: &TermPool, vars: &[TermId]) -> TermId {
    match e {
        E::Var(i) => vars[i % vars.len()],
        E::Const(c) => pool.const_u128(W as usize, *c as u128 & mask(W)),
        E::Add(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.add(x, y)
        }
        E::Sub(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.sub(x, y)
        }
        E::And(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.and(x, y)
        }
        E::Or(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.or(x, y)
        }
        E::Xor(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.xor(x, y)
        }
        E::Mul(a, b) => {
            let (x, y) = (to_term(a, pool, vars), to_term(b, pool, vars));
            pool.mul(x, y)
        }
        E::Not(a) => {
            let x = to_term(a, pool, vars);
            pool.not(x)
        }
    }
}

fn reference(e: &E, env: &[u64; 3]) -> u64 {
    let m = mask(W) as u64;
    match e {
        E::Var(i) => env[i % 3] & m,
        E::Const(c) => c & m,
        E::Add(a, b) => reference(a, env).wrapping_add(reference(b, env)) & m,
        E::Sub(a, b) => reference(a, env).wrapping_sub(reference(b, env)) & m,
        E::And(a, b) => reference(a, env) & reference(b, env),
        E::Or(a, b) => reference(a, env) | reference(b, env),
        E::Xor(a, b) => reference(a, env) ^ reference(b, env),
        E::Mul(a, b) => reference(a, env).wrapping_mul(reference(b, env)) & m,
        E::Not(a) => !reference(a, env) & m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// eval() must agree with the independent reference implementation.
    #[test]
    fn term_eval_matches_reference(e in arb_expr(), env: [u64; 3]) {
        let pool = TermPool::new();
        let vars: Vec<TermId> = (0..3).map(|i| pool.fresh_var(format!("v{i}"), W as usize)).collect();
        let t = to_term(&e, &pool, &vars);
        let mut asg = Assignment::new();
        for (i, &v) in vars.iter().enumerate() {
            let p4t_smt::Node::Var(vid) = *pool.node(v) else { unreachable!() };
            asg.set(vid, BitVec::from_u128(W as usize, env[i] as u128 & mask(W)));
        }
        let got = eval(&pool, &asg, t).to_u128().unwrap() as u64;
        prop_assert_eq!(got, reference(&e, &env));
    }

    /// Any model the solver returns for `expr == reference_value` must make
    /// eval agree — cross-validating blaster, SAT solver, and model
    /// extraction against the reference evaluator.
    #[test]
    fn solver_models_satisfy_formula(e in arb_expr(), env: [u64; 3]) {
        let pool = TermPool::new();
        let vars: Vec<TermId> = (0..3).map(|i| pool.fresh_var(format!("v{i}"), W as usize)).collect();
        let t = to_term(&e, &pool, &vars);
        // The formula expr == reference(env) is satisfiable by construction
        // (env itself is a witness).
        let rv = reference(&e, &env);
        let c = pool.const_u128(W as usize, rv as u128);
        let goal = pool.eq(t, c);
        let mut solver = Solver::new();
        solver.assert(&pool, goal);
        prop_assert_eq!(solver.check(&pool), CheckResult::Sat);
        let model = solver.model_of_assertions(&pool);
        prop_assert!(eval(&pool, &model, goal).is_true(),
            "model does not satisfy the formula it was produced for");
    }

    /// Asserting expr == v1 and expr == v2 for v1 != v2 over the *same*
    /// variables must be Unsat when expr is a function of its inputs only.
    #[test]
    fn solver_detects_contradiction(a: u64, b: u64, w in 1u32..=32) {
        prop_assume!((a & mask(w) as u64) != (b & mask(w) as u64));
        let pool = TermPool::new();
        let x = pool.fresh_var("x", w as usize);
        let ca = pool.const_u128(w as usize, a as u128 & mask(w));
        let cb = pool.const_u128(w as usize, b as u128 & mask(w));
        let e1 = pool.eq(x, ca);
        let e2 = pool.eq(x, cb);
        let mut solver = Solver::new();
        solver.assert(&pool, e1);
        solver.assert(&pool, e2);
        prop_assert_eq!(solver.check(&pool), CheckResult::Unsat);
    }
}
