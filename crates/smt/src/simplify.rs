//! Term-level simplification of constraint conjunctions, run in front of
//! the bit-blaster by the incremental solver facade.
// Same panic-freedom bar as the frontend: this runs on every feasibility
// check, so recoverable handling only (CI runs clippy with these denies).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//!
//! The pool's constructors already constant-fold individual terms as they
//! are built; what they cannot see is the *conjunction* a feasibility check
//! carries. This pass exploits it:
//!
//! * **Equality propagation along the trail** — a constraint of the form
//!   `x == c` (or a bare 1-bit `x` / `!x`, or `x == y` between variables)
//!   binds the variable, and every other constraint is rewritten under the
//!   binding. Substituted constants then cascade through the constructors'
//!   constant folding, frequently collapsing whole branch conditions.
//! * **Bit-range propagation** — `x[hi:lo] == c` binds just that slice of
//!   `x`, and any extract *covered* by a bound range rewrites to the
//!   corresponding slice of the constant. Parser select keys are exactly
//!   such slices of the packet variable, so conflicting select arms decide
//!   unsat here with no SAT call. Unlike a whole-variable binding, a range
//!   binding does not capture every occurrence of `x`, so its defining
//!   equality is *kept* in the residue (dropping it would unsoundly weaken
//!   the conjunction — `{x[7:0] == 5, x < 3}` must stay unsat).
//! * **Fast verdicts** — a constraint that folds to constant false decides
//!   the whole conjunction Unsat with no SAT call; constraints that fold to
//!   constant true (including the spent defining equalities) are dropped.
//! * **Structural hashing** — rewritten terms are interned in the same
//!   hash-consed pool, so the blaster's per-term cache is keyed on the
//!   *simplified* structure: syntactically different constraints that
//!   simplify to the same term share one CNF encoding.
//!
//! Soundness caveat: dropping a spent defining equality `x == c` preserves
//! *satisfiability* of the conjunction, not its models (`x` becomes
//! unconstrained). The pass is therefore only used for verdict-only
//! feasibility checks — never in front of a check whose model will be read.

use crate::term::{BinOp, Node, TermId, TermPool, VarId};
use std::collections::{HashMap, HashSet};

/// Bound on binding-collection/rewrite rounds. Each round can expose new
/// bindings (`y == x + 1` becomes `y == 6` once `x` is bound to `5`), so we
/// iterate — but packet-program trails settle in one or two rounds, and the
/// bound keeps the pass linear in practice.
const MAX_ROUNDS: usize = 4;

/// Counters from [`simplify_conjunction`], accumulated per solver.
#[derive(Default, Clone, Debug)]
pub struct SimplifyStats {
    /// Term nodes whose rewrite produced a structurally different term.
    pub rewrites: u64,
    /// Variable occurrences replaced via a trail equality binding.
    pub substitutions: u64,
    /// Constraints dropped because they simplified to constant true.
    pub dropped_true: u64,
    /// Conjunctions decided unsat by simplification alone (no SAT call).
    pub fast_unsat: u64,
}

impl SimplifyStats {
    pub fn absorb(&mut self, other: &SimplifyStats) {
        self.rewrites += other.rewrites;
        self.substitutions += other.substitutions;
        self.dropped_true += other.dropped_true;
        self.fast_unsat += other.fast_unsat;
    }
}

/// Outcome of simplifying a constraint conjunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Simplified {
    /// Equisatisfiable residue, in first-occurrence order (possibly empty,
    /// meaning the conjunction is trivially satisfiable).
    Constraints(Vec<TermId>),
    /// Some constraint folded to constant false: the conjunction is unsat.
    False,
}

/// Simplify a conjunction of 1-bit constraints (see the module docs). The
/// result is equisatisfiable with the input; it is *not* model-preserving.
/// Deterministic: a pure function of the constraint sequence.
pub fn simplify_conjunction(
    pool: &TermPool,
    constraints: &[TermId],
    stats: &mut SimplifyStats,
) -> Simplified {
    let mut cur: Vec<TermId> = constraints.to_vec();
    let mut bindings = Bindings::default();
    for round in 0..MAX_ROUNDS {
        let grew = collect_bindings(pool, &cur, &mut bindings);
        if !grew && round > 0 {
            break;
        }
        if bindings.whole.is_empty() && bindings.ranges.is_empty() {
            // Nothing to substitute; constructors already folded each term,
            // so only the cheap scan below (false / true / duplicate) can
            // still change anything.
            break;
        }
        let mut memo: HashMap<TermId, TermId> = HashMap::new();
        let mut next = Vec::with_capacity(cur.len());
        for &c in &cur {
            if bindings.definers.contains(&c) {
                // Range-defining equality: pass through verbatim (see the
                // module docs — a range binding substitutes only covered
                // extracts, so the definition itself must survive).
                next.push(c);
                continue;
            }
            let r = rewrite(pool, &bindings, &mut memo, stats, c);
            if pool.is_const_false(r) {
                stats.fast_unsat += 1;
                return Simplified::False;
            }
            next.push(r);
        }
        cur = next;
        if !grew {
            break;
        }
    }
    // Final scan: drop constant-true constraints and duplicates, keeping
    // first-occurrence order; detect constant false.
    let mut seen: HashSet<TermId> = HashSet::with_capacity(cur.len());
    let mut out = Vec::with_capacity(cur.len());
    for &c in &cur {
        if pool.is_const_false(c) {
            stats.fast_unsat += 1;
            return Simplified::False;
        }
        if pool.is_const_true(c) {
            stats.dropped_true += 1;
            continue;
        }
        if seen.insert(c) {
            out.push(c);
        }
    }
    Simplified::Constraints(out)
}

/// One bound bit-range of a variable: `var[hi:lo] == value` (a constant).
#[derive(Clone, Copy, Debug)]
struct RangeBind {
    hi: u32,
    lo: u32,
    value: TermId,
}

/// Bindings harvested from a conjunction.
#[derive(Default)]
struct Bindings {
    /// Whole-variable bindings (`x -> const`, `x -> older var`).
    whole: HashMap<VarId, TermId>,
    /// Bit-range bindings per variable, in first-recorded order. Lookup
    /// picks the first *covering* range, so earlier constraints win.
    ranges: HashMap<VarId, Vec<RangeBind>>,
    /// Constraints that defined a recorded range binding. Kept verbatim in
    /// the residue: a range substitution is not a full capture of the
    /// variable, so the definition must remain asserted.
    definers: HashSet<TermId>,
}

impl Bindings {
    /// First recorded range of `v` that covers `[lo, hi]`, if any.
    fn range_covering(&self, v: VarId, hi: u32, lo: u32) -> Option<RangeBind> {
        self.ranges
            .get(&v)?
            .iter()
            .find(|r| r.lo <= lo && hi <= r.hi)
            .copied()
    }
}

/// Harvest variable bindings from the constraint list. Binding sources, in
/// constraint order with first-binding-wins semantics:
///
/// * a bare 1-bit variable `x` (binds `x -> 1`) or its negation `!x`
///   (binds `x -> 0`);
/// * `x == <const>` in either operand order;
/// * `x == y` between two variables of the same width — the *younger*
///   variable (higher [`VarId`]) binds to the older one, so binding chains
///   strictly decrease and can never cycle;
/// * `x[hi:lo] == <const>` in either operand order — a bit-range binding
///   (parser select keys). The defining constraint is recorded so the
///   rewrite pass keeps it in the residue.
///
/// Returns whether any new binding was added.
fn collect_bindings(pool: &TermPool, constraints: &[TermId], bindings: &mut Bindings) -> bool {
    let as_var = |t: TermId| match *pool.node(t) {
        Node::Var(v) => Some(v),
        _ => None,
    };
    // `t` as a constant-bound extract of a variable: (var, hi, lo).
    let as_var_slice = |t: TermId| match *pool.node(t) {
        Node::Extract { hi, lo, arg } => as_var(arg).map(|v| (v, hi, lo)),
        _ => None,
    };
    let mut grew = false;
    for &c in constraints {
        // Bit-range bindings first: `Extract(x, hi, lo) == const`.
        if let Node::Bin(BinOp::Eq, a, b) = *pool.node(c) {
            let slice_const = match (as_var_slice(a), as_var_slice(b)) {
                (Some(s), None) if pool.as_const(b).is_some() => Some((s, b)),
                (None, Some(s)) if pool.as_const(a).is_some() => Some((s, a)),
                _ => None,
            };
            if let Some(((v, hi, lo), value)) = slice_const {
                // Whole and range bindings are mutually exclusive per
                // variable: a whole binding's definer is dropped after
                // substitution, which is only sound if *every* occurrence
                // of the variable was substituted — and range definers are
                // passed through unrewritten. If `v` is already
                // whole-bound, skip the range; the rewrite pass folds this
                // constraint through the whole binding instead.
                if bindings.whole.contains_key(&v) {
                    continue;
                }
                let ranges = bindings.ranges.entry(v).or_default();
                // First binding of an exact range wins; a later conflicting
                // equality on the same slice is *not* a definer, so the
                // rewrite pass folds it against the recorded constant
                // (`c1 == c2` -> false -> fast unsat).
                if !ranges.iter().any(|r| r.hi == hi && r.lo == lo) {
                    ranges.push(RangeBind { hi, lo, value });
                    bindings.definers.insert(c);
                    grew = true;
                }
                continue;
            }
        }
        let (var, target) = match *pool.node(c) {
            Node::Var(v) => (Some(v), pool.mk_true()),
            Node::Not(a) => (as_var(a), pool.mk_false()),
            Node::Bin(BinOp::Eq, a, b) => match (as_var(a), as_var(b)) {
                (Some(va), Some(vb)) if va != vb => {
                    // Younger binds to older; `a`/`b` are the interned Var
                    // terms themselves.
                    if va > vb {
                        (Some(va), b)
                    } else {
                        (Some(vb), a)
                    }
                }
                (Some(va), None) if pool.as_const(b).is_some() => (Some(va), b),
                (None, Some(vb)) if pool.as_const(a).is_some() => (Some(vb), a),
                _ => (None, c),
            },
            _ => (None, c),
        };
        if let Some(v) = var {
            // Mirror of the exclusion above: once `v` has range bindings,
            // its range definers sit unrewritten in the residue, so a
            // whole binding could not soundly drop its own definer. Leave
            // the equality in place for the SAT solver.
            if bindings.ranges.contains_key(&v) {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = bindings.whole.entry(v) {
                e.insert(target);
                grew = true;
            }
        }
    }
    grew
}

/// Follow a binding chain (`z -> y -> x -> 5`) to its end. Chains strictly
/// decrease in [`VarId`] (see [`collect_bindings`]), so the walk terminates;
/// the explicit bound is belt-and-braces.
fn resolve(pool: &TermPool, bindings: &Bindings, v: VarId) -> Option<TermId> {
    let mut cur = *bindings.whole.get(&v)?;
    for _ in 0..bindings.whole.len() {
        match *pool.node(cur) {
            Node::Var(w) => match bindings.whole.get(&w) {
                Some(&next) if next != cur => cur = next,
                _ => break,
            },
            _ => break,
        }
    }
    Some(cur)
}

/// Rewrite one term under the bindings, memoized over the DAG. Rebuilding
/// through the pool constructors re-runs their constant folding, so a
/// substituted constant cascades upward.
fn rewrite(
    pool: &TermPool,
    bindings: &Bindings,
    memo: &mut HashMap<TermId, TermId>,
    stats: &mut SimplifyStats,
    t: TermId,
) -> TermId {
    if let Some(&r) = memo.get(&t) {
        return r;
    }
    let node = pool.node(t).clone();
    let out = match node {
        Node::Const(_) => t,
        Node::Var(v) => match resolve(pool, bindings, v) {
            Some(r) if r != t => {
                stats.substitutions += 1;
                r
            }
            _ => t,
        },
        Node::Not(a) => {
            let ra = rewrite(pool, bindings, memo, stats, a);
            if ra == a {
                t
            } else {
                pool.not(ra)
            }
        }
        Node::Neg(a) => {
            let ra = rewrite(pool, bindings, memo, stats, a);
            if ra == a {
                t
            } else {
                pool.neg(ra)
            }
        }
        Node::Extract { hi, lo, arg } => {
            let ra = rewrite(pool, bindings, memo, stats, arg);
            let range = match *pool.node(ra) {
                Node::Var(v) => bindings.range_covering(v, hi, lo),
                _ => None,
            };
            if let Some(r) = range {
                // Covered slice of a range-bound variable: take the
                // matching slice of the bound constant (the constructor
                // folds it to a constant immediately).
                stats.substitutions += 1;
                pool.extract((hi - r.lo) as usize, (lo - r.lo) as usize, r.value)
            } else if ra == arg {
                t
            } else {
                pool.extract(hi as usize, lo as usize, ra)
            }
        }
        Node::Ite(c, a, b) => {
            let rc = rewrite(pool, bindings, memo, stats, c);
            let ra = rewrite(pool, bindings, memo, stats, a);
            let rb = rewrite(pool, bindings, memo, stats, b);
            if rc == c && ra == a && rb == b {
                t
            } else {
                pool.ite(rc, ra, rb)
            }
        }
        Node::Bin(op, a, b) => {
            let ra = rewrite(pool, bindings, memo, stats, a);
            let rb = rewrite(pool, bindings, memo, stats, b);
            if ra == a && rb == b {
                t
            } else {
                pool.bin(op, ra, rb)
            }
        }
    };
    if out != t {
        stats.rewrites += 1;
    }
    memo.insert(t, out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use crate::eval::{eval, Assignment};

    fn simplify(pool: &TermPool, cs: &[TermId]) -> (Simplified, SimplifyStats) {
        let mut stats = SimplifyStats::default();
        let r = simplify_conjunction(pool, cs, &mut stats);
        (r, stats)
    }

    #[test]
    fn empty_conjunction_is_trivially_sat() {
        let p = TermPool::new();
        let (r, _) = simplify(&p, &[]);
        assert_eq!(r, Simplified::Constraints(vec![]));
    }

    #[test]
    fn const_substitution_folds_dependent_constraint() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let five = p.const_u128(8, 5);
        let bind = p.eq(x, five);
        // x + 1 < 3 is false once x == 5.
        let one = p.const_u128(8, 1);
        let three = p.const_u128(8, 3);
        let dep = p.ult(p.add(x, one), three);
        let (r, stats) = simplify(&p, &[bind, dep]);
        assert_eq!(r, Simplified::False);
        assert!(stats.fast_unsat > 0);
        assert!(stats.substitutions > 0);
    }

    #[test]
    fn satisfied_dependents_leave_empty_residue() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let five = p.const_u128(8, 5);
        let bind = p.eq(x, five);
        let ten = p.const_u128(8, 10);
        let dep = p.ult(x, ten); // 5 < 10: true under the binding
        let (r, stats) = simplify(&p, &[bind, dep]);
        assert_eq!(r, Simplified::Constraints(vec![]));
        // Both the defining equality and the satisfied dependent fold away.
        assert_eq!(stats.dropped_true, 2);
    }

    #[test]
    fn var_var_chain_resolves_through_rounds() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let z = p.fresh_var("z", 8);
        let c7 = p.const_u128(8, 7);
        // z == y, y == x, x == 7, z != 7 — unsat, but only visible after
        // chasing the chain.
        let cs = [p.eq(z, y), p.eq(y, x), p.eq(x, c7), p.neq(z, c7)];
        let (r, _) = simplify(&p, &cs);
        assert_eq!(r, Simplified::False);
    }

    #[test]
    fn boolean_literal_bindings() {
        let p = TermPool::new();
        let a = p.fresh_var("a", 1);
        let b = p.fresh_var("b", 1);
        // a asserted true, b asserted false, and a constraint forcing a == b.
        let cs = [a, p.not(b), p.eq(a, b)];
        let (r, _) = simplify(&p, &cs);
        assert_eq!(r, Simplified::False);
    }

    #[test]
    fn range_binding_folds_conflicting_select_keys() {
        // Two parser-select-style equalities over the same packet slice
        // with different constants must decide unsat with no SAT call.
        let p = TermPool::new();
        let pkt = p.fresh_var("pkt", 32);
        let key = p.extract(15, 8, pkt);
        let arm1 = p.eq(key, p.const_u128(8, 0x11));
        let arm2 = p.eq(key, p.const_u128(8, 0x22));
        let (r, stats) = simplify(&p, &[arm1, arm2]);
        assert_eq!(r, Simplified::False);
        assert!(stats.fast_unsat > 0);
    }

    #[test]
    fn range_binding_substitutes_covered_slices() {
        // Binding pkt[15:8] == 0xAB makes the narrower pkt[11:8] slice a
        // known constant (0xB), folding a dependent comparison.
        let p = TermPool::new();
        let pkt = p.fresh_var("pkt", 32);
        let bind = p.eq(p.extract(15, 8, pkt), p.const_u128(8, 0xAB));
        let dep = p.ult(p.extract(11, 8, pkt), p.const_u128(4, 5));
        let (r, stats) = simplify(&p, &[bind, dep]);
        // 0xB < 5 is false.
        assert_eq!(r, Simplified::False);
        assert!(stats.substitutions > 0);
    }

    #[test]
    fn range_definers_are_retained_in_the_residue() {
        // A range binding captures only covered extracts, not every
        // occurrence of the variable — so the defining equality must stay.
        // Dropping it would make {x[7:0] == 5, x < 3} satisfiable.
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let def = p.eq(p.extract(7, 0, x), p.const_u128(8, 5));
        let dep = p.ult(x, p.const_u128(8, 3));
        let (r, _) = simplify(&p, &[def, dep]);
        match r {
            Simplified::Constraints(cs) => {
                assert!(cs.contains(&def), "range definer must survive: {cs:?}");
                assert!(cs.contains(&dep));
            }
            Simplified::False => {
                // Also acceptable: the conjunction *is* unsat, so deciding
                // it here would be sound — but never by dropping `def`.
            }
        }
    }

    #[test]
    fn range_bindings_preserve_satisfiability_exhaustively() {
        // Brute-force a 4-bit domain: the residue must be sat exactly when
        // the original conjunction is.
        let p = TermPool::new();
        let x = p.fresh_var("x", 4);
        let vx = match *p.node(x) {
            Node::Var(v) => v,
            _ => unreachable!(),
        };
        let hi2 = p.extract(3, 2, x);
        let lo2 = p.extract(1, 0, x);
        let cases: Vec<Vec<TermId>> = vec![
            // x[3:2]==2, x[1:0]==1, x==9: sat (x = 0b1001).
            vec![
                p.eq(hi2, p.const_u128(2, 2)),
                p.eq(lo2, p.const_u128(2, 1)),
                p.eq(x, p.const_u128(4, 9)),
            ],
            // Same slices but x==5: unsat.
            vec![
                p.eq(hi2, p.const_u128(2, 2)),
                p.eq(lo2, p.const_u128(2, 1)),
                p.eq(x, p.const_u128(4, 5)),
            ],
            // Slice binding plus a strict bound on the whole var.
            vec![p.eq(hi2, p.const_u128(2, 3)), p.ult(x, p.const_u128(4, 12))],
            // Overlapping ranges that agree.
            vec![
                p.eq(p.extract(3, 0, x), p.const_u128(4, 0b1010)),
                p.eq(hi2, p.const_u128(2, 0b10)),
            ],
            // Overlapping ranges that conflict.
            vec![
                p.eq(p.extract(3, 0, x), p.const_u128(4, 0b1010)),
                p.eq(hi2, p.const_u128(2, 0b01)),
            ],
        ];
        for cs in cases {
            let sat_of = |terms: &[TermId]| -> bool {
                (0..16u128).any(|v| {
                    let mut asg = Assignment::default();
                    asg.set(vx, BitVec::from_u128(4, v));
                    terms.iter().all(|&t| eval(&p, &asg, t).bit(0))
                })
            };
            let original_sat = sat_of(&cs);
            let (r, _) = simplify(&p, &cs);
            let residue_sat = match &r {
                Simplified::False => false,
                Simplified::Constraints(rs) => sat_of(rs),
            };
            assert_eq!(original_sat, residue_sat, "case {cs:?} -> {r:?}");
        }
    }

    #[test]
    fn conflicting_const_bindings_are_unsat() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let c1 = p.const_u128(8, 1);
        let c2 = p.const_u128(8, 2);
        let (r, _) = simplify(&p, &[p.eq(x, c1), p.eq(x, c2)]);
        assert_eq!(r, Simplified::False);
    }

    #[test]
    fn residue_is_deduplicated_in_first_occurrence_order() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let zero = p.const_u128(8, 0);
        let c1 = p.neq(x, zero);
        let c2 = p.neq(y, zero);
        let (r, _) = simplify(&p, &[c1, c2, c1, c2, c1]);
        assert_eq!(r, Simplified::Constraints(vec![c1, c2]));
    }

    /// Satisfiability (not models) must be preserved: anything satisfying
    /// the residue extends to a model of the original conjunction, and an
    /// unsat verdict must be genuine. Cross-check with the evaluator on a
    /// small exhaustive domain.
    #[test]
    fn equisatisfiable_on_exhaustive_domain() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 3);
        let y = p.fresh_var("y", 3);
        let c3 = p.const_u128(3, 3);
        let c5 = p.const_u128(3, 5);
        let sum = p.add(x, y);
        let cases: Vec<Vec<TermId>> = vec![
            vec![p.eq(x, c3), p.ult(y, x), p.eq(sum, c5)],
            vec![p.eq(x, y), p.ult(x, c3), p.neq(y, c3)],
            vec![p.eq(x, c3), p.eq(y, c5), p.ult(sum, c3)],
            vec![p.eq(x, c3), p.eq(x, c5)],
        ];
        for cs in cases {
            let brute_sat = 'search: {
                for xv in 0..8u128 {
                    for yv in 0..8u128 {
                        let mut asg = Assignment::new();
                        let Node::Var(vx) = *p.node(x) else { unreachable!() };
                        let Node::Var(vy) = *p.node(y) else { unreachable!() };
                        asg.set(vx, BitVec::from_u128(3, xv));
                        asg.set(vy, BitVec::from_u128(3, yv));
                        if cs.iter().all(|&c| eval(&p, &asg, c).is_true()) {
                            break 'search true;
                        }
                    }
                }
                false
            };
            let (r, _) = simplify(&p, &cs);
            match r {
                Simplified::False => assert!(!brute_sat, "simplifier declared sat case unsat"),
                Simplified::Constraints(res) => {
                    // A non-false residue must not have lost unsatisfiability:
                    // brute-force the residue too.
                    let res_sat = 'search: {
                        for xv in 0..8u128 {
                            for yv in 0..8u128 {
                                let mut asg = Assignment::new();
                                let Node::Var(vx) = *p.node(x) else { unreachable!() };
                                let Node::Var(vy) = *p.node(y) else { unreachable!() };
                                asg.set(vx, BitVec::from_u128(3, xv));
                                asg.set(vy, BitVec::from_u128(3, yv));
                                if res.iter().all(|&c| eval(&p, &asg, c).is_true()) {
                                    break 'search true;
                                }
                            }
                        }
                        false
                    };
                    assert_eq!(res_sat, brute_sat, "residue changed satisfiability");
                }
            }
        }
    }
}
