//! A CDCL SAT solver with two-watched literals, VSIDS branching, first-UIP
//! clause learning, phase saving, Luby restarts, and assumption-based
//! incremental solving.
//!
//! This plays the role Z3's SAT core plays in the paper: path constraints are
//! bit-blasted (see [`crate::blast`]) into CNF and solved here. The design
//! follows MiniSat's architecture, favoring clarity over heroic optimization —
//! the paper itself reports that constraint solving is under 10% of P4Testgen
//! CPU time (Fig. 7), a property our Fig. 7 harness re-measures.

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SatVar(pub u32);

/// A literal: variable plus sign. `Lit(2v)` is the positive literal of `v`,
/// `Lit(2v + 1)` the negative one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    pub fn positive(v: SatVar) -> Lit {
        Lit(v.0 << 1)
    }
    pub fn negative(v: SatVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }
    pub fn new(v: SatVar, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }
    /// True if this is the positive polarity.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    Sat,
    Unsat,
    /// The solve budget was exhausted before a verdict was reached. The
    /// solver state stays consistent: clauses (including those learnt during
    /// the attempt) persist, and a later solve may still answer Sat/Unsat.
    Unknown,
}

/// Resource budget for one [`SatSolver::solve_budgeted`] call. A zero field
/// means "unlimited" for that resource; [`SolveBudget::default`] is fully
/// unlimited. Budgets are what make the engine degrade gracefully instead of
/// stalling a whole run on one pathological path (the role timeouts play for
/// Z3 in the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum conflicts before giving up.
    pub conflicts: u64,
    /// Maximum decisions before giving up.
    pub decisions: u64,
    /// Maximum propagations before giving up.
    pub propagations: u64,
}

impl SolveBudget {
    /// No limits at all (the default).
    pub const UNLIMITED: SolveBudget = SolveBudget { conflicts: 0, decisions: 0, propagations: 0 };

    /// A conflict-count budget (the usual knob; conflicts dominate runtime
    /// on hard instances).
    pub fn conflicts(n: u64) -> SolveBudget {
        SolveBudget { conflicts: n, ..Self::UNLIMITED }
    }

    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }
}

/// One step of splitmix64 — used for deterministic phase scrambling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Value {
    True,
    False,
    Unassigned,
}

impl Value {
    fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }
    fn negate(self) -> Value {
        match self {
            Value::True => Value::False,
            Value::False => Value::True,
            Value::Unassigned => Value::Unassigned,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Activity for learnt-clause reduction.
    activity: f64,
    deleted: bool,
}

/// Upper bounds (inclusive) for the learnt-clause-size histogram in
/// [`SatStats`]; an implicit overflow bucket follows the last bound. The
/// bounds are part of the stats schema — the observability layer registers
/// its `p4testgen_sat_learnt_clause_size` histogram with these exact bounds
/// so pre-bucketed counts fold in without re-sampling.
pub const LEARNT_SIZE_BOUNDS: [u64; 8] = [1, 2, 3, 4, 8, 16, 32, 64];

/// Statistics from the solver, surfaced in the Fig. 7 harness and folded
/// into the metrics registry by the exploration engine.
#[derive(Default, Clone, Debug)]
pub struct SatStats {
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub learnt_clauses: u64,
    /// Total literals across all learnt clauses (mean size = literals/clauses).
    pub learnt_literals: u64,
    /// Non-cumulative learnt-clause-size histogram: cell `i` counts clauses
    /// with `len <= LEARNT_SIZE_BOUNDS[i]`; the final cell is the overflow.
    pub learnt_size_hist: [u64; LEARNT_SIZE_BOUNDS.len() + 1],
}

/// The solver. Variables are created with [`SatSolver::new_var`], clauses
/// added with [`SatSolver::add_clause`], and satisfiability queried with
/// [`SatSolver::solve`]. Clauses persist across solve calls; per-query
/// context is passed via assumptions, which is how the incremental push/pop
/// facade in [`crate::solver`] is built.
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>,
    assigns: Vec<Value>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<SatVar>,
    heap_pos: Vec<Option<u32>>,
    phases: Vec<bool>,
    // scratch for analyze
    seen: Vec<bool>,
    ok: bool,
    cla_inc: f64,
    pub stats: SatStats,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            phases: Vec::new(),
            seen: Vec::new(),
            ok: true,
            cla_inc: 1.0,
            stats: SatStats::default(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Whether the clause database is still consistent at level 0. Once a
    /// level-0 conflict latches this false, the instance is permanently
    /// Unsat — a warm incremental core observing this must rebuild.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Total clauses ever attached (original and learnt, including deleted
    /// slots). Stable indices: a cursor taken here is a high-water mark for
    /// [`SatSolver::learnt_lits`] scans.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Literals of clause `i` when it is a live learnt clause, else `None`.
    /// Learnt clauses are consequences of the clause database alone (conflict
    /// analysis resolves only over attached clauses; assumptions enter as
    /// decisions and are never resolved on), which is what makes exporting
    /// them to another solver over the same definitions sound.
    pub fn learnt_lits(&self, i: usize) -> Option<&[Lit]> {
        let c = self.clauses.get(i)?;
        (c.learnt && !c.deleted).then_some(c.lits.as_slice())
    }

    /// Create a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.assigns.len() as u32);
        self.assigns.push(Value::Unassigned);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phases.push(false);
        self.seen.push(false);
        self.heap_pos.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    fn value_lit(&self, l: Lit) -> Value {
        let v = self.assigns[l.var().0 as usize];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Model value of a variable after a `Sat` result.
    pub fn model_value(&self, v: SatVar) -> bool {
        self.assigns[v.0 as usize] == Value::True
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the formula became trivially unsat.
    /// If a model from a previous solve is still live, it is invalidated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if !self.ok {
            return false;
        }
        // Simplify: drop duplicate/false literals, detect tautology/satisfied.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.value_lit(l) {
                Value::True => return true, // already satisfied at level 0
                Value::False => continue,
                Value::Unassigned => {
                    if cl.contains(&l.negate()) {
                        return true; // tautology
                    }
                    if !cl.contains(&l) {
                        cl.push(l);
                    }
                }
            }
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(cl[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(cl, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[lits[0].negate().index()].push(cref);
        self.watches[lits[1].negate().index()].push(cref);
        self.clauses.push(Clause { lits, learnt, activity: 0.0, deleted: false });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), Value::Unassigned);
        let v = l.var().0 as usize;
        self.assigns[v] = Value::from_bool(l.is_positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.phases[v] = l.is_positive();
        self.trail.push(l);
    }

    /// Boolean constraint propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ~p need inspection. `p` was assigned true,
            // so clauses containing ~p may have lost a watch.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let cref = ws[i];
                let ci = cref.0 as usize;
                if self.clauses[ci].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize so lits[0] is the other watched literal.
                let false_lit = p.negate();
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Search for a replacement watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != Value::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(cref);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No replacement: clause is unit or conflicting.
                if self.value_lit(first) == Value::False {
                    // Conflict. Restore remaining watches and return.
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: SatVar) {
        let vi = v.0 as usize;
        self.activity[vi] += self.var_inc;
        if self.activity[vi] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.heap_update(v);
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        let ci = c.0 as usize;
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > RESCALE_LIMIT {
            for cl in &mut self.clauses {
                cl.activity *= 1.0 / RESCALE_LIMIT;
            }
            self.cla_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    /// Conflict analysis producing a first-UIP learnt clause and the level to
    /// backtrack to.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 reserved for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        loop {
            self.bump_clause(conflict);
            let lits: Vec<Lit> = self.clauses[conflict.0 as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(skip) {
                let qv = q.var().0 as usize;
                if self.seen[qv] || self.levels[qv] == 0 {
                    continue;
                }
                self.seen[qv] = true;
                self.bump_var(q.var());
                if self.levels[qv] == self.decision_level() {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            conflict = self.reasons[pv].expect("non-decision literal must have a reason");
        }
        learnt[0] = p.unwrap().negate();
        // Backtrack level: second-highest level in the learnt clause.
        let mut bt = 0u32;
        let mut max_i = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.levels[l.var().0 as usize];
            if lv > bt {
                bt = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        for &l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var();
                self.assigns[v.0 as usize] = Value::Unassigned;
                self.reasons[v.0 as usize] = None;
                if self.heap_pos[v.0 as usize].is_none() {
                    self.heap_insert(v);
                }
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.0 as usize] == Value::Unassigned {
                return Some(Lit::new(v, self.phases[v.0 as usize]));
            }
        }
        None
    }

    /// Reduce the learnt clause database, keeping the more active half.
    fn reduce_db(&mut self) {
        let mut learnts: Vec<(f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        learnts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let locked: Vec<bool> = learnts
            .iter()
            .map(|&(_, i)| {
                self.clauses[i]
                    .lits
                    .first()
                    .is_some_and(|l| self.reasons[l.var().0 as usize] == Some(ClauseRef(i as u32)))
            })
            .collect();
        for (k, &(_, i)) in learnts.iter().take(learnts.len() / 2).enumerate() {
            if !locked[k] {
                self.clauses[i].deleted = true;
            }
        }
    }

    /// Deterministically scramble the saved phases from `seed`. A zero seed
    /// is the identity (leaves phases untouched). Used by the facade's
    /// retry-with-rotated-seed path: a different initial polarity explores
    /// the search space in a different order, which often lets a retry of a
    /// budget-exhausted query finish within the same budget.
    pub fn seed_phases(&mut self, seed: u64) {
        if seed == 0 {
            return;
        }
        for (v, phase) in self.phases.iter_mut().enumerate() {
            *phase = splitmix64(seed ^ (v as u64)) & 1 == 1;
        }
    }

    /// Solve under the given assumptions. The assumptions hold only for this
    /// call; learned clauses persist.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_budgeted(assumptions, &SolveBudget::UNLIMITED)
    }

    /// Solve under the given assumptions and resource budget. Returns
    /// [`SatResult::Unknown`] when the budget is exhausted; the solver state
    /// remains consistent and reusable (budgets never mark the instance
    /// unsat, and clauses learnt during the attempt are kept).
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &SolveBudget) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let start_decisions = self.stats.decisions;
        let start_propagations = self.stats.propagations;
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 0u32;
        let mut restart_limit = 32 * luby(restart_idx);
        let mut max_learnts = (self.clauses.len() as f64 * 0.5).max(2000.0);
        loop {
            if !budget.is_unlimited() {
                let over = (budget.conflicts > 0
                    && self.stats.conflicts - start_conflicts >= budget.conflicts)
                    || (budget.decisions > 0
                        && self.stats.decisions - start_decisions >= budget.decisions)
                    || (budget.propagations > 0
                        && self.stats.propagations - start_propagations >= budget.propagations);
                if over {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Conflicts at or below the assumption prefix mean the
                // assumptions themselves are inconsistent with the clauses.
                let (learnt, bt_level) = self.analyze(conflict);
                let assumption_level = self.assumption_level(assumptions);
                if self.decision_level() <= assumption_level {
                    return SatResult::Unsat;
                }
                let bt = bt_level;
                self.backtrack(bt);
                self.stats.learnt_clauses += 1;
                self.stats.learnt_literals += learnt.len() as u64;
                let size = learnt.len() as u64;
                self.stats.learnt_size_hist
                    [LEARNT_SIZE_BOUNDS.partition_point(|&b| b < size)] += 1;
                if learnt.len() == 1 {
                    if self.decision_level() > 0 {
                        self.backtrack(0);
                        // Re-establish assumptions on the next loop iterations.
                    }
                    if self.value_lit(learnt[0]) == Value::False {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    if self.value_lit(learnt[0]) == Value::Unassigned {
                        self.enqueue(learnt[0], None);
                    }
                } else {
                    // The learnt clause is asserting at the backtrack level,
                    // unless we had to jump further back for assumptions.
                    let cref = self.attach_clause(learnt.clone(), true);
                    if self.value_lit(learnt[0]) == Value::Unassigned {
                        self.enqueue(learnt[0], Some(cref));
                    }
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if self.stats.learnt_clauses > max_learnts as u64 {
                    self.reduce_db();
                    max_learnts *= 1.3;
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    restart_limit = 32 * luby(restart_idx);
                    conflicts_since_restart = 0;
                    self.backtrack(0);
                    continue;
                }
                // Establish pending assumptions as decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        Value::True => {
                            // Already implied; open an empty decision level so
                            // each assumption still owns one level.
                            self.trail_lim.push(self.trail.len());
                        }
                        Value::False => return SatResult::Unsat,
                        Value::Unassigned => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    fn assumption_level(&self, assumptions: &[Lit]) -> u32 {
        (assumptions.len() as u32).min(self.decision_level())
    }

    // ---- activity-ordered heap ------------------------------------------

    fn heap_less(&self, a: SatVar, b: SatVar) -> bool {
        self.activity[a.0 as usize] > self.activity[b.0 as usize]
    }

    fn heap_insert(&mut self, v: SatVar) {
        let i = self.heap.len();
        self.heap.push(v);
        self.heap_pos[v.0 as usize] = Some(i as u32);
        self.heap_up(i);
    }

    fn heap_pop(&mut self) -> Option<SatVar> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.0 as usize] = None;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.0 as usize] = Some(0);
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_update(&mut self, v: SatVar) {
        if let Some(i) = self.heap_pos[v.0 as usize] {
            self.heap_up(i as usize);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].0 as usize] = Some(i as u32);
        self.heap_pos[self.heap[j].0 as usize] = Some(j as u32);
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < (i as u64 + 2) {
        k += 1;
    }
    if (1u64 << k) == i as u64 + 2 {
        return 1u64 << (k - 1);
    }
    luby(i + 1 - (1u32 << (k - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut SatSolver, n: usize) -> Vec<SatVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::positive(v)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.model_value(v));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::positive(v)]);
        s.add_clause(&[Lit::negative(v)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = SatSolver::new();
        let vs = lits(&mut s, 10);
        for w in vs.windows(2) {
            s.add_clause(&[Lit::negative(w[0]), Lit::positive(w[1])]);
        }
        s.add_clause(&[Lit::positive(vs[0])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &v in &vs {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = [[SatVar(0); 2]; 3];
        for row in &mut p {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::positive(row[0]), Lit::positive(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause(&[Lit::negative(p[i1][j]), Lit::negative(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::negative(a), Lit::positive(b)]);
        assert_eq!(s.solve(&[Lit::positive(a), Lit::negative(b)]), SatResult::Unsat);
        // The same formula is satisfiable without the assumptions.
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.solve(&[Lit::positive(a)]), SatResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let vs = lits(&mut s, 3);
        s.add_clause(&[Lit::positive(vs[0]), Lit::positive(vs[1])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        s.add_clause(&[Lit::negative(vs[0])]);
        s.add_clause(&[Lit::negative(vs[1])]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_consistency() {
        // Random 3-SAT at low clause density must be satisfiable and the
        // model must satisfy every clause.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let mut s = SatSolver::new();
            let n = 30;
            let vs = lits(&mut s, n);
            let mut cls = Vec::new();
            for _ in 0..60 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = vs[(next() % n as u64) as usize];
                        Lit::new(v, next() % 2 == 0)
                    })
                    .collect();
                cls.push(c.clone());
                s.add_clause(&c);
            }
            if s.solve(&[]) == SatResult::Sat {
                for c in &cls {
                    assert!(
                        c.iter().any(|l| s.model_value(l.var()) == l.is_positive()),
                        "model violates clause"
                    );
                }
            }
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    /// Pigeonhole n+1 pigeons into n holes (unsat, needs many conflicts).
    fn pigeonhole(s: &mut SatSolver, holes: usize) {
        let pigeons = holes + 1;
        let p: Vec<Vec<SatVar>> =
            (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&lits);
        }
        for i1 in 0..pigeons {
            for i2 in i1 + 1..pigeons {
                for (&a, &b) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[Lit::negative(a), Lit::negative(b)]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_returns_unknown_then_recovers() {
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 6);
        assert_eq!(
            s.solve_budgeted(&[], &SolveBudget::conflicts(3)),
            SatResult::Unknown,
            "PH(7,6) cannot be refuted in 3 conflicts"
        );
        // The same instance must still answer Unsat without a budget —
        // Unknown leaves the solver consistent, it does not poison it.
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn decision_budget_returns_unknown_on_easy_sat() {
        // 8 independent binary clauses need roughly one decision each; a
        // 3-decision budget cannot finish, but unlimited solving can.
        let mut s = SatSolver::new();
        for _ in 0..8 {
            let a = s.new_var();
            let b = s.new_var();
            s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        }
        let b = SolveBudget { decisions: 3, ..SolveBudget::UNLIMITED };
        assert_eq!(s.solve_budgeted(&[], &b), SatResult::Unknown);
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn unlimited_budget_matches_plain_solve() {
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 3);
        assert_eq!(s.solve_budgeted(&[], &SolveBudget::UNLIMITED), SatResult::Unsat);
    }

    #[test]
    fn seeded_phases_keep_models_valid() {
        // Phase scrambling may change *which* model is found, never whether
        // one is found; the found model must still satisfy every clause.
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut s = SatSolver::new();
            let vs = lits(&mut s, 12);
            let mut cls = Vec::new();
            for w in vs.windows(3) {
                let c = vec![Lit::positive(w[0]), Lit::negative(w[1]), Lit::positive(w[2])];
                s.add_clause(&c);
                cls.push(c);
            }
            s.seed_phases(seed);
            assert_eq!(s.solve(&[]), SatResult::Sat, "seed {seed}");
            for c in &cls {
                assert!(c.iter().any(|l| s.model_value(l.var()) == l.is_positive()));
            }
        }
    }

    #[test]
    fn xor_constraint_all_solutions_reachable() {
        // Encode a XOR b (CNF) and enumerate both solutions via blocking.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        s.add_clause(&[Lit::negative(a), Lit::negative(b)]);
        let mut solutions = Vec::new();
        while s.solve(&[]) == SatResult::Sat {
            let m = (s.model_value(a), s.model_value(b));
            solutions.push(m);
            s.add_clause(&[Lit::new(a, !m.0), Lit::new(b, !m.1)]);
        }
        solutions.sort();
        assert_eq!(solutions, vec![(false, true), (true, false)]);
    }
}
