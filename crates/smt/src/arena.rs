//! Append-only concurrent arena with lock-free reads.
//!
//! The parallel exploration engine shares one [`crate::TermPool`] across all
//! workers, so term lookups (`node`, `width`) sit on the hottest path of
//! every worker simultaneously. This arena makes those lookups wait-free:
//!
//! * Storage is a spine of geometrically growing chunks (1 Ki, 2 Ki, 4 Ki,
//!   ... slots). Chunks are allocated once and **never reallocated or
//!   moved**, so a `&T` handed out for an index stays valid for the arena's
//!   lifetime — exactly the stability guarantee `TermId` relies on.
//! * Appends are serialized by a mutex (interning already funnels writers
//!   through per-shard consing locks, so append contention is secondary).
//! * Reads take no lock at all: the length is published with a `Release`
//!   store after the slot is written, and readers `Acquire`-load it, which
//!   transfers visibility of both the chunk pointer and the slot contents.
//!
//! Safety argument, in one place: a slot is written exactly once (under the
//! append mutex, at an index >= every previously published length) and is
//! only read at indices < an `Acquire`-loaded length. Writers are mutually
//! serialized by the mutex; the `Release`/`Acquire` pair on `len` orders
//! each write before any read of that index. No slot is ever written twice,
//! so no `&T` can ever alias a write.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// log2 of the first chunk's slot count.
const BASE_BITS: u32 = 10;
/// Slot count of the first chunk.
const BASE: usize = 1 << BASE_BITS;
/// Chunk `i` holds `BASE << i` slots; 22 chunks cover ~4 Gi slots, past the
/// `u32` index space `TermId` uses.
const MAX_CHUNKS: usize = 22;

/// Map a global slot index to (chunk, offset within chunk).
#[inline]
fn locate(idx: usize) -> (usize, usize) {
    let chunk = ((idx >> BASE_BITS) + 1).ilog2() as usize;
    let chunk_start = BASE * ((1usize << chunk) - 1);
    (chunk, idx - chunk_start)
}

/// Append-only arena: `push` from any thread behind an internal lock,
/// `get` from any thread without one.
pub struct Arena<T> {
    chunks: [AtomicPtr<T>; MAX_CHUNKS],
    /// Number of initialized slots; published with `Release` after each push.
    len: AtomicUsize,
    /// Serializes writers (and lazy chunk allocation).
    append: Mutex<()>,
}

// `push(&self, T)` moves values in from other threads (needs `T: Send`);
// `get(&self) -> &T` shares them across threads (needs `T: Sync`).
unsafe impl<T: Send> Send for Arena<T> {}
unsafe impl<T: Send + Sync> Sync for Arena<T> {}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Arena {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_CHUNKS],
            len: AtomicUsize::new(0),
            append: Mutex::new(()),
        }
    }

    /// Number of initialized slots.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value, returning its index.
    pub fn push(&self, value: T) -> usize {
        let _guard = self.append.lock();
        // Only writers mutate `len`, and they hold the mutex: Relaxed is fine.
        let idx = self.len.load(Ordering::Relaxed);
        let (chunk, offset) = locate(idx);
        assert!(chunk < MAX_CHUNKS, "arena exhausted ({idx} slots)");
        let mut ptr = self.chunks[chunk].load(Ordering::Relaxed);
        if ptr.is_null() {
            let cap = BASE << chunk;
            let mut storage: Vec<T> = Vec::with_capacity(cap);
            ptr = storage.as_mut_ptr();
            std::mem::forget(storage);
            // Release so the `len` publication below carries this pointer to
            // readers (it also rides the next writer's mutex acquisition).
            self.chunks[chunk].store(ptr, Ordering::Release);
        }
        // SAFETY: `offset < cap` by construction of `locate`; the slot is
        // uninitialized (indices are handed out exactly once, and this one
        // is >= every previously published len).
        unsafe { ptr.add(offset).write(value) };
        self.len.store(idx + 1, Ordering::Release);
        idx
    }

    /// Read a slot. Panics if `idx` was never pushed.
    #[inline]
    pub fn get(&self, idx: usize) -> &T {
        let len = self.len.load(Ordering::Acquire);
        assert!(idx < len, "arena index {idx} out of bounds (len {len})");
        let (chunk, offset) = locate(idx);
        let ptr = self.chunks[chunk].load(Ordering::Acquire);
        // SAFETY: `idx < len` and the Acquire load of `len` synchronizes with
        // the Release store that published this slot, so the chunk pointer is
        // non-null and the slot is initialized. Slots are never written
        // again, so the reference stays valid and unaliased by writes.
        unsafe { &*ptr.add(offset) }
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        let len = *self.len.get_mut();
        for chunk in 0..MAX_CHUNKS {
            let ptr = *self.chunks[chunk].get_mut();
            if ptr.is_null() {
                break; // chunks fill in order; the rest were never allocated
            }
            let cap = BASE << chunk;
            let chunk_start = BASE * ((1usize << chunk) - 1);
            let initialized = len.saturating_sub(chunk_start).min(cap);
            // SAFETY: reconstructs the Vec forgotten in `push` with its true
            // capacity and the count of slots actually written.
            drop(unsafe { Vec::from_raw_parts(ptr, initialized, cap) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, BASE - 1));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, 2 * BASE - 1));
        assert_eq!(locate(3 * BASE), (2, 0));
    }

    #[test]
    fn push_get_across_chunks() {
        let a = Arena::new();
        for i in 0..5_000usize {
            assert_eq!(a.push(i * 3), i);
        }
        assert_eq!(a.len(), 5_000);
        for i in 0..5_000usize {
            assert_eq!(*a.get(i), i * 3);
        }
    }

    #[test]
    fn drops_contents() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Arena::new();
        for _ in 0..2_500 {
            a.push(D);
        }
        drop(a);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2_500);
    }

    #[test]
    fn concurrent_push_and_read() {
        let a = Arena::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let idx = a.push(t * 1_000_000 + i);
                        // Every index this thread received must read back
                        // the exact value it wrote.
                        assert_eq!(*a.get(idx), t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(a.len(), 8_000);
    }
}
