//! # p4t-smt — the constraint-solving substrate for p4testgen
//!
//! The paper's P4Testgen encodes path constraints as `QF_BV` formulas and
//! solves them with Z3 in incremental mode. No Z3 binding is available in
//! this build environment, so this crate implements the needed slice of an
//! SMT solver from scratch:
//!
//! * [`bitvec::BitVec`] — arbitrary-precision fixed-width bitvector values
//!   with SMT-LIB semantics (modular arithmetic, `udiv`-by-zero = all-ones).
//! * [`term::TermPool`] — a hash-consed term DAG with constant folding and
//!   the algebraic simplifications the paper's taint mitigation relies on.
//!   Interning is `&self` and thread-safe: storage is an [`arena::Arena`]
//!   (append-only, lock-free reads) and the consing maps are sharded, so
//!   one pool serves all exploration workers concurrently.
//! * [`blast::Blaster`] — Tseitin bit-blasting of terms into CNF, cached per
//!   term so shared path-prefix structure is encoded once.
//! * [`sat::SatSolver`] — a CDCL SAT solver (two-watched literals, VSIDS,
//!   first-UIP learning, Luby restarts, assumptions).
//! * [`simplify`] — term-level preprocessing for feasibility checks:
//!   constant folding over the conjunction and equality/substitution
//!   propagation along the trail, re-interned so the blast cache is keyed
//!   on simplified structure.
//! * [`solver::Solver`] — the push/pop facade used by the symbolic
//!   executor, with timing statistics for the Fig. 7 experiment. Two
//!   disciplines behind one API: fresh-per-check for model-bearing
//!   queries, and (by default) warm assumption-based incremental solving
//!   along the DFS spine for verdict-only feasibility checks, with an
//!   optional cross-worker learnt-clause exchange.
//! * [`mod@eval`] — reference concrete evaluation of terms, used for model
//!   checking, concolic execution, and cross-validation property tests.
//!
//! The crate is fully synchronous (SAT solving is CPU-bound, so per the
//! Tokio guidance there is no async here); its only dependency is
//! `parking_lot`, for the term pool's sharded interning locks.

pub mod arena;
pub mod bitvec;
pub mod blast;
pub mod eval;
pub mod fingerprint;
pub mod sat;
pub mod simplify;
pub mod solver;
pub mod term;

pub use bitvec::BitVec;
pub use eval::{eval, Assignment};
pub use fingerprint::stable_fingerprint;
pub use sat::SolveBudget;
pub use simplify::SimplifyStats;
pub use solver::{ClauseExchange, CheckResult, IncrementalStats, Solver, SolverMode};
pub use term::{BinOp, Node, TermId, TermPool, VarId};
