//! Hash-consed bitvector term language.
//!
//! Terms form a DAG interned in a [`TermPool`]: structurally identical terms
//! share one [`TermId`]. Booleans are 1-bit bitvectors, so the whole language
//! is `QF_BV`. Constructors perform constant folding and a small set of
//! algebraic simplifications — notably the ones the paper relies on for taint
//! mitigation (e.g. `x * 0 == 0` so a tainted multiplicand is neutralized).

use crate::arena::Arena;
use crate::bitvec::BitVec;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Index of an interned term in a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a symbolic variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw index, usable as a dense table key.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// Binary operations. All operands must have equal width except `Concat`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    /// Shift amount is the right operand (same width as left).
    Shl,
    LShr,
    AShr,
    /// Left operand supplies the high bits.
    Concat,
    /// Comparisons produce a 1-bit result.
    Eq,
    Ult,
    Ule,
    Slt,
    Sle,
}

impl BinOp {
    /// Whether the result of this operation is a 1-bit boolean.
    pub fn is_predicate(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle)
    }
}

/// A term node. Obtain instances through [`TermPool`] constructors only.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    Const(BitVec),
    Var(VarId),
    Not(TermId),
    Neg(TermId),
    Bin(BinOp, TermId, TermId),
    Extract { hi: u32, lo: u32, arg: TermId },
    /// `cond` must be 1-bit; branches must have equal width.
    Ite(TermId, TermId, TermId),
}

/// Metadata about a symbolic variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    pub name: String,
    pub width: usize,
}

/// One interned term: node plus cached width, stored as a unit so the two
/// can never go out of sync under concurrent appends.
struct TermData {
    node: Node,
    width: u32,
}

/// Number of consing-map shards. Shards cut writer contention roughly
/// `SHARDS`-fold; a power of two keeps shard selection a mask.
const DEDUP_SHARDS: usize = 16;

/// Arena and interner for terms.
///
/// Safe to share across threads (`&TermPool` is all any worker needs):
/// term/variable storage is an append-only [`Arena`] with lock-free reads,
/// and deduplication goes through consing maps sharded by node hash, so
/// concurrent interning of unrelated terms rarely contends. Structurally
/// identical terms receive the same [`TermId`] regardless of which thread
/// interns first — the shard lock is held across the arena append, so one
/// of two racing threads inserts and the other observes that entry.
pub struct TermPool {
    terms: Arena<TermData>,
    vars: Arena<VarInfo>,
    dedup: [Mutex<HashMap<Node, TermId>>; DEDUP_SHARDS],
    /// Times an `intern` found its consing shard already locked by another
    /// thread. A contention *sample*, not a cycle count — but enough to tell
    /// whether 16 shards still suffice as worker counts grow.
    contended_interns: std::sync::atomic::AtomicU64,
}

impl Default for TermPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TermPool {
    pub fn new() -> Self {
        TermPool {
            terms: Arena::new(),
            vars: Arena::new(),
            dedup: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            contended_interns: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn intern(&self, node: Node, width: usize) -> TermId {
        // Shard by the node's own (deterministic) hash; the per-shard
        // HashMap re-hashes internally, which is cheap next to allocation.
        let mut h = DefaultHasher::new();
        node.hash(&mut h);
        let slot = &self.dedup[h.finish() as usize & (DEDUP_SHARDS - 1)];
        // try_lock-then-lock: the uncontended path costs the same as a plain
        // lock; only an actually-held shard pays the extra atomic increment.
        let mut shard = match slot.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended_interns.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                slot.lock()
            }
        };
        if let Some(&id) = shard.get(&node) {
            return id;
        }
        let idx = self.terms.push(TermData { node: node.clone(), width: width as u32 });
        assert!(idx <= u32::MAX as usize, "term pool overflow");
        let id = TermId(idx as u32);
        shard.insert(node, id);
        id
    }

    /// Node backing a term.
    pub fn node(&self, id: TermId) -> &Node {
        &self.terms.get(id.0 as usize).node
    }

    /// Bit width of a term.
    pub fn width(&self, id: TermId) -> usize {
        self.terms.get(id.0 as usize).width as usize
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Variable metadata.
    pub fn var_info(&self, v: VarId) -> &VarInfo {
        self.vars.get(v.0 as usize)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Times an interning thread found its consing shard locked by another
    /// thread (see the field docs; exported as
    /// `p4testgen_pool_intern_contention_total`).
    pub fn intern_contention(&self) -> u64 {
        self.contended_interns.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Declare a fresh symbolic variable and return a term referring to it.
    pub fn fresh_var(&self, name: impl Into<String>, width: usize) -> TermId {
        let vidx = self.vars.push(VarInfo { name: name.into(), width });
        let v = VarId(vidx as u32);
        // A Var node is unique per VarId, so interning cannot merge two vars.
        self.intern(Node::Var(v), width)
    }

    /// Constant term.
    pub fn constant(&self, value: BitVec) -> TermId {
        let w = value.width();
        self.intern(Node::Const(value), w)
    }

    /// Constant from a `u128`.
    pub fn const_u128(&self, width: usize, value: u128) -> TermId {
        self.constant(BitVec::from_u128(width, value))
    }

    /// The 1-bit constant 1.
    pub fn mk_true(&self) -> TermId {
        self.const_u128(1, 1)
    }

    /// The 1-bit constant 0.
    pub fn mk_false(&self) -> TermId {
        self.const_u128(1, 0)
    }

    /// If the term is a constant, its value.
    pub fn as_const(&self, id: TermId) -> Option<&BitVec> {
        match self.node(id) {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    /// True if the term is the 1-bit constant 1.
    pub fn is_const_true(&self, id: TermId) -> bool {
        self.as_const(id).is_some_and(|v| v.is_true())
    }

    /// True if the term is the 1-bit constant 0.
    pub fn is_const_false(&self, id: TermId) -> bool {
        self.as_const(id).is_some_and(|v| v.width() == 1 && v.is_zero())
    }

    /// Bitwise NOT (for 1-bit terms this is boolean negation).
    pub fn not(&self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            return self.constant(v.not());
        }
        // Involution: not(not(x)) = x.
        if let Node::Not(inner) = *self.node(a) {
            return inner;
        }
        let w = self.width(a);
        self.intern(Node::Not(a), w)
    }

    /// Two's-complement negation.
    pub fn neg(&self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            return self.constant(v.negate());
        }
        let w = self.width(a);
        self.intern(Node::Neg(a), w)
    }

    /// General binary constructor with folding and simplification.
    pub fn bin(&self, op: BinOp, a: TermId, b: TermId) -> TermId {
        use BinOp::*;
        if op != Concat {
            assert_eq!(
                self.width(a),
                self.width(b),
                "operand width mismatch in {op:?}: {:?}({}) vs {:?}({})",
                a,
                self.width(a),
                b,
                self.width(b)
            );
        }
        // Constant folding.
        if let (Some(va), Some(vb)) = (self.as_const(a), self.as_const(b)) {
            let (va, vb) = (va.clone(), vb.clone());
            let folded = match op {
                Add => va.add(&vb),
                Sub => va.sub(&vb),
                Mul => va.mul(&vb),
                UDiv => va.udiv(&vb),
                URem => va.urem(&vb),
                And => va.and(&vb),
                Or => va.or(&vb),
                Xor => va.xor(&vb),
                Shl => va.shl(&vb),
                LShr => va.lshr(&vb),
                AShr => va.ashr(&vb),
                Concat => va.concat(&vb),
                Eq => BitVec::from_bool(va == vb),
                Ult => BitVec::from_bool(va.ult(&vb)),
                Ule => BitVec::from_bool(va.ule(&vb)),
                Slt => BitVec::from_bool(va.slt(&vb)),
                Sle => BitVec::from_bool(va.sle(&vb)),
            };
            return self.constant(folded);
        }
        let w = self.width(a);
        // Algebraic simplifications (includes the taint-mitigation rules).
        match op {
            Add | Sub | Xor | Or | Shl | LShr | AShr => {
                if self.is_zero_const(b) {
                    return a;
                }
                if (op == Add || op == Xor || op == Or) && self.is_zero_const(a) {
                    return b;
                }
            }
            Mul => {
                if self.is_zero_const(a) {
                    return a;
                }
                if self.is_zero_const(b) {
                    return b;
                }
                if self.is_one_const(a) {
                    return b;
                }
                if self.is_one_const(b) {
                    return a;
                }
            }
            And => {
                if self.is_zero_const(a) {
                    return a;
                }
                if self.is_zero_const(b) {
                    return b;
                }
                if self.is_ones_const(a) {
                    return b;
                }
                if self.is_ones_const(b) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Eq => {
                if a == b {
                    return self.mk_true();
                }
                // For 1-bit equality against a constant, fold to identity/not.
                if w == 1 {
                    if self.is_const_true(b) {
                        return a;
                    }
                    if self.is_const_true(a) {
                        return b;
                    }
                    if self.is_const_false(b) {
                        return self.not(a);
                    }
                    if self.is_const_false(a) {
                        return self.not(b);
                    }
                }
            }
            Ult => {
                if a == b {
                    return self.mk_false();
                }
                if self.is_zero_const(b) {
                    return self.mk_false();
                }
            }
            Ule | Sle
                if a == b => {
                    return self.mk_true();
                }
            Slt
                if a == b => {
                    return self.mk_false();
                }
            Concat => {
                if self.width(a) == 0 {
                    return b;
                }
                if self.width(b) == 0 {
                    return a;
                }
            }
            _ => {}
        }
        // Or with identical operands, xor with self.
        if a == b {
            match op {
                Or => return a,
                Xor | Sub => return self.constant(BitVec::zeros(w)),
                _ => {}
            }
        }
        let result_w = match op {
            Concat => self.width(a) + self.width(b),
            _ if op.is_predicate() => 1,
            _ => w,
        };
        self.intern(Node::Bin(op, a, b), result_w)
    }

    fn is_zero_const(&self, id: TermId) -> bool {
        self.as_const(id).is_some_and(|v| v.is_zero())
    }

    fn is_one_const(&self, id: TermId) -> bool {
        self.as_const(id).is_some_and(|v| v.to_u64() == Some(1))
    }

    fn is_ones_const(&self, id: TermId) -> bool {
        self.as_const(id).is_some_and(|v| *v == BitVec::ones(v.width()))
    }

    /// Extract bits `[lo, hi]` inclusive.
    pub fn extract(&self, hi: usize, lo: usize, arg: TermId) -> TermId {
        let aw = self.width(arg);
        assert!(hi >= lo && hi < aw, "extract [{hi}:{lo}] of width {aw}");
        if lo == 0 && hi + 1 == aw {
            return arg;
        }
        if let Some(v) = self.as_const(arg) {
            let v = v.extract(hi, lo);
            return self.constant(v);
        }
        // extract over concat: descend into the side that fully contains the slice.
        if let Node::Bin(BinOp::Concat, a, b) = *self.node(arg) {
            let bw = self.width(b);
            if hi < bw {
                return self.extract(hi, lo, b);
            }
            if lo >= bw {
                return self.extract(hi - bw, lo - bw, a);
            }
        }
        // extract over extract: compose offsets.
        if let Node::Extract { lo: ilo, arg: inner, .. } = *self.node(arg) {
            return self.extract(hi + ilo as usize, lo + ilo as usize, inner);
        }
        self.intern(Node::Extract { hi: hi as u32, lo: lo as u32, arg }, hi - lo + 1)
    }

    /// If-then-else; `cond` must be 1-bit.
    pub fn ite(&self, cond: TermId, then_t: TermId, else_t: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must be 1-bit");
        assert_eq!(self.width(then_t), self.width(else_t), "ite branch width mismatch");
        if self.is_const_true(cond) {
            return then_t;
        }
        if self.is_const_false(cond) {
            return else_t;
        }
        if then_t == else_t {
            return then_t;
        }
        // 1-bit ite with constant branches is just cond or !cond.
        if self.width(then_t) == 1 && self.is_const_true(then_t) && self.is_const_false(else_t) {
            return cond;
        }
        if self.width(then_t) == 1 && self.is_const_false(then_t) && self.is_const_true(else_t) {
            return self.not(cond);
        }
        let w = self.width(then_t);
        self.intern(Node::Ite(cond, then_t, else_t), w)
    }

    // ---- convenience wrappers -------------------------------------------

    pub fn add(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Add, a, b)
    }
    pub fn sub(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Sub, a, b)
    }
    pub fn mul(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Mul, a, b)
    }
    pub fn and(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::And, a, b)
    }
    pub fn or(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Or, a, b)
    }
    pub fn xor(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Xor, a, b)
    }
    pub fn eq(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Eq, a, b)
    }
    pub fn neq(&self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }
    pub fn ult(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Ult, a, b)
    }
    pub fn ule(&self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Ule, a, b)
    }
    pub fn concat(&self, hi: TermId, lo: TermId) -> TermId {
        self.bin(BinOp::Concat, hi, lo)
    }

    /// Concatenate a list of terms, first element highest.
    pub fn concat_all(&self, parts: &[TermId]) -> TermId {
        let mut it = parts.iter();
        let first = *it.next().expect("concat_all of empty list");
        it.fold(first, |acc, &p| self.concat(acc, p))
    }

    /// Zero-extend to `width`.
    pub fn zext(&self, a: TermId, width: usize) -> TermId {
        let aw = self.width(a);
        assert!(width >= aw);
        if width == aw {
            return a;
        }
        let zeros = self.constant(BitVec::zeros(width - aw));
        self.concat(zeros, a)
    }

    /// Sign-extend to `width`.
    pub fn sext(&self, a: TermId, width: usize) -> TermId {
        let aw = self.width(a);
        assert!(width >= aw && aw > 0);
        if width == aw {
            return a;
        }
        let sign = self.extract(aw - 1, aw - 1, a);
        let mut ext = sign;
        while self.width(ext) < width - aw {
            let have = self.width(ext);
            let take = (width - aw - have).min(have);
            let part = self.extract(take - 1, 0, ext);
            ext = self.concat(ext, part);
        }
        self.concat(ext, a)
    }

    /// P4-style cast: truncate or zero-extend to `width`.
    pub fn cast(&self, a: TermId, width: usize) -> TermId {
        let aw = self.width(a);
        if width == aw {
            a
        } else if width < aw {
            self.extract(width - 1, 0, a)
        } else {
            self.zext(a, width)
        }
    }

    /// Boolean AND over a list (empty list is `true`).
    pub fn and_all(&self, parts: &[TermId]) -> TermId {
        let mut acc = self.mk_true();
        for &p in parts {
            acc = self.and(acc, p);
        }
        acc
    }

    /// Collect the set of variables appearing in a term.
    pub fn vars_of(&self, root: TermId) -> Vec<VarId> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if seen[t.0 as usize] {
                continue;
            }
            seen[t.0 as usize] = true;
            match self.node(t) {
                Node::Const(_) => {}
                Node::Var(v) => out.push(*v),
                Node::Not(a) | Node::Neg(a) | Node::Extract { arg: a, .. } => stack.push(*a),
                Node::Bin(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Ite(c, a, b) => {
                    stack.push(*c);
                    stack.push(*a);
                    stack.push(*b);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Render a term as an s-expression (for debugging and trace output).
    pub fn display(&self, id: TermId) -> String {
        let mut s = String::new();
        self.display_into(id, &mut s, 0);
        s
    }

    fn display_into(&self, id: TermId, out: &mut String, depth: usize) {
        use std::fmt::Write;
        if depth > 24 {
            out.push_str("...");
            return;
        }
        match self.node(id) {
            Node::Const(v) => {
                let _ = write!(out, "{v}");
            }
            Node::Var(v) => out.push_str(&self.var_info(*v).name),
            Node::Not(a) => {
                out.push_str("(not ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            Node::Neg(a) => {
                out.push_str("(neg ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            Node::Bin(op, a, b) => {
                let _ = write!(out, "({op:?} ");
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            Node::Extract { hi, lo, arg } => {
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.display_into(*arg, out, depth + 1);
                out.push(')');
            }
            Node::Ite(c, a, b) => {
                out.push_str("(ite ");
                self.display_into(*c, out, depth + 1);
                out.push(' ');
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let p = TermPool::new();
        let a = p.const_u128(8, 5);
        let b = p.const_u128(8, 5);
        assert_eq!(a, b);
        let x = p.fresh_var("x", 8);
        let s1 = p.add(x, a);
        let s2 = p.add(x, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn distinct_vars_not_merged() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("x", 8); // same name, distinct identity
        assert_ne!(x, y);
    }

    #[test]
    fn constant_folding() {
        let p = TermPool::new();
        let a = p.const_u128(8, 250);
        let b = p.const_u128(8, 10);
        let s = p.add(a, b);
        assert_eq!(p.as_const(s).unwrap().to_u64(), Some(4));
    }

    #[test]
    fn taint_mitigation_mul_zero() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 16);
        let z = p.const_u128(16, 0);
        let m = p.mul(x, z);
        assert!(p.as_const(m).unwrap().is_zero());
    }

    #[test]
    fn eq_self_is_true() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 32);
        let e = p.eq(x, x);
        assert!(p.is_const_true(e));
    }

    #[test]
    fn ite_simplifications() {
        let p = TermPool::new();
        let c = p.fresh_var("c", 1);
        let t = p.mk_true();
        let f = p.mk_false();
        assert_eq!(p.ite(c, t, f), c);
        let notc = p.ite(c, f, t);
        let expect = p.not(c);
        assert_eq!(notc, expect);
        let x = p.fresh_var("x", 8);
        assert_eq!(p.ite(c, x, x), x);
    }

    #[test]
    fn extract_through_concat() {
        let p = TermPool::new();
        let hi = p.fresh_var("hi", 8);
        let lo = p.fresh_var("lo", 8);
        let c = p.concat(hi, lo);
        assert_eq!(p.extract(15, 8, c), hi);
        assert_eq!(p.extract(7, 0, c), lo);
    }

    #[test]
    fn extract_of_extract_composes() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 32);
        let outer = p.extract(23, 8, x);
        let inner = p.extract(7, 4, outer);
        let direct = p.extract(15, 12, x);
        assert_eq!(inner, direct);
    }

    #[test]
    fn sext_matches_bitvec() {
        let p = TermPool::new();
        let v = p.constant(BitVec::from_u64(4, 0b1010));
        let e = p.sext(v, 12);
        assert_eq!(p.as_const(e).unwrap().to_u64(), Some(0xFFA));
    }

    #[test]
    fn vars_of_collects() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let s = p.add(x, y);
        let e = p.eq(s, x);
        assert_eq!(p.vars_of(e).len(), 2);
    }

    #[test]
    fn concurrent_interning_converges_on_one_id() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 32);
        // Eight threads race to build the same expression chain; hash consing
        // must hand every thread the identical TermId at every step.
        let ids: Vec<TermId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut acc = x;
                        for i in 0..200u128 {
                            let c = p.const_u128(32, i);
                            let sum = p.add(acc, c);
                            acc = p.xor(sum, x);
                        }
                        acc
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        // Widths stayed attached to the right nodes despite racing appends.
        assert_eq!(p.width(ids[0]), 32);
    }

    #[test]
    fn not_involution() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let n = p.not(x);
        assert_eq!(p.not(n), x);
    }
}
