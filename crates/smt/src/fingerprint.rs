//! Stable structural fingerprints for constraint sets.
//!
//! `TermId`s are allocation-order handles: two runs of the same program can
//! assign different ids to structurally identical terms depending on which
//! worker interned a term first. That makes raw-id memo keys useless across
//! processes. A checkpointed feasibility memo instead keys on the
//! [`stable_fingerprint`] of a constraint set: a 128-bit hash of the set's
//! structure under a canonical alpha-renaming, where variables are numbered
//! by first occurrence while walking the constraints *in collection order*.
//!
//! Collection order matters: within one path the constraint vector is built
//! deterministically (it mirrors the fork trail), so the numbering — and the
//! fingerprint — is a pure function of the path, independent of worker
//! schedule or pool interning order. Variable *names* are deliberately
//! excluded: alpha-equivalent sets are equisatisfiable, which is the only
//! property a sat/unsat memo needs preserved.

use std::collections::HashMap;

use crate::term::{Node, TermId, TermPool, VarId};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

#[inline]
fn mix128(h: u128, v: u128) -> u128 {
    mix(mix(h, v as u64), (v >> 64) as u64)
}

#[inline]
fn mix(h: u128, word: u64) -> u128 {
    let mut h = h;
    for byte in word.to_le_bytes() {
        h ^= byte as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-node structural tags. Must never be reordered once a checkpoint
/// format version ships; append new tags instead.
fn node_tag(node: &Node) -> u64 {
    match node {
        Node::Const(_) => 1,
        Node::Var(_) => 2,
        Node::Not(_) => 3,
        Node::Neg(_) => 4,
        Node::Bin(op, _, _) => 0x100 + *op as u64,
        Node::Extract { .. } => 5,
        Node::Ite(_, _, _) => 6,
    }
}

struct Canonicalizer<'p> {
    pool: &'p TermPool,
    /// First-occurrence numbering of variables across the whole set.
    var_rank: HashMap<VarId, u64>,
    /// Per-call term-hash memo. Valid because a variable's rank is fixed
    /// the moment it is first assigned, so a term's hash cannot change
    /// later in the same walk.
    memo: HashMap<TermId, u128>,
}

impl<'p> Canonicalizer<'p> {
    fn rank(&mut self, v: VarId) -> u64 {
        let next = self.var_rank.len() as u64;
        *self.var_rank.entry(v).or_insert(next)
    }

    /// Iterative post-order hash of one term. Explicit stack: packet
    /// concatenation chains nest deeply enough to overflow recursion.
    fn hash_term(&mut self, root: TermId) -> u128 {
        enum Frame {
            Visit(TermId),
            Emit(TermId),
        }
        let mut stack = vec![Frame::Visit(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(t) => {
                    if self.memo.contains_key(&t) {
                        continue;
                    }
                    stack.push(Frame::Emit(t));
                    match self.pool.node(t) {
                        Node::Const(_) | Node::Var(_) => {}
                        Node::Not(a) | Node::Neg(a) | Node::Extract { arg: a, .. } => {
                            stack.push(Frame::Visit(*a));
                        }
                        Node::Bin(_, a, b) => {
                            stack.push(Frame::Visit(*b));
                            stack.push(Frame::Visit(*a));
                        }
                        Node::Ite(c, a, b) => {
                            stack.push(Frame::Visit(*b));
                            stack.push(Frame::Visit(*a));
                            stack.push(Frame::Visit(*c));
                        }
                    }
                }
                Frame::Emit(t) => {
                    let node = self.pool.node(t).clone();
                    let mut h = mix(FNV_OFFSET, node_tag(&node));
                    h = mix(h, self.pool.width(t) as u64);
                    match node {
                        Node::Const(bv) => {
                            h = mix(h, bv.width() as u64);
                            // Hash the value bit by bit via the byte image
                            // when available; widths interned by the engine
                            // are byte-aligned only for packet chunks, so
                            // fall back to per-bit extraction otherwise.
                            for i in 0..bv.width() {
                                if bv.bit(i) {
                                    h = mix(h, i as u64 | 1 << 63);
                                }
                            }
                        }
                        Node::Var(v) => {
                            let r = self.rank(v);
                            h = mix(h, r);
                        }
                        Node::Not(a) | Node::Neg(a) => {
                            h = mix128(h, self.child(a));
                        }
                        Node::Bin(_, a, b) => {
                            h = mix128(h, self.child(a));
                            h = mix128(h, self.child(b));
                        }
                        Node::Extract { hi, lo, arg } => {
                            h = mix(h, hi as u64);
                            h = mix(h, lo as u64);
                            h = mix128(h, self.child(arg));
                        }
                        Node::Ite(c, a, b) => {
                            h = mix128(h, self.child(c));
                            h = mix128(h, self.child(a));
                            h = mix128(h, self.child(b));
                        }
                    }
                    self.memo.insert(t, h);
                }
            }
        }
        self.memo[&root]
    }

    /// A child's previously computed 128-bit hash.
    fn child(&self, t: TermId) -> u128 {
        self.memo[&t]
    }
}

/// Canonical fingerprint of a constraint set, walked in the given order.
///
/// Two constraint sets with equal fingerprints are alpha-equivalent modulo
/// hash collisions (128-bit, FNV-1a), hence equisatisfiable — which is the
/// contract the persisted feasibility memo relies on.
pub fn stable_fingerprint(pool: &TermPool, constraints: &[TermId]) -> u128 {
    let mut canon = Canonicalizer { pool, var_rank: HashMap::new(), memo: HashMap::new() };
    let mut acc = FNV_OFFSET;
    for (i, &c) in constraints.iter().enumerate() {
        let h = canon.hash_term(c);
        acc = mix(acc, i as u64);
        acc = mix(acc, h as u64);
        acc = mix(acc, (h >> 64) as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BinOp;

    #[test]
    fn alpha_equivalent_sets_agree_across_pools() {
        // Same structure, different variable names and interning order.
        let p1 = TermPool::new();
        let x = p1.fresh_var("x", 8);
        let y = p1.fresh_var("y", 8);
        let c1a = p1.eq(x, p1.const_u128(8, 5));
        let c1b = p1.bin(BinOp::Ult, y, x);

        let p2 = TermPool::new();
        // Interleave unrelated junk so TermIds diverge.
        let _junk = p2.fresh_var("junk", 32);
        let b = p2.fresh_var("banana", 8);
        let a = p2.fresh_var("apple", 8);
        let c2a = p2.eq(a, p2.const_u128(8, 5));
        let c2b = p2.bin(BinOp::Ult, b, a);

        assert_eq!(
            stable_fingerprint(&p1, &[c1a, c1b]),
            stable_fingerprint(&p2, &[c2a, c2b]),
        );
    }

    #[test]
    fn constant_and_structure_changes_are_detected() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let eq5 = p.eq(x, p.const_u128(8, 5));
        let eq6 = p.eq(x, p.const_u128(8, 6));
        let ult5 = p.bin(BinOp::Ult, x, p.const_u128(8, 5));
        let base = stable_fingerprint(&p, &[eq5]);
        assert_ne!(base, stable_fingerprint(&p, &[eq6]));
        assert_ne!(base, stable_fingerprint(&p, &[ult5]));
        // Order matters: the memo key is the collected sequence.
        assert_ne!(
            stable_fingerprint(&p, &[eq5, ult5]),
            stable_fingerprint(&p, &[ult5, eq5]),
        );
    }

    #[test]
    fn variable_identity_is_positional_not_nominal() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        // x == y (two distinct vars) must differ from x == x.
        let xy = p.eq(x, y);
        let xx = p.eq(x, x);
        assert_ne!(stable_fingerprint(&p, &[xy]), stable_fingerprint(&p, &[xx]));
    }

    #[test]
    fn deep_terms_do_not_overflow_the_stack() {
        let p = TermPool::new();
        let mut t = p.fresh_var("seed", 8);
        for _ in 0..50_000 {
            t = p.bin(BinOp::Concat, t, p.const_u128(8, 0xab));
        }
        let c = p.eq(p.extract(7, 0, t), p.const_u128(8, 1));
        let _ = stable_fingerprint(&p, &[c]);
    }
}
