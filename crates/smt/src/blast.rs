//! Bit-blasting: translation of bitvector terms into CNF over the SAT solver.
//!
//! Every term maps to a vector of literals, least-significant bit first.
//! Translation is cached per term, so shared subterms (the term pool is
//! hash-consed) are encoded once — this is what makes the incremental solver
//! facade cheap: pushing a new path constraint only encodes the new nodes.

use crate::bitvec::BitVec;
use crate::sat::{Lit, SatSolver, SatVar};
use crate::term::{BinOp, Node, TermId, TermPool, VarId};
use std::collections::HashMap;

/// Encoding-cache counters, read by the solver facade's metrics fold.
#[derive(Default, Clone, Debug)]
pub struct BlastStats {
    /// `blast` calls answered from the per-term cache.
    pub cache_hits: u64,
    /// `blast` calls that had to encode a new term node.
    pub cache_misses: u64,
}

/// Bit-blaster with a per-term encoding cache.
pub struct Blaster {
    cache: HashMap<TermId, Vec<Lit>>,
    /// SAT variables backing each pool variable's bits (LSB first).
    var_bits: HashMap<VarId, Vec<SatVar>>,
    /// Pool variables in the order they were first encoded — an append-only
    /// log so the incremental facade can register newly encoded variables
    /// (for cross-worker clause translation) without rescanning `var_bits`.
    encoded_vars: Vec<VarId>,
    /// A literal constrained to be true.
    true_lit: Lit,
    pub stats: BlastStats,
}

impl Blaster {
    /// Create a blaster over `sat`, claiming one variable pinned to true.
    pub fn new(sat: &mut SatSolver) -> Self {
        let t = sat.new_var();
        sat.add_clause(&[Lit::positive(t)]);
        Blaster {
            cache: HashMap::new(),
            var_bits: HashMap::new(),
            encoded_vars: Vec::new(),
            true_lit: Lit::positive(t),
            stats: BlastStats::default(),
        }
    }

    fn false_lit(&self) -> Lit {
        self.true_lit.negate()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        l == self.true_lit
    }

    fn is_false(&self, l: Lit) -> bool {
        l == self.false_lit()
    }

    /// SAT variables backing a pool variable, if it was ever encoded.
    pub fn bits_of_var(&self, v: VarId) -> Option<&[SatVar]> {
        self.var_bits.get(&v).map(|b| b.as_slice())
    }

    /// Pool variables encoded so far, in first-encoding order. Append-only:
    /// a caller holding a cursor into this slice sees exactly the variables
    /// encoded since it last looked.
    pub fn encoded_vars(&self) -> &[VarId] {
        &self.encoded_vars
    }

    /// Extract the model value of a pool variable after a Sat result.
    /// Bits that were never encoded are zero.
    pub fn model_value(&self, sat: &SatSolver, pool: &TermPool, v: VarId) -> BitVec {
        let width = pool.var_info(v).width;
        let mut out = BitVec::zeros(width);
        if let Some(bits) = self.var_bits.get(&v) {
            for (i, &sv) in bits.iter().enumerate() {
                if sat.model_value(sv) {
                    out.set_bit(i, true);
                }
            }
        }
        out
    }

    // ---- gate primitives (Tseitin) --------------------------------------

    fn gate_and(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) {
            return self.false_lit();
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.false_lit();
        }
        let c = Lit::positive(sat.new_var());
        sat.add_clause(&[a.negate(), b.negate(), c]);
        sat.add_clause(&[a, c.negate()]);
        sat.add_clause(&[b, c.negate()]);
        c
    }

    fn gate_or(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        self.gate_and(sat, a.negate(), b.negate()).negate()
    }

    fn gate_xor(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return b.negate();
        }
        if self.is_true(b) {
            return a.negate();
        }
        if a == b {
            return self.false_lit();
        }
        if a == b.negate() {
            return self.true_lit;
        }
        let c = Lit::positive(sat.new_var());
        sat.add_clause(&[a.negate(), b.negate(), c.negate()]);
        sat.add_clause(&[a, b, c.negate()]);
        sat.add_clause(&[a.negate(), b, c]);
        sat.add_clause(&[a, b.negate(), c]);
        c
    }

    /// Multiplexer: `sel ? t : e`.
    fn gate_mux(&mut self, sat: &mut SatSolver, sel: Lit, t: Lit, e: Lit) -> Lit {
        if self.is_true(sel) {
            return t;
        }
        if self.is_false(sel) {
            return e;
        }
        if t == e {
            return t;
        }
        let a = self.gate_and(sat, sel, t);
        let b = self.gate_and(sat, sel.negate(), e);
        self.gate_or(sat, a, b)
    }

    /// Full adder returning (sum, carry).
    fn full_adder(&mut self, sat: &mut SatSolver, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor(sat, a, b);
        let sum = self.gate_xor(sat, axb, cin);
        let c1 = self.gate_and(sat, a, b);
        let c2 = self.gate_and(sat, axb, cin);
        let cout = self.gate_or(sat, c1, c2);
        (sum, cout)
    }

    fn ripple_add(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(sat, a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn blast_mul(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.false_lit(); w];
        for (i, &bi) in b.iter().enumerate() {
            if self.is_false(bi) {
                continue;
            }
            // Partial product: (a << i) & b_i, added into acc.
            let mut pp = vec![self.false_lit(); w];
            for j in 0..w - i {
                pp[i + j] = self.gate_and(sat, a[j], bi);
            }
            let f = self.false_lit();
            acc = self.ripple_add(sat, &acc, &pp, f);
        }
        acc
    }

    /// `a < b` unsigned, as a single literal.
    fn blast_ult(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut lt = self.false_lit();
        for i in 0..a.len() {
            // If bits differ at i (scanning toward MSB), the result so far is b_i.
            let diff = self.gate_xor(sat, a[i], b[i]);
            lt = self.gate_mux(sat, diff, b[i], lt);
        }
        lt
    }

    fn blast_eq(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for i in 0..a.len() {
            let x = self.gate_xor(sat, a[i], b[i]);
            acc = self.gate_and(sat, acc, x.negate());
        }
        acc
    }

    /// Barrel shifter. `fill` supplies bits shifted in; `left` picks direction.
    fn blast_shift(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        amount: &[Lit],
        left: bool,
        fill: Lit,
    ) -> Vec<Lit> {
        let w = a.len();
        let mut cur: Vec<Lit> = a.to_vec();
        let stages = usize::BITS as usize - (w.max(1) - 1).leading_zeros() as usize;
        for (s, &abit) in amount.iter().enumerate().take(stages.max(1)) {
            let dist = 1usize << s;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if left {
                    if i >= dist { cur[i - dist] } else { fill }
                } else if i + dist < w {
                    cur[i + dist]
                } else {
                    fill
                };
                next.push(self.gate_mux(sat, abit, shifted, cur[i]));
            }
            cur = next;
        }
        // Any set amount bit beyond the stage range forces a full shift-out.
        let mut overflow = self.false_lit();
        for &abit in amount.iter().skip(stages.max(1)) {
            overflow = self.gate_or(sat, overflow, abit);
        }
        // Amounts >= w within the staged range also overflow; detect by
        // comparing amount >= w when w is not a power of two covered above.
        if !self.is_false(overflow) || !w.is_power_of_two() {
            let wbits: Vec<Lit> = (0..amount.len())
                .map(|i| self.const_lit(i < usize::BITS as usize && (w >> i) & 1 == 1))
                .collect();
            let lt_w = self.blast_ult(sat, amount, &wbits);
            let ge_w = lt_w.negate();
            let ov = self.gate_or(sat, overflow, ge_w);
            cur = cur.iter().map(|&l| self.gate_mux(sat, ov, fill, l)).collect();
        }
        cur
    }

    fn blast_udiv_urem(
        &mut self,
        sat: &mut SatSolver,
        pool: &TermPool,
        a: TermId,
        b: TermId,
    ) -> (Vec<Lit>, Vec<Lit>) {
        // Introduce fresh q, r with: b != 0 -> (a == b*q + r at 2w, r < b)
        //                            b == 0 -> (q == ones, r == a)
        let w = pool.width(a);
        let q = pool.fresh_var("udiv_q", w);
        let r = pool.fresh_var("udiv_r", w);
        let a2 = pool.zext(a, 2 * w);
        let b2 = pool.zext(b, 2 * w);
        let q2 = pool.zext(q, 2 * w);
        let r2 = pool.zext(r, 2 * w);
        let prod = pool.mul(b2, q2);
        let sum = pool.add(prod, r2);
        let exact = pool.eq(sum, a2);
        let rem_lt = pool.ult(r, b);
        let zero = pool.const_u128(w, 0);
        let bz = pool.eq(b, zero);
        let ones = pool.constant(BitVec::ones(w));
        let q_ones = pool.eq(q, ones);
        let r_a = pool.eq(r, a);
        let div_ok = pool.and(exact, rem_lt);
        let zero_case = pool.and(q_ones, r_a);
        let side = pool.ite(bz, zero_case, div_ok);
        let side_l = self.blast(sat, pool, side)[0];
        sat.add_clause(&[side_l]);
        let ql = self.blast(sat, pool, q);
        let rl = self.blast(sat, pool, r);
        (ql, rl)
    }

    /// Translate a term, returning its literals (LSB first). Results cached.
    pub fn blast(&mut self, sat: &mut SatSolver, pool: &TermPool, id: TermId) -> Vec<Lit> {
        if let Some(c) = self.cache.get(&id) {
            self.stats.cache_hits += 1;
            return c.clone();
        }
        self.stats.cache_misses += 1;
        let node = pool.node(id).clone();
        let out: Vec<Lit> = match node {
            Node::Const(v) => (0..v.width()).map(|i| self.const_lit(v.bit(i))).collect(),
            Node::Var(v) => {
                let width = pool.var_info(v).width;
                let bits: Vec<SatVar> = (0..width).map(|_| sat.new_var()).collect();
                self.var_bits.insert(v, bits.clone());
                self.encoded_vars.push(v);
                bits.into_iter().map(Lit::positive).collect()
            }
            Node::Not(a) => {
                let al = self.blast(sat, pool, a);
                al.into_iter().map(Lit::negate).collect()
            }
            Node::Neg(a) => {
                let al = self.blast(sat, pool, a);
                let inv: Vec<Lit> = al.into_iter().map(Lit::negate).collect();
                let one: Vec<Lit> = (0..inv.len())
                    .map(|i| self.const_lit(i == 0))
                    .collect();
                let f = self.false_lit();
                self.ripple_add(sat, &inv, &one, f)
            }
            Node::Extract { hi, lo, arg } => {
                let al = self.blast(sat, pool, arg);
                al[lo as usize..=hi as usize].to_vec()
            }
            Node::Ite(c, t, e) => {
                let cl = self.blast(sat, pool, c)[0];
                let tl = self.blast(sat, pool, t);
                let el = self.blast(sat, pool, e);
                tl.iter()
                    .zip(&el)
                    .map(|(&a, &b)| self.gate_mux(sat, cl, a, b))
                    .collect()
            }
            Node::Bin(op, a, b) => {
                // UDiv/URem introduce fresh pool variables, handled separately.
                if matches!(op, BinOp::UDiv | BinOp::URem) {
                    let (q, r) = self.blast_udiv_urem(sat, pool, a, b);
                    let out = if op == BinOp::UDiv { q } else { r };
                    self.cache.insert(id, out.clone());
                    return out;
                }
                let al = self.blast(sat, pool, a);
                let bl = self.blast(sat, pool, b);
                match op {
                    BinOp::Add => {
                        let f = self.false_lit();
                        self.ripple_add(sat, &al, &bl, f)
                    }
                    BinOp::Sub => {
                        let binv: Vec<Lit> = bl.iter().map(|l| l.negate()).collect();
                        let t = self.true_lit;
                        self.ripple_add(sat, &al, &binv, t)
                    }
                    BinOp::Mul => self.blast_mul(sat, &al, &bl),
                    BinOp::And => al
                        .iter()
                        .zip(&bl)
                        .map(|(&x, &y)| self.gate_and(sat, x, y))
                        .collect(),
                    BinOp::Or => al
                        .iter()
                        .zip(&bl)
                        .map(|(&x, &y)| self.gate_or(sat, x, y))
                        .collect(),
                    BinOp::Xor => al
                        .iter()
                        .zip(&bl)
                        .map(|(&x, &y)| self.gate_xor(sat, x, y))
                        .collect(),
                    BinOp::Shl => {
                        let f = self.false_lit();
                        self.blast_shift(sat, &al, &bl, true, f)
                    }
                    BinOp::LShr => {
                        let f = self.false_lit();
                        self.blast_shift(sat, &al, &bl, false, f)
                    }
                    BinOp::AShr => {
                        let sign = *al.last().expect("ashr of zero-width term");
                        self.blast_shift(sat, &al, &bl, false, sign)
                    }
                    BinOp::Concat => {
                        // `a` is the high part: result = bl ++ al (LSB first).
                        let mut out = bl.clone();
                        out.extend_from_slice(&al);
                        out
                    }
                    BinOp::Eq => vec![self.blast_eq(sat, &al, &bl)],
                    BinOp::Ult => vec![self.blast_ult(sat, &al, &bl)],
                    BinOp::Ule => {
                        let gt = self.blast_ult(sat, &bl, &al);
                        vec![gt.negate()]
                    }
                    BinOp::Slt => {
                        let (af, bf) = (self.flip_msb(&al), self.flip_msb(&bl));
                        vec![self.blast_ult(sat, &af, &bf)]
                    }
                    BinOp::Sle => {
                        let (af, bf) = (self.flip_msb(&al), self.flip_msb(&bl));
                        let gt = self.blast_ult(sat, &bf, &af);
                        vec![gt.negate()]
                    }
                    BinOp::UDiv | BinOp::URem => unreachable!(),
                }
            }
        };
        debug_assert_eq!(out.len(), pool.width(id), "blasted width mismatch");
        self.cache.insert(id, out.clone());
        out
    }

    fn flip_msb(&self, bits: &[Lit]) -> Vec<Lit> {
        let mut v = bits.to_vec();
        if let Some(last) = v.last_mut() {
            *last = last.negate();
        }
        v
    }

    /// Blast a 1-bit term and return its literal for use as an assumption.
    pub fn assertion_lit(&mut self, sat: &mut SatSolver, pool: &TermPool, t: TermId) -> Lit {
        assert_eq!(pool.width(t), 1, "assertions must be 1-bit terms");
        self.blast(sat, pool, t)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    /// Assert `t` and solve; on Sat, return the model as an Assignment.
    fn solve_term(pool: &TermPool, t: TermId) -> Option<crate::eval::Assignment> {
        let mut sat = SatSolver::new();
        let mut bl = Blaster::new(&mut sat);
        let l = bl.assertion_lit(&mut sat, pool, t);
        sat.add_clause(&[l]);
        if sat.solve(&[]) == SatResult::Unsat {
            return None;
        }
        let mut asg = crate::eval::Assignment::new();
        for vi in 0..pool.num_vars() {
            let v = VarId(vi as u32);
            asg.set(v, bl.model_value(&sat, pool, v));
        }
        Some(asg)
    }

    #[test]
    fn solve_addition_equation() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let c3 = p.const_u128(8, 3);
        let c100 = p.const_u128(8, 100);
        let s = p.add(x, c3);
        let eq = p.eq(s, c100);
        let asg = solve_term(&p, eq).expect("sat");
        assert!(crate::eval::eval(&p, &asg, eq).is_true());
    }

    #[test]
    fn unsat_contradiction() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let c1 = p.const_u128(8, 1);
        let c2 = p.const_u128(8, 2);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let both = p.and(e1, e2);
        assert!(solve_term(&p, both).is_none());
    }

    #[test]
    fn solve_multiplication() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let c6 = p.const_u128(8, 6);
        let c42 = p.const_u128(8, 42);
        let m = p.mul(x, c6);
        let eq = p.eq(m, c42);
        let asg = solve_term(&p, eq).expect("sat");
        assert!(crate::eval::eval(&p, &asg, eq).is_true());
    }

    #[test]
    fn solve_wide_value() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 100);
        let big = p.constant(BitVec::from_u128(100, 0xDEAD_BEEF_0000_1111_2222u128));
        let one = p.const_u128(100, 1);
        let s = p.add(x, one);
        let eq = p.eq(s, big);
        let asg = solve_term(&p, eq).expect("sat");
        assert!(crate::eval::eval(&p, &asg, eq).is_true());
    }

    #[test]
    fn solve_ult_boundary() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 4);
        let c1 = p.const_u128(4, 1);
        let lt = p.ult(x, c1);
        let asg = solve_term(&p, lt).expect("sat");
        assert!(crate::eval::eval(&p, &asg, x).is_zero());
    }

    #[test]
    fn solve_shift_symbolic_amount() {
        let p = TermPool::new();
        let amt = p.fresh_var("amt", 8);
        let one = p.const_u128(8, 1);
        let c16 = p.const_u128(8, 16);
        let sh = p.bin(BinOp::Shl, one, amt);
        let eq = p.eq(sh, c16);
        let asg = solve_term(&p, eq).expect("sat");
        assert!(crate::eval::eval(&p, &asg, eq).is_true());
        // The only solution is amt == 4.
        let av = asg.iter().find(|(v, _)| p.var_info(**v).name == "amt").unwrap().1;
        assert_eq!(av.to_u64(), Some(4));
    }

    #[test]
    fn shift_out_of_range_is_zero() {
        let p = TermPool::new();
        let amt = p.fresh_var("amt", 8);
        let c1 = p.const_u128(8, 1);
        let c9 = p.const_u128(8, 9);
        let ge = p.ule(c9, amt); // amt >= 9 > width 8
        let sh = p.bin(BinOp::Shl, c1, amt);
        let zero = p.const_u128(8, 0);
        let nz = p.neq(sh, zero);
        let both = p.and(ge, nz);
        assert!(solve_term(&p, both).is_none(), "shl by >= width must be 0");
    }

    #[test]
    fn solve_udiv() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let c7 = p.const_u128(8, 7);
        let c5 = p.const_u128(8, 5);
        let d = p.bin(BinOp::UDiv, x, c7);
        let eq = p.eq(d, c5); // x / 7 == 5  =>  x in [35, 41]
        let asg = solve_term(&p, eq).expect("sat");
        let xv = asg.iter().find(|(v, _)| p.var_info(**v).name == "x").unwrap().1;
        let xn = xv.to_u64().unwrap();
        assert!((35..=41).contains(&xn), "x = {xn}");
    }

    #[test]
    fn concat_extract_round_trip() {
        let p = TermPool::new();
        let hi = p.fresh_var("hi", 8);
        let lo = p.fresh_var("lo", 8);
        let cat = p.concat(hi, lo);
        let cafe = p.const_u128(16, 0xCAFE);
        let eq = p.eq(cat, cafe);
        let asg = solve_term(&p, eq).expect("sat");
        let hv = asg.iter().find(|(v, _)| p.var_info(**v).name == "hi").unwrap().1;
        let lv = asg.iter().find(|(v, _)| p.var_info(**v).name == "lo").unwrap().1;
        assert_eq!(hv.to_u64(), Some(0xCA));
        assert_eq!(lv.to_u64(), Some(0xFE));
    }

    #[test]
    fn signed_comparison() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let zero = p.const_u128(8, 0);
        let slt = p.bin(BinOp::Slt, x, zero);
        let asg = solve_term(&p, slt).expect("sat");
        let xv = asg.iter().find(|(v, _)| p.var_info(**v).name == "x").unwrap().1;
        assert!(xv.bit(7), "x must be negative (MSB set)");
    }
}
