//! Incremental solver facade: push/pop scopes over assertions, model
//! extraction, and solve statistics.
//!
//! This is the interface the symbolic executor talks to — the analogue of
//! the paper's "Z3 configured with incremental solving". Assertions are
//! tracked per scope as *terms*; each `check` encodes exactly the cone of
//! the current assertion set into a fresh SAT instance and solves it.
//!
//! Why fresh-per-check rather than one monotonically growing SAT instance:
//! path constraints from packet programs are overwhelmingly easy (measured
//! on our corpus: thousands of checks, a few dozen conflicts in total), so
//! learned clauses carry almost no value — but a shared clause database
//! forces every solve to assign every Tseitin variable ever created by any
//! path, which made solving scale with the *total* work of the run instead
//! of the size of the current path. A fresh instance per check keeps each
//! solve proportional to its own cone. Z3's incremental mode performs the
//! equivalent cone restriction internally; our CDCL core does not, so this
//! facade makes the choice explicit. (See EXPERIMENTS.md, Fig. 7.)
//!
//! Fresh-per-check also makes parallel exploration nearly free: a `Solver`
//! carries no cross-check SAT state (only statistics and the last model),
//! so each exploration worker simply owns its own instance — no shared
//! clause database to lock, no cross-worker invalidation. The term pool is
//! the only shared solver-side structure, and its interning is `&self` and
//! thread-safe, so `TermId`s can flow between workers while CNF encoding
//! stays worker-local. It also keeps checks deterministic per path: CNF
//! variables are numbered by the blaster's structural traversal of the
//! current cone alone, so a path's model is a function of its constraint
//! set, never of what other workers solved before it.

use crate::blast::Blaster;
use crate::eval::Assignment;
use crate::sat::{SatResult, SatSolver, SolveBudget};
use crate::term::{TermId, TermPool, VarId};
use std::time::{Duration, Instant};

/// Result of a `check` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckResult {
    Sat,
    Unsat,
    /// The per-query budget was exhausted before a verdict. The paper's
    /// P4Testgen gets the same tri-state from Z3 timeouts and abandons the
    /// path; callers here must do likewise (a model after Unknown is
    /// meaningless — every unfixed variable reads as zero).
    Unknown,
}

/// Upper bounds (inclusive) for the conflicts-per-check histogram in
/// [`SolverStats`]; an implicit overflow bucket follows the last bound.
/// `le=0` is its own bucket because conflict-free checks are the common
/// case on packet-program path constraints — the histogram's whole point
/// is to show how heavy that head is versus the hard tail.
pub const CONFLICTS_PER_CHECK_BOUNDS: [u64; 8] = [0, 1, 2, 4, 16, 64, 256, 1024];

/// Cumulative timing and counter statistics, read by the Fig. 7 harness and
/// folded into the metrics registry by the exploration engine.
#[derive(Default, Clone, Debug)]
pub struct SolverStats {
    pub checks: u64,
    pub sat_results: u64,
    pub unsat_results: u64,
    /// Checks that exhausted their budget without a verdict.
    pub unknown_results: u64,
    /// Wall time spent inside `check` (bit-blasting + SAT search).
    pub solve_time: Duration,
    /// Wall time spent purely in the SAT search.
    pub sat_time: Duration,
    /// Non-cumulative histogram of SAT conflicts per check: cell `i` counts
    /// checks with `conflicts <= CONFLICTS_PER_CHECK_BOUNDS[i]`; the final
    /// cell is the overflow. Fresh-per-check SAT instances make this exact:
    /// each instance's conflict total is one check's cost.
    pub conflicts_per_check_hist: [u64; CONFLICTS_PER_CHECK_BOUNDS.len() + 1],
}

/// Bitvector solver with scoped assertions.
pub struct Solver {
    /// Terms asserted, partitioned into scopes by `scope_marks`.
    asserted_terms: Vec<TermId>,
    scope_marks: Vec<usize>,
    /// The SAT instance and blaster from the most recent check (kept for
    /// model extraction).
    last: Option<(SatSolver, Blaster)>,
    /// Accumulated SAT-core statistics across all checks.
    sat_totals: crate::sat::SatStats,
    /// Per-query resource budget (unlimited by default).
    budget: SolveBudget,
    /// Initial-phase scramble seed for the next checks (0 = default phases).
    phase_seed: u64,
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Self {
        Solver {
            asserted_terms: Vec::new(),
            scope_marks: Vec::new(),
            last: None,
            sat_totals: crate::sat::SatStats::default(),
            budget: SolveBudget::UNLIMITED,
            phase_seed: 0,
            stats: SolverStats::default(),
        }
    }

    /// Set the per-query resource budget applied to every subsequent check.
    /// Budget exhaustion surfaces as [`CheckResult::Unknown`].
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// Scramble initial decision phases for subsequent checks (0 restores the
    /// default). Used to retry an Unknown query along a different search
    /// order; with fresh-per-check SAT instances this is fully deterministic.
    pub fn set_phase_seed(&mut self, seed: u64) {
        self.phase_seed = seed;
    }

    /// Open a new assertion scope.
    pub fn push(&mut self) {
        self.scope_marks.push(self.asserted_terms.len());
    }

    /// Discard all assertions added since the matching `push`.
    pub fn pop(&mut self) {
        let mark = self.scope_marks.pop().expect("pop without matching push");
        self.asserted_terms.truncate(mark);
    }

    /// Current scope depth.
    pub fn depth(&self) -> usize {
        self.scope_marks.len()
    }

    /// Assert a 1-bit term in the current scope.
    pub fn assert(&mut self, pool: &TermPool, t: TermId) {
        assert_eq!(pool.width(t), 1, "assertions must be 1-bit terms");
        self.asserted_terms.push(t);
    }

    /// Check satisfiability of all assertions in all scopes.
    pub fn check(&mut self, pool: &TermPool) -> CheckResult {
        self.check_assuming(pool, &[])
    }

    /// Check with extra transient assumptions (1-bit terms).
    pub fn check_assuming(&mut self, pool: &TermPool, extra: &[TermId]) -> CheckResult {
        let t0 = Instant::now();
        let mut sat = SatSolver::new();
        let mut blaster = Blaster::new(&mut sat);
        let mut ok = true;
        for &t in self.asserted_terms.iter().chain(extra) {
            debug_assert_eq!(pool.width(t), 1, "assumptions must be 1-bit terms");
            let l = blaster.assertion_lit(&mut sat, pool, t);
            if !sat.add_clause(&[l]) {
                ok = false;
                break;
            }
        }
        let t1 = Instant::now();
        let res = if ok {
            sat.seed_phases(self.phase_seed);
            sat.solve_budgeted(&[], &self.budget)
        } else {
            SatResult::Unsat
        };
        self.stats.sat_time += t1.elapsed();
        self.stats.solve_time += t0.elapsed();
        self.stats.checks += 1;
        self.stats.conflicts_per_check_hist
            [CONFLICTS_PER_CHECK_BOUNDS.partition_point(|&b| b < sat.stats.conflicts)] += 1;
        accumulate(&mut self.sat_totals, &sat.stats);
        self.last = Some((sat, blaster));
        match res {
            SatResult::Sat => {
                self.stats.sat_results += 1;
                CheckResult::Sat
            }
            SatResult::Unsat => {
                self.stats.unsat_results += 1;
                CheckResult::Unsat
            }
            SatResult::Unknown => {
                self.stats.unknown_results += 1;
                CheckResult::Unknown
            }
        }
    }

    /// Model value of one variable after a Sat check. Variables that did not
    /// occur in the checked formula evaluate to zero.
    pub fn model_value(&self, pool: &TermPool, v: VarId) -> crate::bitvec::BitVec {
        match &self.last {
            Some((sat, blaster)) => blaster.model_value(sat, pool, v),
            None => crate::bitvec::BitVec::zeros(pool.var_info(v).width),
        }
    }

    /// Full model over the given variables after a Sat check.
    pub fn model(&self, pool: &TermPool, vars: &[VarId]) -> Assignment {
        let mut asg = Assignment::new();
        for &v in vars {
            asg.set(v, self.model_value(pool, v));
        }
        asg
    }

    /// Model over every variable mentioned in the current assertions.
    pub fn model_of_assertions(&self, pool: &TermPool) -> Assignment {
        let mut vars = Vec::new();
        for &t in &self.asserted_terms {
            vars.extend(pool.vars_of(t));
        }
        vars.sort();
        vars.dedup();
        self.model(pool, &vars)
    }

    /// The asserted terms, outermost scope first (diagnostics).
    pub fn assertions(&self) -> &[TermId] {
        &self.asserted_terms
    }

    /// SAT-core statistics accumulated over all checks.
    pub fn sat_stats(&self) -> &crate::sat::SatStats {
        &self.sat_totals
    }
}

fn accumulate(total: &mut crate::sat::SatStats, one: &crate::sat::SatStats) {
    total.decisions += one.decisions;
    total.propagations += one.propagations;
    total.conflicts += one.conflicts;
    total.restarts += one.restarts;
    total.learnt_clauses += one.learnt_clauses;
    total.learnt_literals += one.learnt_literals;
    for (t, o) in total.learnt_size_hist.iter_mut().zip(one.learnt_size_hist.iter()) {
        *t += o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;

    #[test]
    fn push_pop_restores_satisfiability() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c5 = pool.const_u128(8, 5);
        let c6 = pool.const_u128(8, 6);
        let eq5 = pool.eq(x, c5);
        let eq6 = pool.eq(x, c6);
        s.assert(&pool, eq5);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        s.push();
        s.assert(&pool, eq6);
        assert_eq!(s.check(&pool), CheckResult::Unsat);
        s.pop();
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, eq5).is_true());
    }

    #[test]
    fn nested_scopes() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 4);
        let lims: Vec<_> = (1..=3)
            .map(|i| {
                let c = pool.const_u128(4, 1 << i);
                pool.ult(x, c)
            })
            .collect();
        for &l in &lims {
            s.push();
            s.assert(&pool, l);
        }
        assert_eq!(s.depth(), 3);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        s.pop();
        s.pop();
        s.pop();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.check(&pool), CheckResult::Sat);
    }

    #[test]
    fn transient_assumptions() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let zero = pool.const_u128(8, 0);
        let pos = pool.neq(x, zero);
        s.assert(&pool, pos);
        let isz = pool.eq(x, zero);
        assert_eq!(s.check_assuming(&pool, &[isz]), CheckResult::Unsat);
        assert_eq!(s.check(&pool), CheckResult::Sat);
    }

    #[test]
    fn model_satisfies_complex_constraint() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        // (x + y == 0xBEEF) && (x & 0xFF == 0x42)
        let x = pool.fresh_var("x", 16);
        let y = pool.fresh_var("y", 16);
        let sum = pool.add(x, y);
        let beef = pool.const_u128(16, 0xBEEF);
        let c1 = pool.eq(sum, beef);
        let mask = pool.const_u128(16, 0xFF);
        let lowx = pool.and(x, mask);
        let c42 = pool.const_u128(16, 0x42);
        let c2 = pool.eq(lowx, c42);
        s.assert(&pool, c1);
        s.assert(&pool, c2);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, c1).is_true());
        assert!(eval(&pool, &m, c2).is_true());
    }

    #[test]
    fn stats_accumulate() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.const_u128(8, 9);
        let eq = pool.eq(x, c);
        s.assert(&pool, eq);
        s.check(&pool);
        s.check(&pool);
        assert_eq!(s.stats.checks, 2);
        assert_eq!(s.stats.sat_results, 2);
    }

    /// A 24×24→48-bit factoring constraint: hard enough that a one-conflict
    /// budget can never finish it.
    fn hard_query(pool: &TermPool, s: &mut Solver) {
        let x = pool.fresh_var("x", 48);
        let y = pool.fresh_var("y", 48);
        let prod = pool.mul(x, y);
        // 0xB4D5_2F9E_1D03 = 198341*957463 — force a nontrivial factoring.
        let target = pool.const_u128(48, 198_341u128 * 957_463u128);
        let one = pool.const_u128(48, 1);
        s.assert(pool, pool.eq(prod, target));
        s.assert(pool, pool.ult(one, x));
        s.assert(pool, pool.ult(one, y));
        s.assert(pool, pool.ult(x, y));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        hard_query(&pool, &mut s);
        s.set_budget(crate::sat::SolveBudget::conflicts(2));
        assert_eq!(s.check(&pool), CheckResult::Unknown);
        assert_eq!(s.stats.unknown_results, 1);
        assert_eq!(s.stats.checks, 1);
    }

    #[test]
    fn budgeted_checks_are_deterministic() {
        // Same formula, same budget, same phase seed -> same verdict, every
        // time (fresh-per-check SAT instances carry no hidden state).
        let outcome = |seed: u64| {
            let pool = TermPool::new();
            let mut s = Solver::new();
            hard_query(&pool, &mut s);
            s.set_budget(crate::sat::SolveBudget::conflicts(50));
            s.set_phase_seed(seed);
            (s.check(&pool), s.check(&pool))
        };
        for seed in [0u64, 7, 0x1234] {
            let (a, b) = outcome(seed);
            assert_eq!(a, b, "seed {seed}: two identical checks disagree");
            let (a2, _) = outcome(seed);
            assert_eq!(a, a2, "seed {seed}: run-to-run nondeterminism");
        }
    }

    #[test]
    fn easy_queries_unaffected_by_budget() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.const_u128(8, 42);
        s.assert(&pool, pool.eq(x, c));
        s.set_budget(crate::sat::SolveBudget::conflicts(1));
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, pool.eq(x, c)).is_true());
    }

    #[test]
    fn model_before_any_check_is_zero() {
        let pool = TermPool::new();
        let s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let crate::term::Node::Var(v) = *pool.node(x) else {
            panic!()
        };
        assert!(s.model_value(&pool, v).is_zero());
    }
}
